"""Legacy shim: the environment has no `wheel` package and no network, so
`pip install -e .` must use the setup.py editable path."""

from setuptools import setup

setup()
