"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  Finer-grained
subclasses distinguish the three layers of the system: the dimension model
(schemas and instances), the constraint language, and the OLAP engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ReproError):
    """A hierarchy schema or dimension schema is malformed.

    Raised when Definition 1 of the paper is violated: a category does not
    reach ``All``, a self-loop edge is declared, a constraint refers to a
    category that is not in the schema, or a constraint is rooted at ``All``.
    """


class InstanceError(ReproError):
    """A dimension instance violates one of conditions (C1)-(C7).

    The message identifies the condition by its paper label (for example
    ``"(C2) partitioning"``) and the offending members, so schema designers
    can locate the problem in their data.
    """

    def __init__(self, condition: str, message: str) -> None:
        super().__init__(f"{condition}: {message}")
        self.condition = condition


class ConstraintSyntaxError(ReproError):
    """The textual form of a dimension constraint could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int = -1) -> None:
        if position >= 0:
            message = f"{message} (at position {position} in {text!r})"
        super().__init__(message)
        self.text = text
        self.position = position


class ConstraintError(ReproError):
    """A structurally invalid constraint: mixed roots, unknown categories,
    or a path atom whose path is not a simple path of the hierarchy schema.
    """


class BudgetExceeded(ReproError):
    """A decision ran out of its :class:`~repro.core.budget.DecisionBudget`.

    Raised when a per-decision node or wall-clock budget is exhausted
    before the decision procedure reaches an answer.  The decision did
    *not* produce a verdict - callers must treat the question as
    undecided, never as a "no".  Caches are left verdict-clean: nothing
    is memoized for an aborted decision, so re-asking with a larger
    budget yields the correct answer.
    """


class DecisionUnavailable(ReproError):
    """Every rung of the resilience ladder failed to produce a verdict.

    Raised by :class:`~repro.core.resilience.ResilientDecisionEngine`
    when the parallel engine (with retries), the sequential kernel
    fallback, and any remaining recovery path all failed for a decision.
    The question is *undecided* - a typed UNKNOWN, never a wrong boolean
    - and ``failures`` carries the provenance: one record per failed
    attempt (rung, attempt number, error type, message).  Caches are
    left verdict-clean, so re-asking once the faults clear yields the
    correct answer.
    """

    def __init__(self, message: str, failures: tuple = ()) -> None:
        super().__init__(message)
        self.failures = tuple(failures)


class OlapError(ReproError):
    """An error in the OLAP engine substrate (fact tables and cube views)."""


class NavigationError(OlapError):
    """Aggregate navigation could not rewrite the requested cube view.

    Raised when no subset of the materialized views is proven summarizable
    for the requested category, so the only safe plan is a base-table scan
    and the caller asked for rewrites only.
    """
