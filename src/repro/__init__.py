"""repro - a reproduction of "OLAP Dimension Constraints"
(Hurtado & Mendelzon, PODS 2002).

The library provides, end to end:

* a heterogeneous dimension model - hierarchy schemas with cycles and
  shortcuts, dimension instances with the (C1)-(C7) validator
  (:mod:`repro.core`);
* the dimension constraint language with parser, printer, and Definition 4
  semantics (:mod:`repro.constraints`);
* frozen dimensions and the DIMSAT satisfiability/implication engine
  (:mod:`repro.core.dimsat`, :mod:`repro.core.implication`);
* summarizability reasoning per Theorem 1
  (:mod:`repro.core.summarizability`);
* an OLAP substrate - fact tables, distributive aggregates, cube views,
  and a summarizability-driven aggregate navigator (:mod:`repro.olap`);
* the related-work baselines the paper compares against
  (:mod:`repro.baselines`), synthetic workload generators
  (:mod:`repro.generators`), and serialization (:mod:`repro.io`).

Quickstart::

    from repro import DimensionSchema, HierarchySchema, dimsat, implies

    g = HierarchySchema(
        ["Store", "City", "Country"],
        [("Store", "City"), ("City", "Country"), ("Country", "All")],
    )
    ds = DimensionSchema(g, ["Store -> City"])
    assert dimsat(ds, "Store").satisfiable
    assert implies(ds, "Store.Country").implied
"""

from repro.constraints import parse, parse_many, satisfies, unparse
from repro.core import (
    ALL,
    DimensionInstance,
    InstanceBuilder,
    DimensionSchema,
    DimsatOptions,
    DimsatResult,
    FrozenDimension,
    HierarchySchema,
    Subhierarchy,
    dimsat,
    enumerate_frozen_dimensions,
    implies,
    is_category_satisfiable,
    is_implied,
    is_summarizable_in_instance,
    is_summarizable_in_schema,
    summarizable_sets,
)
from repro.errors import (
    ConstraintError,
    ConstraintSyntaxError,
    InstanceError,
    NavigationError,
    OlapError,
    ReproError,
    SchemaError,
)

__version__ = "1.0.0"

__all__ = [
    "ALL",
    "ConstraintError",
    "ConstraintSyntaxError",
    "DimensionInstance",
    "DimensionSchema",
    "DimsatOptions",
    "DimsatResult",
    "FrozenDimension",
    "HierarchySchema",
    "InstanceBuilder",
    "InstanceError",
    "NavigationError",
    "OlapError",
    "ReproError",
    "SchemaError",
    "Subhierarchy",
    "__version__",
    "dimsat",
    "enumerate_frozen_dimensions",
    "implies",
    "is_category_satisfiable",
    "is_implied",
    "is_summarizable_in_instance",
    "is_summarizable_in_schema",
    "parse",
    "parse_many",
    "satisfies",
    "summarizable_sets",
    "unparse",
]
