"""A durable per-decision audit log, and its replay verifier.

The constraint literature treats a verdict as an *artifact*: Ghozzi et
al. model constraints as part of the multidimensional schema a consumer
can hold the system to, and Bertossi & Milani's ontological model makes
every query answer justifiable against the constraint theory.  A
production decision service therefore needs more than in-memory stats -
it needs a durable record of **every** dimsat / implication /
summarizability verdict it ever served, carrying enough context to
re-derive that verdict from scratch.  This module provides exactly that:

* :class:`AuditLog` - a process-wide recorder.  When enabled (the CLI's
  ``--telemetry-dir``, or :func:`repro.core.telemetry.TelemetryPipeline.
  install`), every decision that flows through the
  :class:`~repro.core.decisioncache.DecisionCache`, the uncached engine
  path (:func:`repro.core.parallel._decide`), or the resilience ladder's
  UNKNOWN rung appends one JSONL record with the schema fingerprint, the
  canonical request, the verdict, the duration, the cache-hit flag, and
  - for UNKNOWNs - the full :class:`~repro.core.resilience.AttemptRecord`
  ladder.  Disabled (the default), every instrumented site costs one
  attribute read.
* A **schema sidecar**: the first record for each schema fingerprint also
  persists that schema's canonical JSON to ``schemas.jsonl``, so the log
  is self-contained - no live process or original input file is needed to
  replay it.
* :func:`verify_audit_log` - observability doubling as correctness
  tooling: re-decides every logged entry against the plain sequential
  kernel and reports any byte-level divergence between the recorded and
  the recomputed verdict (the CLI's ``repro-olap audit-verify``).

Records never block the hot path: the sink (the telemetry pipeline's
bounded background writer) drops and counts instead of waiting.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.core.metrics import METRICS
from repro.errors import ReproError

_M_RECORDS = METRICS.counter("audit.records")
_M_UNKNOWN_RECORDS = METRICS.counter("audit.unknown_records")
_M_SCHEMAS = METRICS.counter("audit.schemas_persisted")


class AuditSink(Protocol):
    """Where audit records go (implemented by the telemetry pipeline)."""

    def export_audit(self, record: Dict[str, Any]) -> None: ...

    def export_schema(self, fingerprint: str, schema_json: str) -> None: ...


def _verdict_of(value: object) -> bool:
    """The boolean verdict inside a decision result.

    Accepts the raw payloads the decision surfaces produce: booleans,
    :class:`~repro.core.dimsat.DimsatResult` and
    :class:`~repro.core.implication.ImplicationResult`.
    """
    if isinstance(value, bool):
        return value
    satisfiable = getattr(value, "satisfiable", None)
    if satisfiable is not None:
        return bool(satisfiable)
    implied = getattr(value, "implied", None)
    if implied is not None:
        return bool(implied)
    raise ReproError(f"cannot extract a verdict from {type(value).__name__}")


def _request_json(request: Sequence[object]) -> List[object]:
    """The canonical request as a JSON-ready list (tuples become lists)."""
    return [list(part) if isinstance(part, tuple) else part for part in request]


class AuditLog:
    """The process-wide decision audit recorder.

    Starts disabled; the instrumented sites check :attr:`enabled` (one
    attribute read) before doing any work.  :meth:`attach` wires a sink
    and enables recording; :meth:`detach` disables it again.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.sink: Optional[AuditSink] = None
        self._lock = threading.Lock()
        self._seen_schemas: set = set()
        self._seq = itertools.count(1)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, sink: AuditSink) -> None:
        with self._lock:
            self.sink = sink
            self._seen_schemas = set()
            self._seq = itertools.count(1)
        self.enabled = True

    def detach(self) -> None:
        self.enabled = False
        with self._lock:
            self.sink = None
            self._seen_schemas = set()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_decision(
        self,
        schema: object,
        request: Sequence[object],
        options_key: Tuple[object, ...],
        result: object,
        duration_ms: float,
        cache_hit: bool,
    ) -> None:
        """One served verdict (the common case)."""
        self._emit(
            schema,
            request,
            options_key,
            verdict=_verdict_of(result),
            status="ok",
            duration_ms=duration_ms,
            cache_hit=cache_hit,
        )

    def record_unknown(
        self,
        schema: object,
        request: Sequence[object],
        attempts: int,
        failures: Sequence[object],
        duration_ms: float = 0.0,
    ) -> None:
        """A decision every resilience rung failed to serve.

        ``failures`` are :class:`~repro.core.resilience.AttemptRecord`
        instances (or plain dicts); the full ladder is persisted so the
        UNKNOWN can be justified later.
        """
        self._emit(
            schema,
            request,
            (),
            verdict=None,
            status="unknown",
            duration_ms=duration_ms,
            cache_hit=False,
            attempts=attempts,
            failures=[
                f.as_dict() if hasattr(f, "as_dict") else dict(f)  # type: ignore[call-overload]
                for f in failures
            ],
        )
        _M_UNKNOWN_RECORDS.inc()

    def _emit(
        self,
        schema: object,
        request: Sequence[object],
        options_key: Tuple[object, ...],
        verdict: Optional[bool],
        status: str,
        duration_ms: float,
        cache_hit: bool,
        attempts: Optional[int] = None,
        failures: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        sink = self.sink
        if sink is None:
            return
        fingerprint: str = schema.fingerprint()  # type: ignore[attr-defined]
        self._persist_schema(schema, fingerprint, sink)
        record: Dict[str, Any] = {
            "seq": next(self._seq),
            "ts": time.time(),
            "kind": str(request[0]),
            "fingerprint": fingerprint,
            "request": _request_json(request),
            "options": list(options_key),
            "verdict": verdict,
            "status": status,
            "duration_ms": duration_ms,
            "cache_hit": cache_hit,
        }
        if attempts is not None:
            record["attempts"] = attempts
        if failures is not None:
            record["failures"] = failures
        sink.export_audit(record)
        _M_RECORDS.inc()

    def _persist_schema(
        self, schema: object, fingerprint: str, sink: AuditSink
    ) -> None:
        """Write the schema sidecar entry the first time a fingerprint
        shows up, making the log replayable without the original files."""
        if fingerprint in self._seen_schemas:  # lock-free fast path
            return
        with self._lock:
            if fingerprint in self._seen_schemas:
                return
            self._seen_schemas.add(fingerprint)
        from repro.io.json_io import schema_to_json

        sink.export_schema(fingerprint, schema_to_json(schema))  # type: ignore[arg-type]
        _M_SCHEMAS.inc()


#: The process-wide audit log every decision surface records into.
AUDIT = AuditLog()


def audit_log() -> AuditLog:
    """The process-wide :class:`AuditLog`."""
    return AUDIT


# ----------------------------------------------------------------------
# Replay verification (``repro-olap audit-verify``)
# ----------------------------------------------------------------------


@dataclass
class Divergence:
    """One replayed record whose verdict does not match the log."""

    seq: object
    kind: str
    fingerprint: str
    request: List[object]
    recorded: Optional[bool]
    replayed: Optional[bool]

    def describe(self) -> str:
        return (
            f"record seq={self.seq} {self.kind} {self.request!r} "
            f"(schema {str(self.fingerprint)[:12]}): recorded "
            f"{json.dumps(self.recorded)} != replayed {json.dumps(self.replayed)}"
        )


@dataclass
class AuditVerifyReport:
    """What :func:`verify_audit_log` found."""

    records: int = 0
    verified: int = 0
    skipped_unknown: int = 0
    skipped_options: int = 0
    missing_schemas: int = 0
    schemas: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences and self.missing_schemas == 0

    def render(self) -> str:
        lines = [
            "audit-verify:",
            f"  records          {self.records}",
            f"  schemas          {self.schemas}",
            f"  replayed         {self.verified}",
            f"  skipped UNKNOWN  {self.skipped_unknown}",
            f"  skipped options  {self.skipped_options}",
            f"  missing schemas  {self.missing_schemas}",
            f"  divergences      {len(self.divergences)}",
        ]
        for divergence in self.divergences[:20]:
            lines.append(f"  DIVERGED: {divergence.describe()}")
        return "\n".join(lines)


def _replay(schema: object, request: List[object]) -> bool:
    """Recompute one canonical request on the plain sequential kernel."""
    from repro.core.implication import is_category_satisfiable, is_implied
    from repro.core.summarizability import is_summarizable_in_schema

    kind = request[0]
    if kind == "dimsat":
        return is_category_satisfiable(schema, request[1], cache=None)  # type: ignore[arg-type]
    if kind == "implies":
        return is_implied(schema, request[1], cache=None)  # type: ignore[arg-type]
    if kind == "summarizable":
        return is_summarizable_in_schema(
            schema, request[1], tuple(request[2]), cache=None  # type: ignore[arg-type]
        )
    raise ReproError(f"unknown audit record kind {kind!r}")


def load_audit_records(audit_path: str) -> List[Dict[str, Any]]:
    """Parse one audit JSONL file (blank lines tolerated)."""
    records = []
    with open(audit_path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"{audit_path}:{line_no}: corrupt audit record: {error}"
                )
    return records


def load_schema_sidecar(schemas_path: str) -> Dict[str, object]:
    """Rebuild ``fingerprint -> DimensionSchema`` from ``schemas.jsonl``.

    Every rebuilt schema's recomputed fingerprint must match the recorded
    one - a mismatch means the sidecar is corrupt and replay would verify
    the wrong schema.
    """
    from repro.io.json_io import schema_from_json

    schemas: Dict[str, object] = {}
    with open(schemas_path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            schema = schema_from_json(entry["schema_json"])
            recomputed = schema.fingerprint()
            if recomputed != entry["fingerprint"]:
                raise ReproError(
                    f"{schemas_path}:{line_no}: schema sidecar fingerprint "
                    f"mismatch ({entry['fingerprint'][:12]} recorded, "
                    f"{recomputed[:12]} recomputed)"
                )
            schemas[entry["fingerprint"]] = schema
    return schemas


def verify_audit_log(
    audit_path: str, schemas_path: Optional[str] = None
) -> AuditVerifyReport:
    """Replay every logged decision against the sequential kernel.

    ``audit_path`` may be the ``audit.jsonl`` file or the telemetry
    directory containing it; ``schemas_path`` defaults to the
    ``schemas.jsonl`` sidecar next to the audit file.  Replay compares
    the canonical JSON encoding of the recorded and recomputed verdicts
    - any byte difference is a :class:`Divergence`.

    Records are skipped (and counted) when there is nothing sound to
    replay: UNKNOWN outcomes carry no verdict, and records decided under
    non-default :class:`~repro.core.dimsat.DimsatOptions` would need
    those options to reproduce byte-identically.
    """
    import os

    if os.path.isdir(audit_path):
        directory = audit_path
        audit_path = os.path.join(directory, "audit.jsonl")
        if schemas_path is None:
            schemas_path = os.path.join(directory, "schemas.jsonl")
    if schemas_path is None:
        schemas_path = os.path.join(os.path.dirname(audit_path), "schemas.jsonl")

    records = load_audit_records(audit_path)
    schemas = load_schema_sidecar(schemas_path)
    report = AuditVerifyReport(records=len(records), schemas=len(schemas))

    # Replay must not feed the audit log it is replaying (the CLI runs
    # verification with telemetry enabled), so recording is suspended.
    was_enabled = AUDIT.enabled
    AUDIT.enabled = False
    # A private memo avoids re-deciding duplicated records while keeping
    # the replay independent of the process-wide cache's contents: every
    # distinct question is still recomputed from scratch once.
    memo: Dict[Tuple[object, ...], bool] = {}
    try:
        for record in records:
            if record.get("status") == "unknown":
                report.skipped_unknown += 1
                continue
            if record.get("options"):
                report.skipped_options += 1
                continue
            schema = schemas.get(record["fingerprint"])
            if schema is None:
                report.missing_schemas += 1
                continue
            request = record["request"]
            key = (record["fingerprint"], json.dumps(request, sort_keys=True))
            if key in memo:
                replayed = memo[key]
            else:
                replayed = _replay(schema, request)
                memo[key] = replayed
            report.verified += 1
            recorded_bytes = json.dumps(record["verdict"]).encode("utf-8")
            replayed_bytes = json.dumps(replayed).encode("utf-8")
            if recorded_bytes != replayed_bytes:
                report.divergences.append(
                    Divergence(
                        seq=record.get("seq"),
                        kind=record["kind"],
                        fingerprint=record["fingerprint"],
                        request=request,
                        recorded=record["verdict"],
                        replayed=replayed,
                    )
                )
    finally:
        AUDIT.enabled = was_enabled
    return report
