"""A schema-fingerprinted decision cache for the satisfiability kernel.

Every schema-level decision in the system - category satisfiability
(DIMSAT), constraint implication (Theorem 2), and schema-level
summarizability (Theorem 1) - is a pure function of the dimension schema
``(G, SIGMA)`` and the query.  The OLAP layers above ask the *same*
questions over and over: the aggregate navigator re-proves rewritings per
query, greedy view selection re-evaluates candidate sets, and maintenance
re-audits after every batch.  :class:`DecisionCache` memoizes those
verdicts keyed by a canonical schema fingerprint
(:meth:`~repro.core.schema.DimensionSchema.fingerprint`), so:

* repeated decisions over the same schema are dictionary lookups;
* cached verdicts survive schema *reconstruction* (fact-table reloads,
  JSON round trips) because equal schemas share a fingerprint;
* schema *edits* can never serve stale verdicts because an edited schema
  has a different fingerprint - and the maintenance layer
  (:mod:`repro.olap.maintenance`) additionally evicts the replaced
  version's entries on every mutation.

The cache is shared by :mod:`repro.core.implication`,
:mod:`repro.core.summarizability`, :mod:`repro.olap.navigator`,
:mod:`repro.olap.viewselect`, and :mod:`repro.olap.maintenance`; pass
``cache=None`` to any of their entry points to force the uncached path
(the ablation the decision-cache benchmark measures).
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, fields
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro._types import Category
from repro.core.auditlog import AUDIT
from repro.core.faults import FAULTS, CacheStoreFault
from repro.core.metrics import METRICS
from repro.core.trace import TRACER

#: Process-wide counters aggregating every :class:`DecisionCache`
#: instance; the per-instance :class:`DecisionCacheStats` stays as the
#: compatibility view older callers read.
_M_HITS = METRICS.counter("decision_cache.hits")
_M_MISSES = METRICS.counter("decision_cache.misses")
_M_EVICTIONS = METRICS.counter("decision_cache.evictions")
_M_INVALIDATIONS = METRICS.counter("decision_cache.invalidations")
_M_STORE_FAILURES = METRICS.counter("decision_cache.store_failures")
_M_REKEYED = METRICS.counter("decision_cache.rekeyed")
_M_SELF_EVICTIONS = METRICS.counter("decision_cache.self_evictions")

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.budget import DecisionBudget
    from repro.core.dimsat import DimsatOptions, DimsatResult
    from repro.core.implication import ImplicationResult
    from repro.core.provenance import SchemaDelta, VerdictProvenance
    from repro.core.schema import DimensionSchema


#: Sentinel distinguishing "use the process-wide default cache" (the
#: argument default everywhere) from an explicit ``None`` (uncached).
USE_DEFAULT_CACHE: Any = object()


def _hashable(value: object) -> object:
    """Normalize a field value to something hashable.

    Future option fields may be lists, sets, or dicts; the cache key must
    never become silently unhashable, so containers collapse to sorted
    tuples here.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_hashable(item) for item in value), key=repr))
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


def _options_key(options: "Optional[DimsatOptions]") -> Tuple[object, ...]:
    """A hashable key covering every DIMSAT tuning knob.

    The pruning flags never change verdicts, but ``max_expansions`` can
    turn an answer into a budget exception and ``keep_trace`` changes the
    result payload, so the full option tuple participates in the key -
    correctness first, sharing second.

    Each field appears as an explicit ``(name, value)`` pair rather than
    through ``dataclasses.astuple``: astuple deep-converts recursively
    and depends on positional field order, so a reordered or
    container-typed option field would silently change (or break) every
    key.  The regression test pins this shape.
    """
    if options is None:
        return ()
    return tuple(
        (field.name, _hashable(getattr(options, field.name)))
        for field in fields(options)
    )


@dataclass
class DecisionCacheStats:
    """Cumulative counters for one :class:`DecisionCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: Store attempts that failed (e.g. an injected ``cache-store``
    #: fault).  The computed verdict was still returned - a failed store
    #: degrades throughput, never correctness.
    store_failures: int = 0
    #: Verdicts moved to a new fingerprint by provenance-scoped
    #: :meth:`DecisionCache.rekey` instead of being discarded.
    rekeyed: int = 0
    #: Evictions forced onto the fingerprint being stored because every
    #: resident entry already belonged to it (the hot schema filled the
    #: cache on its own).
    self_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        data = asdict(self)
        data["hit_rate"] = self.hit_rate
        return data


class DecisionCache:
    """Memoized schema-level verdicts, keyed by schema fingerprint.

    Entries are ``(fingerprint, kind, query..., options) -> result``.
    Results are immutable (booleans, :class:`DimsatResult`,
    :class:`ImplicationResult`) and decisions are deterministic, so a
    cached result is indistinguishable from a fresh computation - the
    decision-cache benchmark asserts exactly that across every DIMSAT
    ablation configuration.

    The cache is safe to share across threads (a lock guards the table)
    and bounded (FIFO eviction at ``max_entries``).
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        self.max_entries = max_entries
        self.stats = DecisionCacheStats()
        self._lock = threading.Lock()
        self._data: Dict[Tuple[object, ...], object] = {}
        #: Dependency set per entry (same full key); missing or ``None``
        #: means "invalidate on any edit" - conservative, never wrong.
        self._provenance: Dict[Tuple[object, ...], "Optional[VerdictProvenance]"] = {}
        #: The schema behind each resident fingerprint, kept so the disk
        #: store can persist a replayable sidecar per schema version.
        self._schemas: Dict[str, "DimensionSchema"] = {}

    # ------------------------------------------------------------------
    # Generic memoization
    # ------------------------------------------------------------------

    def memoize(
        self,
        schema: "DimensionSchema",
        key: Tuple[object, ...],
        compute: Callable[[], object],
    ) -> object:
        """Return the cached value for ``(schema.fingerprint(),) + key``,
        computing and storing it on a miss."""
        full_key = (schema.fingerprint(),) + key
        miss = object()
        with self._lock:
            hit_value = self._data.get(full_key, miss)
            if hit_value is not miss:
                self.stats.hits += 1
            else:
                # Count the miss before computing: hits + misses then
                # equals the number of lookups even when ``compute``
                # raises (a budget abort or cancellation), which also
                # guarantees the aborted decision leaves no entry behind.
                self.stats.misses += 1
        if TRACER.enabled:
            TRACER.event(
                "decision_cache.lookup", kind=str(key[0]), hit=hit_value is not miss
            )
        if hit_value is not miss:
            _M_HITS.inc()
            if AUDIT.enabled:
                # Cache hits are verdicts served too: the audit log must
                # show *every* answer the service gave, not only the ones
                # it computed.  ``key`` is ``(kind, query..., options)``.
                AUDIT.record_decision(
                    schema, key[:-1], key[-1], hit_value, 0.0, cache_hit=True
                )
            return hit_value
        _M_MISSES.inc()
        if AUDIT.enabled:
            start = time.perf_counter()
            value = compute()
            AUDIT.record_decision(
                schema,
                key[:-1],
                key[-1],
                value,
                (time.perf_counter() - start) * 1000.0,
                cache_hit=False,
            )
        else:
            value = compute()
        # Provenance is derived only after ``compute`` succeeded, and a
        # derivation failure degrades to ``None`` (= invalidate on any
        # edit) rather than failing the decision.
        try:
            from repro.core.provenance import provenance_for_key

            provenance: "Optional[VerdictProvenance]" = provenance_for_key(
                schema, key
            )
        except Exception:  # pragma: no cover - defensive degradation
            provenance = None
        try:
            FAULTS.cache_store()
            with self._lock:
                if full_key not in self._data:
                    if len(self._data) >= self.max_entries:
                        self._evict_for(full_key[0])
                    self._data[full_key] = value
                    self._provenance[full_key] = provenance
                    self._schemas.setdefault(full_key[0], schema)  # type: ignore[arg-type]
        except CacheStoreFault:
            # A failed store is pure degradation: the verdict was computed
            # and is correct, so serve it; the cache just stays cold for
            # this key.  Nothing partial is ever stored.
            with self._lock:
                self.stats.store_failures += 1
            _M_STORE_FAILURES.inc()
            if TRACER.enabled:
                TRACER.event("decision_cache.store_failed", kind=str(key[0]))
        return value

    def _evict_for(self, fingerprint: object) -> None:
        """Make room for an entry of ``fingerprint`` (lock held).

        FIFO, but the oldest entry belonging to *another* schema version
        goes first: a hot schema at capacity must not cannibalize its own
        warm verdicts while stale versions sit in the table.  Only when
        every resident entry already carries the incoming fingerprint is
        one of its own evicted (counted separately as a self-eviction).
        """
        victim = None
        for candidate in self._data:
            if candidate[0] != fingerprint:
                victim = candidate
                break
        if victim is None:
            victim = next(iter(self._data))
            self.stats.self_evictions += 1
            _M_SELF_EVICTIONS.inc()
        self._data.pop(victim)
        self._provenance.pop(victim, None)
        self.stats.evictions += 1
        _M_EVICTIONS.inc()

    # ------------------------------------------------------------------
    # The three decision procedures
    # ------------------------------------------------------------------

    def dimsat(
        self,
        schema: "DimensionSchema",
        category: Category,
        options: "Optional[DimsatOptions]" = None,
        budget: "Optional[DecisionBudget]" = None,
    ) -> "DimsatResult":
        """Memoized :func:`repro.core.dimsat.dimsat`.

        ``budget`` is deliberately not part of the cache key: it never
        changes a verdict, only whether one is reached, and an aborted
        computation raises out of ``compute`` before anything is stored.
        """
        from repro.core.dimsat import dimsat as run_dimsat

        key = ("dimsat", category, _options_key(options))
        return self.memoize(  # type: ignore[return-value]
            schema, key, lambda: run_dimsat(schema, category, options, budget)
        )

    def implies(
        self,
        schema: "DimensionSchema",
        constraint: object,
        options: "Optional[DimsatOptions]" = None,
        budget: "Optional[DecisionBudget]" = None,
    ) -> "ImplicationResult":
        """Memoized :func:`repro.core.implication.implies`."""
        from repro.constraints.printer import unparse
        from repro.core.implication import implies as run_implies

        node = _as_node(constraint)
        key = ("implies", unparse(node), _options_key(options))
        return self.memoize(  # type: ignore[return-value]
            schema,
            key,
            lambda: run_implies(schema, node, options, cache=None, budget=budget),
        )

    def is_implied(
        self,
        schema: "DimensionSchema",
        constraint: object,
        options: "Optional[DimsatOptions]" = None,
        budget: "Optional[DecisionBudget]" = None,
    ) -> bool:
        """Memoized implication verdict."""
        return self.implies(schema, constraint, options, budget).implied

    def is_summarizable(
        self,
        schema: "DimensionSchema",
        target: Category,
        sources: Iterable[Category],
        options: "Optional[DimsatOptions]" = None,
        budget: "Optional[DecisionBudget]" = None,
    ) -> bool:
        """Memoized schema-level summarizability (Theorem 1)."""
        from repro.core.summarizability import _is_summarizable_uncached

        source_key = tuple(sorted(set(sources)))
        key = ("summarizable", target, source_key, _options_key(options))
        return self.memoize(  # type: ignore[return-value]
            schema,
            key,
            # The per-bottom implication tests inside the Theorem 1 loop
            # still go through *this* cache, so different source sets
            # share whatever implication work overlaps.
            lambda: _is_summarizable_uncached(
                schema, target, source_key, options, self, budget
            ),
        )

    # ------------------------------------------------------------------
    # Invalidation and introspection
    # ------------------------------------------------------------------

    def invalidate(self, schema_or_fingerprint: object) -> int:
        """Evict every verdict cached for one schema version.

        Accepts a :class:`DimensionSchema` or a raw fingerprint string.
        Correctness never depends on calling this - an edited schema has a
        new fingerprint - but the maintenance layer calls it on every
        schema mutation so replaced versions stop occupying cache space.
        Returns the number of entries dropped.
        """
        fingerprint = (
            schema_or_fingerprint
            if isinstance(schema_or_fingerprint, str)
            else schema_or_fingerprint.fingerprint()  # type: ignore[union-attr]
        )
        with self._lock:
            doomed = [k for k in self._data if k[0] == fingerprint]
            for k in doomed:
                del self._data[k]
                self._provenance.pop(k, None)
            self._schemas.pop(fingerprint, None)  # type: ignore[arg-type]
            self.stats.invalidations += len(doomed)
        if doomed:
            _M_INVALIDATIONS.inc(len(doomed))
        if TRACER.enabled:
            TRACER.event("decision_cache.invalidate", entries=len(doomed))
        return len(doomed)

    def rekey(
        self,
        old_schema: "DimensionSchema",
        new_schema: "DimensionSchema",
        delta: "Optional[SchemaDelta]" = None,
    ) -> Tuple[int, int]:
        """Provenance-scoped invalidation after a schema edit.

        Every verdict cached under ``old_schema``'s fingerprint whose
        dependency set (:class:`~repro.core.provenance.VerdictProvenance`)
        is untouched by the edit is *moved* to ``new_schema``'s
        fingerprint - byte-identical by the soundness argument in
        :mod:`repro.core.provenance` - and the rest are dropped.  Entries
        without provenance are dropped unconditionally.

        Returns ``(moved, dropped)``.  A surviving entry's provenance
        carries over unchanged: the survival rules guarantee the
        dependency cone (categories, edges, rooted constraints, bottoms)
        reads identically off the edited schema.
        """
        from repro.core.provenance import schema_delta

        old_fingerprint = old_schema.fingerprint()
        new_fingerprint = new_schema.fingerprint()
        if old_fingerprint == new_fingerprint:
            return (0, 0)
        if delta is None:
            delta = schema_delta(old_schema, new_schema)
        moved = dropped = 0
        with self._lock:
            for k in [key for key in self._data if key[0] == old_fingerprint]:
                value = self._data.pop(k)
                provenance = self._provenance.pop(k, None)
                if provenance is not None and provenance.survives(delta):
                    new_key = (new_fingerprint,) + k[1:]
                    self._data[new_key] = value
                    self._provenance[new_key] = provenance
                    moved += 1
                else:
                    dropped += 1
            self._schemas.pop(old_fingerprint, None)
            if moved:
                self._schemas.setdefault(new_fingerprint, new_schema)
            self.stats.rekeyed += moved
            self.stats.invalidations += dropped
        if moved:
            _M_REKEYED.inc(moved)
        if dropped:
            _M_INVALIDATIONS.inc(dropped)
        if TRACER.enabled:
            TRACER.event("decision_cache.rekey", moved=moved, dropped=dropped)
        return moved, dropped

    def holds(self, fingerprint: str) -> bool:
        """Whether any entry is cached under ``fingerprint``."""
        with self._lock:
            return any(k[0] == fingerprint for k in self._data)

    def entries_for(self, fingerprint: str) -> List[Tuple[object, ...]]:
        """The full keys cached under ``fingerprint``."""
        with self._lock:
            return [k for k in self._data if k[0] == fingerprint]

    def peek(self, full_key: Tuple[object, ...]) -> Optional[object]:
        """The stored value for one full key without counting a hit
        (``None`` when absent) - used by the soak harness to audit
        rekeyed entries against the oracle."""
        with self._lock:
            return self._data.get(full_key)

    def provenance_of(
        self, full_key: Tuple[object, ...]
    ) -> "Optional[VerdictProvenance]":
        """The dependency set recorded for one entry (``None`` when the
        entry is absent or was stored without provenance)."""
        with self._lock:
            return self._provenance.get(full_key)

    def snapshot(
        self,
    ) -> Tuple[
        Dict[Tuple[object, ...], object],
        Dict[Tuple[object, ...], "Optional[VerdictProvenance]"],
        Dict[str, "DimensionSchema"],
    ]:
        """A consistent ``(entries, provenance, schemas)`` copy for the
        disk store (:mod:`repro.core.cachestore`)."""
        with self._lock:
            return dict(self._data), dict(self._provenance), dict(self._schemas)

    def install(
        self,
        entries: Dict[Tuple[object, ...], object],
        provenance: Dict[Tuple[object, ...], "Optional[VerdictProvenance]"],
        schemas: Dict[str, "DimensionSchema"],
    ) -> int:
        """Merge a loaded snapshot into the cache (resident entries win);
        returns how many entries were installed."""
        installed = 0
        with self._lock:
            for key, value in entries.items():
                if key in self._data or len(self._data) >= self.max_entries:
                    continue
                self._data[key] = value
                self._provenance[key] = provenance.get(key)
                installed += 1
            for fingerprint, schema in schemas.items():
                self._schemas.setdefault(fingerprint, schema)
        return installed

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._data.clear()
            self._provenance.clear()
            self._schemas.clear()
            self.stats = DecisionCacheStats()

    def __len__(self) -> int:
        return len(self._data)

    def report(self) -> str:
        """A human-readable stats block (the CLI's ``--cache-stats``)."""
        from repro.constraints.ast import intern_table_size
        from repro.core.compile import compiled_artifact_store
        from repro.core.dimsat import circle_cache

        circ = circle_cache()
        lines = [
            "decision cache:",
            f"  entries        {len(self)}",
            f"  hits           {self.stats.hits}",
            f"  misses         {self.stats.misses}",
            f"  hit rate       {self.stats.hit_rate:.1%}",
            f"  evictions      {self.stats.evictions}",
            f"  self-evictions {self.stats.self_evictions}",
            f"  invalidations  {self.stats.invalidations}",
            f"  rekeyed        {self.stats.rekeyed}",
            f"  store failures {self.stats.store_failures}",
            "circle-operator cache:",
            f"  entries        {len(circ)}",
            f"  hits           {circ.hits}",
            f"  misses         {circ.misses}",
            f"  hit rate       {circ.hit_rate:.1%}",
        ]
        lines.extend(compiled_artifact_store().report_lines())
        lines.extend(
            [
                "interned constraint nodes:",
                f"  live           {intern_table_size()}",
            ]
        )
        return "\n".join(lines)


def _as_node(constraint: object):
    from repro.constraints.ast import Node
    from repro.constraints.parser import parse

    return parse(constraint) if isinstance(constraint, str) else constraint


_DEFAULT_CACHE = DecisionCache()


def default_decision_cache() -> DecisionCache:
    """The process-wide decision cache every entry point defaults to."""
    return _DEFAULT_CACHE


def resolve_cache(cache: object) -> Optional[DecisionCache]:
    """Map an entry point's ``cache`` argument to a concrete cache.

    ``USE_DEFAULT_CACHE`` (the argument default) resolves to the global
    cache; ``None`` disables caching; anything else must be a
    :class:`DecisionCache` and is used as given.
    """
    if cache is USE_DEFAULT_CACHE:
        return _DEFAULT_CACHE
    return cache  # type: ignore[return-value]
