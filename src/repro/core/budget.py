"""Per-decision work budgets and cooperative cancellation.

Every decision the kernel serves - DIMSAT, implication, schema-level
summarizability - is a bounded but potentially exponential search.  A
service answering heavy multi-query traffic needs two robustness
controls the paper's offline setting never did:

* **budgets** - a ceiling on the work one decision may consume, expressed
  in search nodes (EXPAND calls) and/or wall-clock milliseconds.  When the
  ceiling is hit the search raises :class:`~repro.errors.BudgetExceeded`
  instead of returning a possibly-wrong verdict; nothing is cached for the
  aborted decision, so a later retry with a larger budget is correct.
* **cooperative cancellation** - when several branches of one decision run
  concurrently (the :class:`~repro.core.parallel.ParallelDecisionEngine`
  fan-out) and one of them settles the answer, the losers are told to stop
  at their next budget checkpoint via :meth:`DecisionBudget.cancel`.

One :class:`DecisionBudget` instance covers one *decision*: concurrent
branches of that decision share the node counter (the budget bounds the
decision's total work, not each branch's), and all of them observe the
same cancellation flag.  Budgets are deliberately not hashable cache-key
material - they never change a verdict, only whether one is reached.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

from repro.core.metrics import METRICS
from repro.errors import BudgetExceeded, ReproError

#: Consumption metrics, updated only at decision boundaries (exhaustion,
#: cancellation, :meth:`DecisionBudget.publish`) - never inside the hot
#: per-node ``charge`` checkpoint.
_M_EXCEEDED = METRICS.counter("budget.exceeded")
_M_CANCELLED = METRICS.counter("budget.cancelled")
_G_LAST_NODES = METRICS.gauge("budget.last_nodes_charged")
_H_NODES = METRICS.histogram("budget.nodes_per_decision")


class DecisionCancelled(ReproError):
    """A concurrently-running branch was told to stop.

    This is control flow, not failure: the engine raises it in losing
    branches once a sibling has settled the decision.  It never escapes
    the engine's public API.
    """


#: Picklable description of a budget: ``(max_nodes, time_ms)``.  Process
#: workers rebuild a fresh :class:`DecisionBudget` from this (locks and
#: events do not cross process boundaries).
BudgetSpec = Tuple[Optional[int], Optional[float]]


class DecisionBudget:
    """A node/time ceiling for one decision, shared by its branches.

    Parameters
    ----------
    max_nodes:
        Maximum number of search nodes (DIMSAT EXPAND calls) the decision
        may charge; ``None`` means unbounded.  A budget of ``0`` nodes
        forbids any search at all - the first charge raises.
    time_ms:
        Wall-clock allowance in milliseconds, measured from construction;
        ``None`` means unbounded.

    The budget is thread-safe: branches running on a pool charge the same
    counter.  :meth:`charge` is the single checkpoint - it raises
    :class:`~repro.errors.BudgetExceeded` when a ceiling is hit and
    :class:`DecisionCancelled` when :meth:`cancel` was called.
    """

    __slots__ = ("max_nodes", "time_ms", "_deadline", "_nodes", "_lock", "_cancel")

    def __init__(
        self,
        max_nodes: Optional[int] = None,
        time_ms: Optional[float] = None,
    ) -> None:
        if max_nodes is not None and max_nodes < 0:
            raise ValueError("max_nodes must be non-negative")
        if time_ms is not None and time_ms < 0:
            raise ValueError("time_ms must be non-negative")
        self.max_nodes = max_nodes
        self.time_ms = time_ms
        self._deadline = (
            time.monotonic() + time_ms / 1000.0 if time_ms is not None else None
        )
        self._nodes = 0
        self._lock = threading.Lock()
        self._cancel = threading.Event()

    # ------------------------------------------------------------------
    # The checkpoint
    # ------------------------------------------------------------------

    def charge(self, nodes: int = 1) -> None:
        """Account for ``nodes`` units of work; raise when over budget.

        Raises :class:`DecisionCancelled` first (a cancelled branch's
        work no longer matters), then :class:`BudgetExceeded` on a blown
        deadline or node ceiling.
        """
        if self._cancel.is_set():
            raise DecisionCancelled("decision branch cancelled")
        if self._deadline is not None and time.monotonic() > self._deadline:
            self.publish()
            _M_EXCEEDED.inc()
            raise BudgetExceeded(
                f"decision exceeded its time budget of {self.time_ms} ms"
            )
        if self.max_nodes is not None:
            with self._lock:
                self._nodes += nodes
                over = self._nodes > self.max_nodes
            if over:
                self.publish()
                _M_EXCEEDED.inc()
                raise BudgetExceeded(
                    f"decision exceeded its node budget of {self.max_nodes}"
                )
        else:
            with self._lock:
                self._nodes += nodes

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------

    def cancel(self) -> None:
        """Tell every branch sharing this budget to stop at its next
        checkpoint."""
        if not self._cancel.is_set():
            _M_CANCELLED.inc()
        self._cancel.set()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    # ------------------------------------------------------------------
    # Introspection and derivation
    # ------------------------------------------------------------------

    @property
    def nodes_charged(self) -> int:
        """Total nodes charged so far (across every branch)."""
        return self._nodes

    def publish(self) -> None:
        """Record this budget's consumption in the process-wide metrics
        (``budget.last_nodes_charged`` gauge and
        ``budget.nodes_per_decision`` histogram).  Called automatically
        when a ceiling is hit and by the parallel engine when a budgeted
        decision finishes."""
        nodes = self._nodes
        _G_LAST_NODES.set(nodes)
        _H_NODES.observe(nodes)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready view of the budget's limits and consumption.

        The resilience layer attaches this to failure provenance when a
        budgeted decision degrades, so an UNKNOWN verdict records how much
        work was spent before the abort.
        """
        return {
            "max_nodes": self.max_nodes,
            "time_ms": self.time_ms,
            "nodes_charged": self._nodes,
            "cancelled": self._cancel.is_set(),
        }

    def spec(self) -> BudgetSpec:
        """The picklable ``(max_nodes, time_ms)`` description."""
        return (self.max_nodes, self.time_ms)

    def fresh(self) -> "DecisionBudget":
        """A new budget with the same limits and a restarted clock.

        The engine treats a configured budget as a *template*: every
        decision gets its own fresh copy so one slow decision cannot
        starve the next.
        """
        return DecisionBudget(self.max_nodes, self.time_ms)

    @classmethod
    def from_spec(cls, spec: Optional[BudgetSpec]) -> Optional["DecisionBudget"]:
        """Rebuild a budget shipped across a process boundary."""
        if spec is None:
            return None
        max_nodes, time_ms = spec
        return cls(max_nodes=max_nodes, time_ms=time_ms)

    def __repr__(self) -> str:
        return (
            f"DecisionBudget(max_nodes={self.max_nodes}, "
            f"time_ms={self.time_ms}, charged={self._nodes})"
        )
