"""Incremental construction of dimension instances.

:class:`~repro.core.instance.DimensionInstance` is immutable by design
(reasoning caches depend on it), which makes loading data row by row
awkward.  :class:`InstanceBuilder` is the mutable staging area: add
members and links in any order, get precise errors early where possible,
and :meth:`freeze` into a validated instance at the end.

    builder = InstanceBuilder(hierarchy)
    builder.member("s1", "Store").member("Toronto", "City", name="Toronto")
    builder.link("s1", "Toronto")
    instance = builder.freeze()

The builder also supports editing an existing instance
(:meth:`InstanceBuilder.from_instance`), which the examples use to play
what-if scenarios against a schema.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro._types import Category, Member
from repro.core.hierarchy import HierarchySchema
from repro.core.instance import DimensionInstance
from repro.errors import SchemaError


class InstanceBuilder:
    """Mutable staging area for one dimension instance."""

    def __init__(self, hierarchy: HierarchySchema) -> None:
        self.hierarchy = hierarchy
        self._members: Dict[Member, Category] = {}
        self._names: Dict[Member, object] = {}
        self._edges: Set[Tuple[Member, Member]] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_instance(cls, instance: DimensionInstance) -> "InstanceBuilder":
        """A builder pre-loaded with an existing instance's contents."""
        builder = cls(instance.hierarchy)
        for member in instance.all_members():
            if member == "all":
                continue
            builder._members[member] = instance.category_of(member)
            name = instance.name(member)
            if name != member:
                builder._names[member] = name
        for child, parent in instance.member_edges():
            if parent == "all":
                continue
            builder._edges.add((child, parent))
        return builder

    def member(
        self,
        member: Member,
        category: Category,
        name: Optional[object] = None,
    ) -> "InstanceBuilder":
        """Declare a member; redeclaring with a different category fails."""
        if not self.hierarchy.has_category(category):
            raise SchemaError(f"unknown category {category!r}")
        existing = self._members.get(member)
        if existing is not None and existing != category:
            raise SchemaError(
                f"member {member!r} already declared in {existing!r}"
            )
        self._members[member] = category
        if name is not None:
            self._names[member] = name
        return self

    def members(
        self, category: Category, *members: Member
    ) -> "InstanceBuilder":
        """Declare several members of one category."""
        for member in members:
            self.member(member, category)
        return self

    def link(self, child: Member, parent: Member) -> "InstanceBuilder":
        """Add a child/parent edge; both members must be declared and the
        categories must be connected in the hierarchy (condition C1,
        checked eagerly so load errors point at the offending row)."""
        for member in (child, parent):
            if member not in self._members:
                raise SchemaError(f"undeclared member {member!r}")
        child_cat = self._members[child]
        parent_cat = self._members[parent]
        if not self.hierarchy.has_edge(child_cat, parent_cat):
            raise SchemaError(
                f"cannot link {child!r} ({child_cat}) under {parent!r} "
                f"({parent_cat}): no hierarchy edge"
            )
        self._edges.add((child, parent))
        return self

    def chain(self, *members: Member) -> "InstanceBuilder":
        """Link a whole rollup chain: ``chain(a, b, c)`` adds a<b and b<c."""
        for child, parent in zip(members, members[1:]):
            self.link(child, parent)
        return self

    def unlink(self, child: Member, parent: Member) -> "InstanceBuilder":
        """Remove an edge (no-op when absent)."""
        self._edges.discard((child, parent))
        return self

    def remove_member(self, member: Member) -> "InstanceBuilder":
        """Remove a member and all its incident edges."""
        self._members.pop(member, None)
        self._names.pop(member, None)
        self._edges = {
            (c, p) for c, p in self._edges if member not in (c, p)
        }
        return self

    def rename(self, member: Member, name: object) -> "InstanceBuilder":
        """Set a member's ``Name`` attribute."""
        if member not in self._members:
            raise SchemaError(f"undeclared member {member!r}")
        self._names[member] = name
        return self

    # ------------------------------------------------------------------
    # Inspection and freezing
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._members)

    def pending_orphans(self) -> List[Member]:
        """Members that would violate (C7) if frozen now: no parent and no
        direct edge from their category to All."""
        with_parents = {child for child, _parent in self._edges}
        return sorted(
            (
                member
                for member, category in self._members.items()
                if member not in with_parents
                and not self.hierarchy.has_edge(category, "All")
            ),
            key=repr,
        )

    def freeze(self, validate: bool = True) -> DimensionInstance:
        """Materialize the staged contents as a dimension instance."""
        return DimensionInstance(
            self.hierarchy,
            dict(self._members),
            sorted(self._edges, key=repr),
            names=dict(self._names),
            validate=validate,
        )
