"""A parallel batch decision engine over the satisfiability kernel.

Two independence results of the paper make its decision procedures
embarrassingly parallel:

* **Theorem 1** reduces schema-level summarizability to one implication
  test *per bottom category* - the tests share nothing but the schema, so
  they can run concurrently and the first failing bottom settles the
  verdict (the rest are cancelled);
* **Theorem 3** reduces category satisfiability to the existence of a
  frozen dimension, and DIMSAT's EXPAND enumerates *independent* candidate
  branches - each first-level branch job can run on its own worker, and
  the first witness cancels the losers.

:class:`ParallelDecisionEngine` exploits both, plus a third level the OLAP
layers need most: **request-level batching**.  ``decide_many`` takes a
whole batch of ``(schema, query)`` pairs - the aggregate navigator's
candidate sweep, the view selector's trial evaluations, a service's
queued traffic - deduplicates them by schema fingerprint and canonical
query key (the same keys the
:class:`~repro.core.decisioncache.DecisionCache` uses), and fans the
unique decisions out across a thread or process pool.

Executor modes
--------------

``mode="thread"``
    One shared :class:`~concurrent.futures.ThreadPoolExecutor`.  Single
    decisions (``dimsat``/``implies``/``is_summarizable``) additionally
    fan out their internal branches; caches are shared in-process, so
    every worker's verdict warms the same
    :class:`~repro.core.decisioncache.DecisionCache`.
``mode="process"``
    One shared :class:`~concurrent.futures.ProcessPoolExecutor` for
    ``decide_many``.  Schemas cross the boundary as their canonical JSON
    text (hierarchy + constraint *texts*), not as pickled ASTs: each
    worker re-parses and hash-conses the constraints into its own intern
    table, keyed by schema fingerprint, so a schema is re-interned once
    per worker no matter how many requests mention it.  Single decisions
    fall back to the in-process sequential kernel (fanning out the
    branches of *one* decision across processes would ship more state
    than it saves).

Robustness
----------

Every decision gets a fresh :class:`~repro.core.budget.DecisionBudget`
derived from the engine's template: node/time ceilings raise
:class:`~repro.errors.BudgetExceeded` (never a wrong verdict, never a
cache entry), and losing branches are cancelled cooperatively through the
budget's cancel flag.  When no executor can be created - or a process
pool breaks mid-flight - the engine degrades to the sequential kernel and
keeps answering.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    Executor,
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro._types import ALL, Category
from repro.constraints.ast import Node, Not
from repro.constraints.atoms import validate_constraint
from repro.constraints.parser import parse
from repro.constraints.printer import unparse
from repro.core.auditlog import AUDIT
from repro.core.budget import BudgetSpec, DecisionBudget, DecisionCancelled
from repro.core.decisioncache import (
    USE_DEFAULT_CACHE,
    DecisionCache,
    _options_key,
    resolve_cache,
)
from repro.core.dimsat import (
    DimsatOptions,
    DimsatResult,
    _Search,
    _trivial_all_result,
    dimsat,
)
from repro.core.faults import FAULTS
from repro.core.implication import ImplicationResult, is_implied
from repro.core.metrics import METRICS
from repro.core.schema import DimensionSchema
from repro.core.trace import TRACER
from repro.core.summarizability import (
    _check_categories,
    summarizability_constraints,
)
from repro.errors import BudgetExceeded, ReproError, SchemaError


#: A normalized decision request: ``("dimsat", category)``,
#: ``("implies", canonical_constraint_text)``, or
#: ``("summarizable", target, sorted_source_tuple)``.  The tuple is
#: picklable (constraints travel as canonical text) and doubles as the
#: dedup key alongside the schema fingerprint.
RequestKey = Tuple[Any, ...]

#: Request kinds ``decide_many`` understands.
REQUEST_KINDS = ("dimsat", "implies", "summarizable")

#: Time from task submission to the moment a worker picks it up - the
#: pool's congestion signal (milliseconds).
_H_QUEUE_WAIT = METRICS.histogram("engine.queue_wait_ms")
_M_DISPATCHED = METRICS.counter("engine.tasks_dispatched")
_M_CANCELLED = METRICS.counter("engine.tasks_cancelled")
_M_DEDUPED = METRICS.counter("engine.batch_deduped")


def normalize_request(request: Sequence[object]) -> RequestKey:
    """Canonicalize a decision request.

    Accepts ``("dimsat", category)``, ``("implies", constraint)`` (AST
    node or text), and ``("summarizable", target, sources)``.  The result
    is hashable, picklable, and canonical: two requests asking the same
    question normalize to the same key, which is what the batch dedup and
    the decision cache key on.
    """
    if not request:
        raise ReproError("empty decision request")
    kind = request[0]
    if kind == "dimsat":
        if len(request) != 2:
            raise ReproError("dimsat requests are ('dimsat', category)")
        return ("dimsat", request[1])
    if kind == "implies":
        if len(request) != 2:
            raise ReproError("implication requests are ('implies', constraint)")
        constraint = request[1]
        node: Node = parse(constraint) if isinstance(constraint, str) else constraint  # type: ignore[assignment]
        return ("implies", unparse(node))
    if kind == "summarizable":
        if len(request) != 3:
            raise ReproError(
                "summarizability requests are ('summarizable', target, sources)"
            )
        target, sources = request[1], request[2]
        return ("summarizable", target, tuple(sorted(set(sources))))  # type: ignore[arg-type]
    raise ReproError(
        f"unknown decision request kind {kind!r}; expected one of {REQUEST_KINDS}"
    )


@dataclass
class EngineStats:
    """Cumulative counters for one :class:`ParallelDecisionEngine`."""

    #: Single decisions served (``dimsat``/``implies``/``is_summarizable``).
    decisions: int = 0
    #: Requests received by ``decide_many`` (before dedup).
    batch_requests: int = 0
    #: Requests answered by batch dedup instead of a worker.
    batch_deduped: int = 0
    #: Branch/bottom tasks dispatched to workers.
    tasks_dispatched: int = 0
    #: Tasks cancelled cooperatively after the verdict settled.
    tasks_cancelled: int = 0
    #: Decisions served by the sequential fallback path.
    sequential_fallbacks: int = 0


class ParallelDecisionEngine:
    """Batched, concurrent decision serving with budgets and cancellation.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` uses ``os.cpu_count()``.  ``<= 1`` disables
        the pool entirely (pure sequential fallback).
    mode:
        ``"thread"`` (default) or ``"process"`` - see the module
        docstring for the trade-off.
    budget:
        A :class:`~repro.core.budget.DecisionBudget` *template*: every
        decision gets a ``fresh()`` copy, so the ceilings are per
        decision, not per engine lifetime.
    options:
        :class:`~repro.core.dimsat.DimsatOptions` applied to every
        underlying search.
    cache:
        The :class:`~repro.core.decisioncache.DecisionCache` verdicts are
        memoized in (default: the process-wide one; ``None`` disables
        caching).  In process mode each worker additionally keeps its own
        process-wide cache warm.

    The engine is itself thread-safe and can be shared; use it as a
    context manager or call :meth:`shutdown` to release the pool.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        mode: str = "thread",
        budget: Optional[DecisionBudget] = None,
        options: Optional[DimsatOptions] = None,
        cache: object = USE_DEFAULT_CACHE,
    ) -> None:
        if mode not in ("thread", "process"):
            raise ReproError(f"unknown executor mode {mode!r}")
        self.mode = mode
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self.budget_template = budget
        self.options = options
        self.cache: Optional[DecisionCache] = resolve_cache(cache)
        self.stats = EngineStats()
        self._lock = threading.Lock()
        self._executor: Optional[Executor] = None
        self._executor_failed = False
        self._closed = False

    # ------------------------------------------------------------------
    # Executor lifecycle
    # ------------------------------------------------------------------

    def _get_executor(self) -> Optional[Executor]:
        """The shared pool, or ``None`` when running sequentially."""
        if self.max_workers <= 1 or self._executor_failed or self._closed:
            return None
        with self._lock:
            if self._executor is None:
                try:
                    FAULTS.pool_create()
                    if self.mode == "process":
                        self._executor = ProcessPoolExecutor(
                            max_workers=self.max_workers
                        )
                    else:
                        self._executor = ThreadPoolExecutor(
                            max_workers=self.max_workers,
                            thread_name_prefix="repro-decide",
                        )
                except (OSError, RuntimeError):
                    # No processes/threads available (sandboxes, resource
                    # limits): remember and serve sequentially from now on.
                    self._executor_failed = True
                    return None
            return self._executor

    def _note_fallback(self) -> None:
        with self._lock:
            self.stats.sequential_fallbacks += 1

    def shutdown(self, wait_for_tasks: bool = True) -> None:
        """Release the worker pool (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=wait_for_tasks)

    def __enter__(self) -> "ParallelDecisionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Budgets
    # ------------------------------------------------------------------

    def _fresh_budget(self) -> DecisionBudget:
        """A per-decision budget (always concrete, so cancellation works
        even when no ceiling was configured)."""
        if self.budget_template is not None:
            return self.budget_template.fresh()
        return DecisionBudget()

    def _budget_spec(self) -> Optional[BudgetSpec]:
        if self.budget_template is None:
            return None
        return self.budget_template.spec()

    # ------------------------------------------------------------------
    # Single decisions: branch-level fan-out (thread mode)
    # ------------------------------------------------------------------

    def dimsat(self, schema: DimensionSchema, category: Category) -> DimsatResult:
        """Category satisfiability with the engine's parallel fan-out.

        The *verdict* is deterministic and memoized under the same cache
        key the sequential kernel uses; the ``witness`` may be any frozen
        dimension (whichever branch won the race).
        """
        with self._lock:
            self.stats.decisions += 1
        if self.cache is not None:
            key = ("dimsat", category, _options_key(self.options))
            return self.cache.memoize(  # type: ignore[return-value]
                schema, key, lambda: self._dimsat_fanout(schema, category)
            )
        return self._dimsat_fanout(schema, category)

    def is_satisfiable(self, schema: DimensionSchema, category: Category) -> bool:
        return self.dimsat(schema, category).satisfiable

    def implies(self, schema: DimensionSchema, constraint: object) -> ImplicationResult:
        """``ds |= alpha`` via Theorem 2, refuted with the parallel search."""
        with self._lock:
            self.stats.decisions += 1
        node: Node = parse(constraint) if isinstance(constraint, str) else constraint  # type: ignore[assignment]
        if self.cache is not None:
            key = ("implies", unparse(node), _options_key(self.options))
            return self.cache.memoize(  # type: ignore[return-value]
                schema, key, lambda: self._implies_fanout(schema, node)
            )
        return self._implies_fanout(schema, node)

    def is_implied(self, schema: DimensionSchema, constraint: object) -> bool:
        return self.implies(schema, constraint).implied

    def is_summarizable(
        self,
        schema: DimensionSchema,
        target: Category,
        sources: Iterable[Category],
    ) -> bool:
        """Theorem 1 with the per-bottom-category implication tests fanned
        out across the pool; the first failing bottom cancels the rest."""
        with self._lock:
            self.stats.decisions += 1
        source_key = tuple(sorted(set(sources)))
        _check_categories(schema.hierarchy, target, source_key)
        if self.cache is not None:
            key = ("summarizable", target, source_key, _options_key(self.options))
            return self.cache.memoize(  # type: ignore[return-value]
                schema,
                key,
                lambda: self._summarizable_fanout(schema, target, source_key),
            )
        return self._summarizable_fanout(schema, target, source_key)

    def _dimsat_fanout(self, schema: DimensionSchema, category: Category) -> DimsatResult:
        options = self.options or DimsatOptions()
        budget = self._fresh_budget()
        executor = self._get_executor() if self.mode == "thread" else None
        if executor is None:
            self._note_fallback()
            FAULTS.worker()
            return dimsat(schema, category, options, budget)
        if not schema.hierarchy.has_category(category):
            raise SchemaError(f"unknown category {category!r}")
        if category == ALL:
            return _trivial_all_result(options)

        search = _Search(schema, category, options, budget=budget)
        _root_state, jobs = search.initial_jobs()
        if not jobs:
            return DimsatResult(
                satisfiable=False, witness=None, stats=search.stats, trace=search.trace
            )

        submitted = time.perf_counter()

        def run_branch(job: Tuple[object, ...]) -> object:
            _H_QUEUE_WAIT.observe((time.perf_counter() - submitted) * 1000.0)
            FAULTS.worker()
            try:
                return next(search.expand_from(job), None)  # type: ignore[arg-type]
            except DecisionCancelled:
                # The verdict settled elsewhere; this branch's work is moot.
                return None

        futures: List[Future] = [executor.submit(run_branch, job) for job in jobs]
        with self._lock:
            self.stats.tasks_dispatched += len(futures)
        _M_DISPATCHED.inc(len(futures))
        if TRACER.enabled:
            TRACER.event(
                "engine.dispatch", kind="dimsat", category=category, tasks=len(futures)
            )
        witness = None
        budget_error: Optional[BudgetExceeded] = None
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        result = future.result()
                    except BudgetExceeded as exc:
                        budget_error = exc
                        budget.cancel()
                        continue
                    if result is not None and witness is None:
                        witness = result
                        # Cooperative cancellation: one frozen dimension
                        # settles satisfiability, the losers stop at their
                        # next budget checkpoint.
                        budget.cancel()
                        with self._lock:
                            self.stats.tasks_cancelled += len(pending)
                        _M_CANCELLED.inc(len(pending))
                        if TRACER.enabled and pending:
                            TRACER.event(
                                "engine.cancel", kind="dimsat", losers=len(pending)
                            )
        except BaseException:
            # A branch died for a reason the race does not understand (an
            # injected fault, a real OSError): cancel the survivors so the
            # failed decision cannot leak running work into the pool.
            budget.cancel()
            raise
        if witness is None and budget_error is not None:
            # Some branch ran out of budget and no other branch found a
            # witness: "unsatisfiable" would be unsound, so re-raise.
            raise budget_error
        budget.publish()
        return DimsatResult(
            satisfiable=witness is not None,
            witness=witness,
            stats=search.stats,
            trace=search.trace,
        )

    def _implies_fanout(self, schema: DimensionSchema, node: Node) -> ImplicationResult:
        root = validate_constraint(schema.hierarchy, node)
        extended = schema.with_constraints([Not(node)])
        result = self._dimsat_fanout(extended, root)
        return ImplicationResult(
            implied=not result.satisfiable,
            counterexample=result.witness,
            dimsat_result=result,
        )

    def _summarizable_fanout(
        self,
        schema: DimensionSchema,
        target: Category,
        sources: Tuple[Category, ...],
    ) -> bool:
        options = self.options
        tests = [
            (bottom, node)
            for bottom, node in summarizability_constraints(
                schema.hierarchy, target, sources
            )
            if bottom != ALL
        ]
        executor = self._get_executor() if self.mode == "thread" else None
        if executor is None or len(tests) <= 1:
            if executor is None:
                self._note_fallback()
            FAULTS.worker()
            budget = self._fresh_budget()
            return all(
                is_implied(schema, node, options, cache=self.cache, budget=budget)
                for _bottom, node in tests
            )

        budget = self._fresh_budget()
        submitted = time.perf_counter()

        def run_bottom(node: Node) -> Optional[bool]:
            _H_QUEUE_WAIT.observe((time.perf_counter() - submitted) * 1000.0)
            FAULTS.worker()
            try:
                return is_implied(
                    schema, node, options, cache=self.cache, budget=budget
                )
            except DecisionCancelled:
                return None

        futures = [executor.submit(run_bottom, node) for _bottom, node in tests]
        with self._lock:
            self.stats.tasks_dispatched += len(futures)
        _M_DISPATCHED.inc(len(futures))
        if TRACER.enabled:
            TRACER.event(
                "engine.dispatch",
                kind="summarizable",
                target=target,
                tasks=len(futures),
            )
        verdict = True
        budget_error: Optional[BudgetExceeded] = None
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        implied = future.result()
                    except BudgetExceeded as exc:
                        budget_error = exc
                        budget.cancel()
                        continue
                    if implied is False and verdict:
                        verdict = False
                        # One bottom category violates Theorem 1's
                        # implication: the answer is "no" whatever the
                        # others say.
                        budget.cancel()
                        with self._lock:
                            self.stats.tasks_cancelled += len(pending)
                        _M_CANCELLED.inc(len(pending))
                        if TRACER.enabled and pending:
                            TRACER.event(
                                "engine.cancel",
                                kind="summarizable",
                                losers=len(pending),
                            )
        except BaseException:
            # See _dimsat_fanout: a faulted bottom must not leave its
            # siblings running after the decision has already failed.
            budget.cancel()
            raise
        if verdict and budget_error is not None:
            # Every finished bottom passed, but at least one was aborted:
            # "yes" would be unsound.
            raise budget_error
        budget.publish()
        return verdict

    # ------------------------------------------------------------------
    # The batch API: request-level fan-out with cross-request dedup
    # ------------------------------------------------------------------

    def decide_many(
        self,
        items: Iterable[Tuple[DimensionSchema, Sequence[object]]],
    ) -> List[bool]:
        """Answer a batch of ``(schema, request)`` pairs.

        Requests are normalized (see :func:`normalize_request`), deduped
        by ``(schema fingerprint, canonical request)`` so each distinct
        question is decided exactly once per batch, and the unique
        decisions run concurrently on the pool (each inside its own fresh
        budget).  Verdicts come back as booleans aligned with the input
        order: satisfiable / implied / summarizable.

        Requests inside a batch run the sequential kernel per worker -
        batching parallelizes *across* requests; use the single-decision
        methods for *intra*-decision fan-out.

        A request that fails (a budget abort, a worker fault) raises; use
        :meth:`try_decide_many` when the batch must survive individual
        failures.
        """
        results = self.try_decide_many(items)
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return results  # type: ignore[return-value]

    def try_decide_many(
        self,
        items: Iterable[Tuple[DimensionSchema, Sequence[object]]],
    ) -> List[object]:
        """:meth:`decide_many` with per-request fault containment.

        Each element of the returned list (aligned with the input order)
        is either the boolean verdict or the exception instance that
        request's decision raised - one crashed worker no longer takes
        down the rest of the batch.  Malformed requests still raise
        immediately from :func:`normalize_request` (they are caller bugs,
        not service faults).  Duplicated requests share one decision, so
        they also share one failure.
        """
        pairs = [(schema, normalize_request(request)) for schema, request in items]
        with self._lock:
            self.stats.batch_requests += len(pairs)

        unique: Dict[Tuple[str, RequestKey], List[int]] = {}
        order: List[Tuple[Tuple[str, RequestKey], DimensionSchema, RequestKey]] = []
        for index, (schema, key) in enumerate(pairs):
            ukey = (schema.fingerprint(), key)
            if ukey not in unique:
                unique[ukey] = []
                order.append((ukey, schema, key))
            unique[ukey].append(index)
        deduped = len(pairs) - len(order)
        with self._lock:
            self.stats.batch_deduped += deduped
        _M_DEDUPED.inc(deduped)
        if TRACER.enabled:
            TRACER.event(
                "engine.batch", requests=len(pairs), unique=len(order), deduped=deduped
            )

        results: Dict[Tuple[str, RequestKey], object] = {}
        executor = self._get_executor()
        if executor is None:
            self._note_fallback()
            for ukey, schema, key in order:
                try:
                    results[ukey] = self._decide_sequential(schema, key)
                except Exception as exc:
                    results[ukey] = exc
        elif self.mode == "process":
            self._decide_many_process(executor, order, results)
        else:
            submitted = time.perf_counter()

            def run_request(schema: DimensionSchema, key: RequestKey) -> bool:
                _H_QUEUE_WAIT.observe((time.perf_counter() - submitted) * 1000.0)
                return self._decide_sequential(schema, key)

            futures = {
                executor.submit(run_request, schema, key): ukey
                for ukey, schema, key in order
            }
            with self._lock:
                self.stats.tasks_dispatched += len(futures)
            _M_DISPATCHED.inc(len(futures))
            for future, ukey in futures.items():
                try:
                    results[ukey] = future.result()
                except Exception as exc:
                    results[ukey] = exc

        return [results[(schema.fingerprint(), key)] for schema, key in pairs]

    def _decide_many_process(
        self,
        executor: Executor,
        order: List[Tuple[Tuple[str, RequestKey], DimensionSchema, RequestKey]],
        results: Dict[Tuple[str, RequestKey], object],
    ) -> None:
        """Dispatch a deduped batch to the process pool.

        Schemas travel as canonical JSON text; workers re-intern them once
        per fingerprint (see :func:`_process_decide`).  A broken pool
        degrades to the in-process sequential path for the remaining
        requests instead of failing the batch; other per-task failures
        are captured into ``results`` for the caller to classify.
        """
        from concurrent.futures.process import BrokenProcessPool

        from repro.io.json_io import schema_to_json

        spec = self._budget_spec()
        options = self.options
        try:
            futures = {
                executor.submit(
                    _process_decide,
                    schema_to_json(schema),
                    schema.fingerprint(),
                    key,
                    options,
                    spec,
                ): ukey
                for ukey, schema, key in order
            }
            with self._lock:
                self.stats.tasks_dispatched += len(futures)
            for future, ukey in futures.items():
                try:
                    results[ukey] = future.result()
                except BrokenProcessPool:
                    raise
                except Exception as exc:
                    results[ukey] = exc
        except BrokenProcessPool:
            with self._lock:
                self._executor_failed = True
            self._note_fallback()
            for ukey, schema, key in order:
                if ukey not in results:
                    try:
                        results[ukey] = self._decide_sequential(schema, key)
                    except Exception as exc:
                        results[ukey] = exc

    def _decide_sequential(self, schema: DimensionSchema, key: RequestKey) -> bool:
        """One normalized request on the sequential kernel (runs inside a
        pool worker in thread mode)."""
        budget = (
            self.budget_template.fresh() if self.budget_template is not None else None
        )
        return _decide(schema, key, self.options, self.cache, budget)


# ----------------------------------------------------------------------
# Request execution (shared by thread workers and process workers)
# ----------------------------------------------------------------------


def _decide(
    schema: DimensionSchema,
    key: RequestKey,
    options: Optional[DimsatOptions],
    cache: Optional[DecisionCache],
    budget: Optional[DecisionBudget],
) -> bool:
    # The per-decision fault checkpoint: every batch worker (thread or
    # process) and the sequential fallback pass through here, so injected
    # worker faults hit all rungs of the resilience ladder uniformly.
    FAULTS.worker()
    if cache is not None or not AUDIT.enabled:
        # Cached decisions are audited inside DecisionCache.memoize
        # (which also knows the hit/miss flag); only the uncached path
        # needs a record here.
        return _dispatch(schema, key, options, cache, budget)
    start = time.perf_counter()
    verdict = _dispatch(schema, key, options, cache, budget)
    AUDIT.record_decision(
        schema,
        key,
        _options_key(options),
        verdict,
        (time.perf_counter() - start) * 1000.0,
        cache_hit=False,
    )
    return verdict


def _dispatch(
    schema: DimensionSchema,
    key: RequestKey,
    options: Optional[DimsatOptions],
    cache: Optional[DecisionCache],
    budget: Optional[DecisionBudget],
) -> bool:
    from repro.core.implication import is_category_satisfiable
    from repro.core.summarizability import is_summarizable_in_schema

    kind = key[0]
    if kind == "dimsat":
        return is_category_satisfiable(schema, key[1], options, cache, budget)
    if kind == "implies":
        return is_implied(schema, key[1], options, cache, budget)
    if kind == "summarizable":
        return is_summarizable_in_schema(
            schema, key[1], key[2], options, cache, budget
        )
    raise ReproError(f"unknown decision request kind {kind!r}")  # pragma: no cover


#: Worker-side schema memo: fingerprint -> re-interned schema.  Rebuilding
#: a schema from JSON re-parses and hash-conses every constraint into the
#: worker's intern table, so all the kernel's identity-keyed memos work;
#: doing it once per fingerprint makes repeat traffic on a schema free.
_WORKER_SCHEMAS: Dict[str, DimensionSchema] = {}


def _process_decide(
    schema_json: str,
    fingerprint: str,
    key: RequestKey,
    options: Optional[DimsatOptions],
    budget_spec: Optional[BudgetSpec],
) -> bool:
    """Decide one request inside a process-pool worker."""
    from repro.core.decisioncache import default_decision_cache
    from repro.io.json_io import schema_from_json

    schema = _WORKER_SCHEMAS.get(fingerprint)
    if schema is None:
        schema = schema_from_json(schema_json)
        _WORKER_SCHEMAS[fingerprint] = schema
    budget = DecisionBudget.from_spec(budget_spec)
    # Each worker keeps its own process-wide cache warm across requests.
    return _decide(schema, key, options, default_decision_cache(), budget)
