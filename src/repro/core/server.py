"""The long-lived decision server: warm state as shared infrastructure.

Every prior layer made decisions cheaper to *re-serve* - compiled
artifacts, the persistent :class:`~repro.core.decisioncache.DecisionCache`,
provenance-scoped rekeying across edits - but a CLI invocation still pays
process startup and dies with its warm state.  :class:`DecisionServer`
keeps that state resident: one process, one shared
:class:`~repro.core.resilience.ResilientDecisionEngine`, many concurrent
clients over the :mod:`repro.core.wire` protocol.

Architecture
------------

* **One asyncio event loop** (stdlib only) accepts connections and runs
  each connection's frame loop serially; concurrency comes from
  multiplexing connections, exactly like the classic single-threaded
  reactor in front of a worker pool.
* **Decisions run off-loop** in a bounded ``ThreadPoolExecutor``.  The
  kernel is synchronous, CPU-bound work; the loop thread only parses
  frames and dispatches.  (The compiled tier's per-root solver is locked
  for exactly this multi-threaded use.)
* **Backpressure is typed, never wrong.**  Past ``max_inflight``
  concurrently executing decisions the server answers ``status="busy"``
  *without evaluating the request* - a BUSY can always be retried and
  can never stand in for a verdict.  Per-decision ceilings ride on the
  engine's own :class:`~repro.core.budget.DecisionBudget`
  (``status="budget-exceeded"``), and a decision every resilience rung
  failed comes back ``status="unknown"`` with its failure provenance.
* **Schemas are tenants, keyed by fingerprint.**  ``load-schema``
  registers a schema and returns its fingerprint; every decision op
  names the fingerprint it runs against.  An ``edit`` produces a new
  immutable schema under a *new* fingerprint (the old one stays
  registered and correct - immutable schemas cannot go stale), rekeying
  the shared cache's surviving verdicts via the provenance layer, so
  connected clients keep their warm hits across the edit.
* **The ops surface is the telemetry pipeline.**  Connections emit
  paired ``server.connect``/``server.disconnect`` events; every request
  runs inside a ``server.request`` span *on its executor thread* (the
  tracer's span stack is thread-local, so spans nest correctly there);
  every served verdict auto-records on the audit log through the cache
  layer, replayable by ``repro-olap audit-verify``.
* **Warm state survives shutdown** - graceful (``shutdown`` op) *and*
  signalled (SIGINT/SIGTERM): the cache is persisted to ``cache_dir``
  with the merge-on-save discipline, so a sidecar CLI sharing the
  directory is never overwritten away.

``repro-olap serve`` wraps this class; ``repro-olap call`` and
:class:`repro.core.client.DecisionClient` speak to it.
"""

from __future__ import annotations

import asyncio
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Dict, List, Optional, Tuple

from repro.core.decisioncache import DecisionCache
from repro.core.metrics import METRICS
from repro.core.resilience import ResilientDecisionEngine
from repro.core.schema import DimensionSchema
from repro.core.trace import TRACER
from repro.core.wire import (
    WireError,
    error_response,
    read_frame_async,
    write_frame_async,
)
from repro.errors import BudgetExceeded, DecisionUnavailable, ReproError

__all__ = ["DecisionServer", "ServerStats", "DECISION_OPS", "ALL_OPS"]

_M_REQUESTS = METRICS.counter("server.requests")
_M_BUSY = METRICS.counter("server.busy_responses")
_M_CONNECTIONS = METRICS.counter("server.connections")

#: Ops that evaluate decisions (and therefore honor the BUSY gate).
DECISION_OPS = ("decide", "implies", "summarizable", "navigate")
#: Every op the server answers.
ALL_OPS = DECISION_OPS + ("load-schema", "edit", "stats", "shutdown")


@dataclass
class ServerStats:
    """Cumulative counters across one server's lifetime."""

    started_monotonic: float = 0.0
    connections_opened: int = 0
    connections_closed: int = 0
    requests: int = 0
    busy_responses: int = 0
    errors: int = 0
    served: Dict[str, int] = field(default_factory=dict)

    def count(self, op: str) -> None:
        self.requests += 1
        self.served[op] = self.served.get(op, 0) + 1


class DecisionServer:
    """A multi-client decision service over one shared resilient engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.resilience.ResilientDecisionEngine`
        serving every verdict.  A plain engine (parallel / compiled) is
        wrapped, so the degradation ladder is always in front of
        clients: a worker crash degrades, it never disconnects.
    host, port:
        Bind address.  ``port=0`` binds an ephemeral port; read
        :attr:`port` after :meth:`start`.
    cache_dir:
        When set, the engine's decision cache is loaded from here at
        startup (replay-verified) and persisted back on *every* stop
        path - graceful ``shutdown`` op, SIGINT, SIGTERM.
    max_inflight:
        Concurrently *executing* decisions past which decision ops get
        ``status="busy"``.  Also sizes the executor, so the gate bounds
        both queue depth and thread count.
    verify_cache_on_load:
        Replay loaded entries against the sequential kernel before
        serving them (the persistent cache's default posture).
    """

    def __init__(
        self,
        engine: Optional[ResilientDecisionEngine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: Optional[str] = None,
        max_inflight: int = 8,
        verify_cache_on_load: bool = True,
    ) -> None:
        if engine is None:
            engine = ResilientDecisionEngine(max_workers=2)
        elif not isinstance(engine, ResilientDecisionEngine):
            engine = ResilientDecisionEngine(engine)
        if max_inflight < 1:
            raise ReproError("max_inflight must be at least 1")
        self.engine = engine
        self.host = host
        self._requested_port = port
        self.cache_dir = cache_dir
        self.max_inflight = max_inflight
        self.verify_cache_on_load = verify_cache_on_load
        self.stats = ServerStats()
        #: fingerprint -> registered immutable schema (the tenant registry).
        self._schemas: Dict[str, DimensionSchema] = {}
        self._schemas_lock = threading.Lock()
        #: Serializes ``edit`` ops; decisions on immutable schema objects
        #: run concurrently with edits safely.
        self._edit_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="decision"
        )
        self._inflight = 0  # touched only on the event loop thread
        self._conn_tasks: set = set()
        self._conn_writers: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stopping = False
        self._saved = False
        #: Set once the socket is bound - lets a thread that launched
        #: :meth:`run` in the background wait for :attr:`port`.
        self.started = threading.Event()
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # The tenant registry
    # ------------------------------------------------------------------

    @property
    def cache(self) -> Optional[DecisionCache]:
        """The decision cache behind the engine (shared by every client)."""
        return self.engine.engine.cache

    def register_schema(self, schema: DimensionSchema) -> str:
        """Register a schema; returns its fingerprint (idempotent)."""
        fingerprint = schema.fingerprint()
        with self._schemas_lock:
            self._schemas.setdefault(fingerprint, schema)
        return fingerprint

    def _schema_for(self, document: Dict[str, Any]) -> DimensionSchema:
        fingerprint = document.get("fingerprint")
        if not isinstance(fingerprint, str):
            raise ReproError("request carries no schema fingerprint")
        with self._schemas_lock:
            schema = self._schemas.get(fingerprint)
        if schema is None:
            raise ReproError(
                f"unknown schema fingerprint {fingerprint[:12]!r} "
                "(load-schema first)"
            )
        return schema

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, load the persistent cache, arm the signal
        handlers.  Returns once :attr:`port` is live."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self.cache_dir and self.cache is not None:
            from repro.core.cachestore import CacheStoreError, load_cache

            try:
                load_cache(
                    self.cache,
                    self.cache_dir,
                    verify_replay=self.verify_cache_on_load,
                )
            except CacheStoreError:
                # A bad cache file costs a cold start, never the server.
                pass
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        sockets = self._server.sockets or []
        for sock in sockets:
            if sock.family in (socket.AF_INET, socket.AF_INET6):
                self.port = sock.getsockname()[1]
                break
        self.stats.started_monotonic = time.monotonic()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread or non-POSIX loop: CLI layer copes
        self.started.set()

    def request_shutdown(self) -> None:
        """Begin a graceful stop; safe from signal handlers and from
        other threads (the ``shutdown`` op and SIGINT both land here)."""
        loop = self._loop
        if loop is None or self._stop_event is None:
            return
        self._stopping = True
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            self._stop_event.set()
        else:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                # The loop already closed: the server is stopped, and a
                # late shutdown request (second signal, belt-and-braces
                # caller cleanup) must be a no-op, not a crash.
                pass

    async def wait_stopped(self) -> None:
        assert self._stop_event is not None, "start() first"
        await self._stop_event.wait()

    async def stop(self) -> None:
        """Stop accepting, drain the executor, persist the warm state."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Drain connections before the loop closes: closing each writer
        # EOFs its reader, so idle connection loops end cleanly here
        # instead of as cancellations at loop teardown.  Cancellation is
        # only the fallback for a handler that will not drain.
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            _done, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=5.0
            )
            for task in pending:  # pragma: no cover - wedged handler
                task.cancel()
            if pending:  # pragma: no cover
                await asyncio.gather(*pending, return_exceptions=True)
        self._executor.shutdown(wait=True)
        self._persist()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                if self._loop is not None:
                    self._loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # pragma: no cover - mirrors the add-side fallback

    def _persist(self) -> None:
        """Save the cache (merge-on-save, idempotent per stop)."""
        if self._saved or not self.cache_dir or self.cache is None:
            return
        from repro.core.cachestore import save_cache
        from repro.core.faults import CacheStoreFault

        try:
            save_cache(self.cache, self.cache_dir)
            self._saved = True
        except (CacheStoreFault, OSError):
            # A failed save only costs the next process a cold start.
            pass

    def run(self) -> None:
        """Blocking convenience: start, serve until stopped, clean up.

        SIGINT/SIGTERM trigger the same graceful path as the
        ``shutdown`` op, so a Ctrl-C mid-traffic still persists the
        cache.  Suitable as a plain ``Thread`` target in tests (the
        signal handlers degrade to no-ops off the main thread).
        """
        asyncio.run(self._run_async())

    async def _run_async(self) -> None:
        await self.start()
        try:
            await self.wait_stopped()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # The connection loop
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        self.stats.connections_opened += 1
        _M_CONNECTIONS.inc()
        if TRACER.enabled:
            TRACER.event("server.connect", peer=str(peer))
        try:
            while not self._stopping:
                try:
                    request = await read_frame_async(reader)
                except WireError as error:
                    # A torn or malformed frame poisons this connection
                    # only; answer once (best effort) and hang up.
                    try:
                        await write_frame_async(
                            writer, error_response("?", str(error))
                        )
                    except (ConnectionError, WireError, OSError):
                        pass
                    break
                if request is None:  # clean EOF between frames
                    break
                response = await self._handle_request(request)
                try:
                    await write_frame_async(writer, response)
                except (ConnectionError, OSError):
                    break
                if request.get("op") == "shutdown":
                    break
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._conn_writers.discard(writer)
            self.stats.connections_closed += 1
            if TRACER.enabled:
                TRACER.event("server.disconnect", peer=str(peer))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # A task cancelled by stop() re-raises at this await; the
                # socket is closed either way.
                pass

    async def _handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        request_id = request.get("id")
        extra = {} if request_id is None else {"id": request_id}
        if not isinstance(op, str) or op not in ALL_OPS:
            self.stats.errors += 1
            return error_response(
                str(op), f"unknown op {op!r} (known: {', '.join(ALL_OPS)})",
                **extra,
            )
        _M_REQUESTS.inc()
        self.stats.count(op)
        if op == "stats":
            return {"op": op, "status": "ok", **self._stats_payload(), **extra}
        if op == "shutdown":
            # Answer first, then stop: the client gets its ack even
            # though the listener is about to close.
            assert self._loop is not None
            self._loop.call_soon(self.request_shutdown)
            return {"op": op, "status": "ok", "stopping": True, **extra}
        if op in DECISION_OPS and self._inflight >= self.max_inflight:
            # The typed BUSY: nothing was evaluated, retrying is sound.
            self.stats.busy_responses += 1
            _M_BUSY.inc()
            return {
                "op": op,
                "status": "busy",
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                **extra,
            }
        assert self._loop is not None
        self._inflight += 1
        try:
            payload = await self._loop.run_in_executor(
                self._executor, self._serve_sync, op, request
            )
        finally:
            self._inflight -= 1
        if payload.get("status") == "error":
            self.stats.errors += 1
        payload.update(extra)
        return payload

    # ------------------------------------------------------------------
    # Request execution (executor threads)
    # ------------------------------------------------------------------

    def _serve_sync(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request, synchronously, on an executor thread.  Returns a
        complete response document; exceptions become typed statuses."""
        with TRACER.span("server.request", op=op) as span:
            try:
                result = self._dispatch_sync(op, request)
            except BudgetExceeded as error:
                span.set(status="budget-exceeded")
                return {
                    "op": op,
                    "status": "budget-exceeded",
                    "error": str(error),
                }
            except DecisionUnavailable as error:
                span.set(status="unknown")
                return {
                    "op": op,
                    "status": "unknown",
                    "error": str(error),
                    "failures": [
                        record.as_dict() for record in error.failures
                    ],
                }
            except (ReproError, ValueError, KeyError, TypeError) as error:
                span.set(status="error")
                return error_response(op, error)
            span.set(status="ok")
            return {"op": op, "status": "ok", **result}

    def _dispatch_sync(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        if op == "load-schema":
            return self._op_load_schema(request)
        if op == "edit":
            return self._op_edit(request)
        schema = self._schema_for(request)
        if op == "decide":
            return self._op_decide(schema, request)
        if op == "implies":
            return self._op_implies(schema, request)
        if op == "summarizable":
            return self._op_summarizable(schema, request)
        if op == "navigate":
            return self._op_navigate(schema, request)
        raise ReproError(f"unroutable op {op!r}")  # pragma: no cover

    def _op_load_schema(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from repro.io.json_io import schema_from_json

        text = request.get("schema_json")
        if not isinstance(text, str):
            raise ReproError("load-schema needs schema_json (a JSON string)")
        schema = schema_from_json(text)
        fingerprint = self.register_schema(schema)
        return {
            "fingerprint": fingerprint,
            "categories": len(schema.hierarchy.categories),
            "constraints": len(schema.constraints),
        }

    def _op_decide(
        self, schema: DimensionSchema, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        raw = request.get("request")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ReproError(
                'decide needs request=["dimsat"|"implies"|"summarizable", ...]'
            )
        outcome = self.engine.decide(schema, [
            tuple(part) if isinstance(part, list) else part for part in raw
        ])
        if outcome.unknown:
            return {
                "status": "unknown",
                "verdict": None,
                "attempts": outcome.attempts,
                "failures": [f.as_dict() for f in outcome.failures],
            }
        return {
            "verdict": outcome.verdict,
            "rung": outcome.rung,
            "attempts": outcome.attempts,
        }

    def _op_implies(
        self, schema: DimensionSchema, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        constraint = request.get("constraint")
        if not isinstance(constraint, str):
            raise ReproError("implies needs constraint (textual syntax)")
        result = self.engine.implies(schema, constraint)
        payload: Dict[str, Any] = {"verdict": bool(result.implied)}
        if not result.implied and result.counterexample is not None:
            payload["counterexample"] = str(result.counterexample)
        return payload

    def _op_summarizable(
        self, schema: DimensionSchema, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        target = request.get("target")
        sources = request.get("sources")
        if not isinstance(target, str) or not isinstance(sources, list):
            raise ReproError("summarizable needs target and sources=[...]")
        verdict = self.engine.is_summarizable(schema, target, sources)
        return {
            "verdict": bool(verdict),
            "target": target,
            "sources": sorted(set(sources)),
        }

    def _op_navigate(
        self, schema: DimensionSchema, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """The schema-level aggregate-navigation plan (Section 6 without
        the data): answer a query at ``target`` from the ``materialized``
        category views.  Deterministic search order (size, then lexical),
        so every client sees byte-identical plans."""
        target = request.get("target")
        materialized = request.get("materialized")
        max_sources = request.get("max_sources", 3)
        if not isinstance(target, str) or not isinstance(materialized, list):
            raise ReproError("navigate needs target and materialized=[...]")
        if target in materialized:
            return {
                "plan": "materialized",
                "target": target,
                "sources": [target],
                "checked": 0,
            }
        reachable = sorted(
            category
            for category in set(materialized)
            if category != target
            and category in schema.hierarchy.categories
            and schema.hierarchy.reaches(category, target)
        )
        checked = 0
        for size in range(1, min(int(max_sources), len(reachable)) + 1):
            for combo in combinations(reachable, size):
                checked += 1
                if self.engine.is_summarizable(schema, target, combo):
                    return {
                        "plan": "rewritten",
                        "target": target,
                        "sources": list(combo),
                        "checked": checked,
                    }
        return {
            "plan": "base-scan",
            "target": target,
            "sources": [],
            "checked": checked,
        }

    def _op_edit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One schema mutation; returns the *new* fingerprint.

        The old fingerprint stays registered: its schema object is
        immutable, so in-flight and follow-up decisions against it stay
        correct - they are just served cold once the shared cache has
        rekeyed its surviving verdicts to the new fingerprint.
        """
        from repro.olap.maintenance import SchemaEditor

        action = request.get("action")
        with self._edit_lock:
            schema = self._schema_for(request)
            editor = SchemaEditor(schema, cache=self.cache)
            if action == "add-constraint":
                edited = editor.add_constraint(request["constraint"])
            elif action == "drop-constraint":
                edited = editor.drop_constraint(request["constraint"])
            elif action == "add-edge":
                edited = editor.add_edge(request["child"], request["parent"])
            elif action == "drop-edge":
                edited = editor.drop_edge(request["child"], request["parent"])
            elif action == "add-category":
                edited = editor.add_category(
                    request["category"],
                    request.get("parents", ()),
                    request.get("children", ()),
                )
            elif action == "drop-category":
                edited = editor.drop_category(request["category"])
            else:
                raise ReproError(
                    f"unknown edit action {action!r} (known: add-constraint, "
                    "drop-constraint, add-edge, drop-edge, add-category, "
                    "drop-category)"
                )
            new_fingerprint = self.register_schema(edited)
        return {
            "fingerprint": new_fingerprint,
            "replaced": schema.fingerprint(),
        }

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def _stats_payload(self) -> Dict[str, Any]:
        cache = self.cache
        cache_stats: Dict[str, Any] = {}
        if cache is not None:
            cache_stats = dict(cache.stats.as_dict())
            cache_stats["entries"] = len(cache)
        return {
            "uptime_s": round(
                time.monotonic() - self.stats.started_monotonic, 3
            ),
            "requests": self.stats.requests,
            "served": dict(sorted(self.stats.served.items())),
            "busy_responses": self.stats.busy_responses,
            "errors": self.stats.errors,
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "connections_open": (
                self.stats.connections_opened - self.stats.connections_closed
            ),
            "connections_total": self.stats.connections_opened,
            "schemas": len(self._schemas),
            "cache": cache_stats,
            "resilience": {
                "decisions": self.engine.stats.decisions,
                "retries": self.engine.stats.retries,
                "degraded_sequential": self.engine.stats.degraded_sequential,
                "unknown_verdicts": self.engine.stats.unknown_verdicts,
            },
        }
