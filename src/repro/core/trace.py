"""Decision tracing: structured spans and events, zero overhead when off.

The ROADMAP's production target needs the reasoning core to be
*observable*: a slow DIMSAT call should be attributable to its CHECK
branches, a navigator query to the summarizability decisions it ran,
a parallel batch to its queue waits and cancellations.  This module
provides the substrate every reasoning layer instruments itself with:

* :class:`Tracer` - a process-wide recorder of **spans** (named,
  attributed, monotonic-clock-timed regions entered as context
  managers) and **events** (point-in-time structured records, attached
  to the innermost open span of the calling thread).
* A **bounded ring buffer**: finished spans and events land in
  ``collections.deque(maxlen=...)`` stores, so a long-lived service
  traces at a fixed memory ceiling and always keeps the most recent
  activity.
* A **zero-overhead-when-off** guarantee: the tracer starts disabled,
  and a disabled tracer's :meth:`Tracer.span` returns a shared no-op
  singleton while :meth:`Tracer.event` returns immediately - call sites
  pay one attribute check and nothing else.  The differential tests
  assert that enabling tracing never changes a verdict.

Span names are dotted and stable (``dimsat.decide``, ``dimsat.check``,
``implication.decide``, ``summarizability.bottom``,
``navigator.answer``, ``viewselect.evaluate``, ``resilience.decide``
...), as are event names (``engine.dispatch``, ``decision_cache.lookup``
/ ``decision_cache.store_failed``, ``resilience.retry`` /
``resilience.degrade`` / ``resilience.unknown`` ...); the event schema is
documented in ``docs/TUTORIAL.md`` (Observability) and the span-to-paper
mapping in ``docs/PAPER_MAP.md``.  The CLI surfaces traces through
``repro-olap trace`` and the metrics sibling through
``--emit-metrics`` (see :mod:`repro.core.metrics`).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Protocol


class SpanSink(Protocol):
    """Where a tracer streams finished spans and events (in addition to
    its ring buffers).

    The telemetry pipeline (:mod:`repro.core.telemetry`) implements this
    protocol with a bounded background writer, so a long-lived service
    can ship every span to disk without unbounded memory and without
    blocking the decision path.  Sink calls happen on the instrumented
    thread and therefore must never block; the pipeline's implementation
    drops (and counts) instead of waiting.

    ``export_span`` receives the finished :class:`TraceSpan` itself (not
    a dict): a finished span is immutable, and deferring
    :meth:`TraceSpan.as_dict` to the sink's writer thread keeps the
    decision path from paying for its own observability.
    ``export_event`` receives the JSON-ready event record (the tracer
    builds that dict for its ring buffer anyway).
    """

    def export_span(self, span: "TraceSpan") -> None: ...

    def export_event(self, event: Dict[str, Any]) -> None: ...


class _NullSpan:
    """The shared no-op span a disabled tracer hands out.

    Supports the full active-span surface (context manager, ``event``,
    ``set``) so call sites never branch on whether tracing is on.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass

    @property
    def span_id(self) -> Optional[int]:
        return None


NULL_SPAN = _NullSpan()


class TraceSpan:
    """An open (then finished) span: a named, timed, attributed region.

    Spans nest per thread: entering a span pushes it on the calling
    thread's stack, so a span opened inside another records that parent's
    id.  Timing uses the monotonic :func:`time.perf_counter` clock;
    ``start_ms`` is the offset from the tracer's epoch, ``duration_ms``
    is filled in at exit.
    """

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "tid",
        "attrs",
        "start_ms",
        "duration_ms",
        "error",
        "_start",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = next(tracer._ids)
        self.parent_id: Optional[int] = None
        self.tid = 0
        self.attrs = attrs
        self.start_ms = 0.0
        self.duration_ms: Optional[float] = None
        self.error: Optional[str] = None
        self._start = 0.0

    def __enter__(self) -> "TraceSpan":
        stack = self.tracer._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.tid = threading.get_ident()
        self._start = time.perf_counter()
        self.start_ms = (self._start - self.tracer._epoch) * 1000.0
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.duration_ms = (time.perf_counter() - self._start) * 1000.0
        if exc_type is not None:
            self.error = getattr(exc_type, "__name__", str(exc_type))
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self.tracer._finish(self)
        return False

    def event(self, name: str, **attrs: Any) -> None:
        """Record an event attached to this span."""
        self.tracer._record_event(name, self.span_id, attrs)

    def set(self, **attrs: Any) -> None:
        """Attach or overwrite span attributes (e.g. the verdict)."""
        self.attrs.update(attrs)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "tid": self.tid,
            "name": self.name,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
            "error": self.error,
            "attrs": _jsonable(self.attrs),
        }


class Tracer:
    """A process-wide recorder of spans and events.

    Disabled by default; every entry point checks :attr:`enabled` first,
    so instrumented code paths cost one attribute read when tracing is
    off.  Finished spans and events are kept in bounded ring buffers
    (``max_entries`` each, oldest dropped first).
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.enabled = False
        self.max_entries = max_entries
        #: Optional :class:`SpanSink` streaming finished spans/events out
        #: of the process (the telemetry pipeline); ``None`` costs one
        #: attribute read per finished span.
        self.sink: Optional[SpanSink] = None
        #: Ring-buffer overflow counts: entries the bounded deques pushed
        #: out, so a truncated trace is detectable from its snapshot.
        self.dropped_spans = 0
        self.dropped_events = 0
        self._epoch = time.perf_counter()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._spans: Deque[TraceSpan] = deque(maxlen=max_entries)
        self._events: Deque[Dict[str, Any]] = deque(maxlen=max_entries)
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Any:
        """Open a span (use as a context manager).

        Returns the shared :data:`NULL_SPAN` when tracing is off, so the
        call site needs no branch of its own.
        """
        if not self.enabled:
            return NULL_SPAN
        return TraceSpan(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event.

        The event is attached to the calling thread's innermost open
        span, or to no span when recorded at top level.
        """
        if not self.enabled:
            return
        stack = self._stack()
        span_id = stack[-1].span_id if stack else None
        self._record_event(name, span_id, attrs)

    def _record_event(
        self, name: str, span_id: Optional[int], attrs: Dict[str, Any]
    ) -> None:
        if not self.enabled:
            return
        record = {
            "name": name,
            "time_ms": (time.perf_counter() - self._epoch) * 1000.0,
            "span_id": span_id,
            "attrs": _jsonable(attrs),
        }
        with self._lock:
            if len(self._events) == self._events.maxlen:
                self.dropped_events += 1
            self._events.append(record)
        if self.sink is not None:
            self.sink.export_event(record)

    def _finish(self, span: TraceSpan) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped_spans += 1
            self._spans.append(span)
        if self.sink is not None:
            self.sink.export_span(span)

    def _stack(self) -> List[TraceSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop every recorded span and event and restart the clock."""
        with self._lock:
            self._spans.clear()
            self._events.clear()
            self.dropped_spans = 0
            self.dropped_events = 0
            self._epoch = time.perf_counter()
            self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def spans(self) -> List[Dict[str, Any]]:
        """Finished spans, oldest first, as JSON-ready dicts."""
        with self._lock:
            return [span.as_dict() for span in self._spans]

    def events(self) -> List[Dict[str, Any]]:
        """Recorded events, oldest first, as JSON-ready dicts."""
        with self._lock:
            return list(self._events)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregates: count, total/max duration in ms."""
        out: Dict[str, Dict[str, float]] = {}
        for span in self.spans():
            duration = span["duration_ms"] or 0.0
            row = out.setdefault(
                span["name"], {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
            )
            row["count"] += 1
            row["total_ms"] += duration
            row["max_ms"] = max(row["max_ms"], duration)
        return out

    def snapshot(self) -> Dict[str, Any]:
        """The whole trace as one JSON-serializable document."""
        return {
            "enabled": self.enabled,
            "max_entries": self.max_entries,
            "dropped_spans": self.dropped_spans,
            "dropped_events": self.dropped_events,
            "spans": self.spans(),
            "events": self.events(),
            "summary": self.summary(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def _jsonable(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Attribute values coerced to JSON-safe primitives."""
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple, set, frozenset)):
            out[key] = sorted(str(v) for v in value)
        else:
            out[key] = str(value)
    return out


#: The process-wide tracer every reasoning layer records into.
TRACER = Tracer()


def tracer() -> Tracer:
    """The process-wide :class:`Tracer`."""
    return TRACER


class tracing:
    """Context manager enabling the process-wide tracer for a region.

    >>> from repro.core.trace import tracer, tracing
    >>> with tracing():
    ...     pass
    >>> tracer().enabled
    False
    """

    def __init__(self, clear: bool = True) -> None:
        self._clear = clear
        self._was_enabled = False

    def __enter__(self) -> Tracer:
        self._was_enabled = TRACER.enabled
        if self._clear:
            TRACER.clear()
        TRACER.enable()
        return TRACER

    def __exit__(self, *exc_info: object) -> None:
        if not self._was_enabled:
            TRACER.disable()
