"""One registry for every store that caches by schema fingerprint.

The maintenance layer used to invalidate the decision cache and the
compiled-artifact store with two separate calls - a hazard, because a
future fingerprint-keyed store (a remote cache, a materialized report)
would silently be forgotten and keep serving entries for a replaced
schema version.  Every such store registers here, and
:func:`invalidate_everywhere` sweeps them all in one call.

A store must expose ``invalidate(fingerprint) -> int`` and
``holds(fingerprint) -> bool`` (the test suite uses ``holds`` to assert
that *no* registered store retains a replaced fingerprint after an
edit).
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Tuple

__all__ = [
    "invalidate_everywhere",
    "register_store",
    "registered_stores",
]

_LOCK = threading.Lock()
_STORES: List[object] = []
_DEFAULTS_REGISTERED = False


def register_store(store: object) -> None:
    """Add a fingerprint-keyed store to the invalidation sweep (idempotent
    by identity)."""
    with _LOCK:
        if not any(existing is store for existing in _STORES):
            _STORES.append(store)


def _ensure_defaults() -> None:
    # Imported lazily: decisioncache and compile both sit below the OLAP
    # layers that import this module, and registering at import time of
    # *this* module keeps them cycle-free.
    global _DEFAULTS_REGISTERED
    with _LOCK:
        if _DEFAULTS_REGISTERED:
            return
        _DEFAULTS_REGISTERED = True
    from repro.core.compile import compiled_artifact_store
    from repro.core.decisioncache import default_decision_cache

    register_store(default_decision_cache())
    register_store(compiled_artifact_store())


def registered_stores() -> Tuple[object, ...]:
    """Every registered store (the process-wide decision cache and
    compiled-artifact store are always included)."""
    _ensure_defaults()
    with _LOCK:
        return tuple(_STORES)


def invalidate_everywhere(
    fingerprint: str, exclude: Iterable[object] = ()
) -> int:
    """Drop every entry cached under ``fingerprint`` from every
    registered store; returns the total number of entries removed.

    ``exclude`` (identity-compared) skips stores already handled by a
    finer-grained mechanism - ``SchemaEditor`` passes its own cache,
    which :meth:`~repro.core.decisioncache.DecisionCache.rekey` has
    already swept.
    """
    excluded = tuple(exclude)
    total = 0
    for store in registered_stores():
        if any(store is skipped for skipped in excluded):
            continue
        total += int(store.invalidate(fingerprint) or 0)  # type: ignore[attr-defined]
    return total
