"""Summarizability (Section 3.3, Theorem 1).

A category ``c`` is *summarizable* from a set ``S`` of categories in a
dimension ``d`` when, for every fact table and every distributive aggregate
function, the cube view at ``c`` can be recomputed from the cube views at
the categories of ``S`` (Definition 6).  Theorem 1 characterizes this with
a dimension constraint per bottom category::

    c_b.c  IMPLIES  one( c_b.ci.c  for ci in S )

that is, every base member reaching ``c`` must reach it through exactly
one of the categories in ``S``.  This module builds that constraint and
tests it at two levels:

* **instance level** - evaluate the constraint over a concrete
  :class:`~repro.core.instance.DimensionInstance` (Definition 4);
* **schema level** - decide whether every instance of a
  :class:`~repro.core.schema.DimensionSchema` satisfies it, via the
  implication test of :mod:`repro.core.implication`.

The OLAP navigator (:mod:`repro.olap.navigator`) consumes the instance
level test; the cross-validation experiment (E12) verifies the
characterization against Definition 6 executed on real fact tables.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.constraints.ast import FALSE, ExactlyOne, Implies, Node, RollsUpAtom, ThroughAtom
from repro.constraints.semantics import satisfies
from repro.core.budget import DecisionBudget
from repro.core.decisioncache import USE_DEFAULT_CACHE, resolve_cache
from repro.core.dimsat import DimsatOptions
from repro.core.hierarchy import ALL, Category, HierarchySchema
from repro.core.implication import is_implied
from repro.core.instance import DimensionInstance
from repro.core.metrics import METRICS
from repro.core.schema import DimensionSchema
from repro.core.trace import TRACER
from repro.errors import SchemaError

_M_DECISIONS = METRICS.counter("summarizability.decisions")


def summarizability_constraint(
    bottom: Category, target: Category, sources: Iterable[Category]
) -> Node:
    """The Theorem 1 constraint for one bottom category.

    ``c_b.c IMPLIES one(c_b.ci.c, ...)``; with an empty source set the
    consequent is ``FALSE`` (no base member may reach the target at all).
    """
    source_list = sorted(set(sources))
    antecedent = RollsUpAtom(bottom, target)
    if not source_list:
        consequent: Node = FALSE
    else:
        consequent = ExactlyOne(
            tuple(ThroughAtom(bottom, ci, target) for ci in source_list)
        )
    return Implies(antecedent, consequent)


def summarizability_constraints(
    hierarchy: HierarchySchema, target: Category, sources: Iterable[Category]
) -> List[Tuple[Category, Node]]:
    """The Theorem 1 constraint for every bottom category, as
    ``(bottom, constraint)`` pairs."""
    sources = list(sources)
    return [
        (bottom, summarizability_constraint(bottom, target, sources))
        for bottom in sorted(hierarchy.bottom_categories())
    ]


def is_summarizable_in_instance(
    instance: DimensionInstance,
    target: Category,
    sources: Iterable[Category],
) -> bool:
    """Theorem 1 at the instance level.

    >>> from repro.generators.location import location_instance
    >>> d = location_instance()
    >>> is_summarizable_in_instance(d, "Country", ["City"])
    True
    >>> is_summarizable_in_instance(d, "Country", ["State", "Province"])
    False
    """
    _check_categories(instance.hierarchy, target, sources)
    for bottom, node in summarizability_constraints(
        instance.hierarchy, target, sources
    ):
        if not satisfies(instance, node, root=bottom):
            return False
    return True


def is_summarizable_in_schema(
    schema: DimensionSchema,
    target: Category,
    sources: Iterable[Category],
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
    budget: Optional[DecisionBudget] = None,
) -> bool:
    """Theorem 1 at the schema level: the constraint must be *implied*.

    True exactly when ``target`` is summarizable from ``sources`` in every
    instance of the schema, which is the test an aggregate navigator needs
    before trusting a rewriting for all future data.

    The verdict is memoized in ``cache`` (a
    :class:`~repro.core.decisioncache.DecisionCache`; default the
    process-wide one) keyed by schema fingerprint, target, and source set;
    pass ``cache=None`` for the uncached path.
    """
    sources = tuple(sources)
    _check_categories(schema.hierarchy, target, sources)
    resolved = resolve_cache(cache)
    if resolved is not None:
        return resolved.is_summarizable(schema, target, sources, options, budget)
    return _is_summarizable_uncached(schema, target, sources, options, None, budget)


def _is_summarizable_uncached(
    schema: DimensionSchema,
    target: Category,
    sources: Iterable[Category],
    options: Optional[DimsatOptions],
    implication_cache: object,
    budget: Optional[DecisionBudget] = None,
) -> bool:
    """The Theorem 1 loop itself; per-bottom implication tests go through
    ``implication_cache`` so overlapping source sets share work."""
    _M_DECISIONS.inc()
    with TRACER.span(
        "summarizability.decide", target=target, sources=sorted(sources)
    ) as outer:
        for bottom, node in summarizability_constraints(
            schema.hierarchy, target, sources
        ):
            if bottom == ALL:
                continue
            # One span per bottom category: Theorem 1 is one implication
            # test per bottom, and this is where a slow verdict's time goes.
            with TRACER.span(
                "summarizability.bottom", bottom=bottom, target=target
            ) as span:
                implied = is_implied(
                    schema, node, options, cache=implication_cache, budget=budget
                )
                span.set(implied=implied)
            if not implied:
                outer.set(summarizable=False)
                return False
        outer.set(summarizable=True)
    return True


def summarizability_provenance(
    schema: DimensionSchema, target: Category, sources: Iterable[Category]
):
    """The dependency set of a schema-level summarizability verdict.

    Theorem 1 runs one implication test per bottom category, so the
    dependency cone is the union of every bottom's upward closure
    (usually the whole hierarchy) *and* the bottom set itself: an edit
    that changes which categories are bottoms changes the quantifier,
    so such verdicts never survive it.
    """
    from repro.core.provenance import cone_provenance

    bottoms = schema.hierarchy.bottom_categories()
    roots = set(bottoms) | {target} | set(sources)
    return cone_provenance(schema, "summarizable", roots, bottoms=bottoms)


def _check_categories(
    hierarchy: HierarchySchema, target: Category, sources: Iterable[Category]
) -> None:
    for category in [target, *sources]:
        if not hierarchy.has_category(category):
            raise SchemaError(f"unknown category {category!r}")


def summarizable_sets(
    schema: DimensionSchema,
    target: Category,
    candidates: Optional[Iterable[Category]] = None,
    max_size: int = 3,
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
) -> List[FrozenSet[Category]]:
    """Minimal source sets from which ``target`` is schema-summarizable.

    Searches subsets of ``candidates`` (default: every category strictly
    between some bottom category and ``target``) by increasing size and
    keeps only minimal sets; supersets of a found set are skipped.  This
    is the search an OLAP system runs when choosing which aggregate views
    suffice to answer a query level (Section 6's view-selection use case).
    """
    hierarchy = schema.hierarchy
    if candidates is None:
        pool: Set[Category] = set()
        for category in hierarchy.categories:
            if category in (ALL, target):
                continue
            if hierarchy.reaches(category, target):
                pool.add(category)
        candidates = pool
    candidate_list = sorted(set(candidates))

    found: List[FrozenSet[Category]] = []
    for size in range(1, max_size + 1):
        for combo in combinations(candidate_list, size):
            combo_set = frozenset(combo)
            if any(known <= combo_set for known in found):
                continue
            if is_summarizable_in_schema(schema, target, combo_set, options, cache):
                found.append(combo_set)
    return found


def summarizability_matrix(
    instance: DimensionInstance,
    targets: Optional[Sequence[Category]] = None,
    singletons: Optional[Sequence[Category]] = None,
) -> List[Tuple[Category, Category, bool]]:
    """Instance-level summarizability for all (target, {source}) pairs.

    A compact overview used by the heterogeneity-audit example and the
    DNF-loss benchmark (E14): each row says whether the cube view at
    ``target`` can be derived from the one at ``source`` alone.
    """
    hierarchy = instance.hierarchy
    all_categories = sorted(hierarchy.categories - {ALL})
    targets = list(targets) if targets is not None else all_categories
    singletons = list(singletons) if singletons is not None else all_categories
    rows: List[Tuple[Category, Category, bool]] = []
    for target in targets:
        for source in singletons:
            if source == target:
                continue
            if not hierarchy.reaches(source, target):
                continue
            verdict = is_summarizable_in_instance(instance, target, [source])
            rows.append((source, target, verdict))
    return rows
