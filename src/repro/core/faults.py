"""Deterministic, seedable fault injection for the decision stack.

A production decision service fails in ways the paper's offline setting
never exercises: a pool worker dies mid-decision, a worker hangs long
enough to blow a deadline, the cache store hiccups, the OS refuses to
hand out another thread.  This module simulates exactly those failures
*on demand*, so the resilience layer (:mod:`repro.core.resilience`) can
be tested against them and latent bugs in the fault-free paths get
flushed out.

Fault kinds
-----------

``worker-crash``
    A decision task dies with :class:`InjectedFault` (an ``OSError``)
    at the worker checkpoint - the moral equivalent of a killed worker.
``slow-worker``
    The worker checkpoint sleeps ``delay_ms`` before proceeding; combined
    with a :class:`~repro.core.budget.DecisionBudget` deadline this
    manufactures timeouts.
``oserror``
    A transient :class:`InjectedFault` (``OSError``) - the flaky-I/O
    failure a retry is expected to absorb.
``cache-store``
    :class:`CacheStoreFault` at the decision cache's store step.  The
    cache treats a failed store as pure degradation: the computed verdict
    is still returned, nothing (and in particular nothing *wrong*) is
    stored.
``pool-exhaustion``
    :class:`PoolExhaustedFault` when an executor is created - the engine
    degrades to its sequential fallback, exactly as it would when the OS
    is out of threads or processes.

Spec grammar (the CLI's ``--inject-faults``)
--------------------------------------------

Clauses separated by ``;``; each clause is a fault kind optionally
followed by ``:field=value`` pairs separated by ``,``::

    worker-crash:p=0.3;cache-store:p=0.5;seed=42
    slow-worker:delay_ms=50,p=1.0
    oserror:p=1.0,after=10,times=3

Fields: ``p`` (fire probability per opportunity, default 1.0), ``after``
(skip the first N opportunities), ``times`` (max fires), ``delay_ms``
(slow-worker sleep), and a standalone ``seed=N`` clause (or a ``seed``
field on any clause) fixing the injector seed.

Determinism
-----------

Whether opportunity *n* of a fault kind fires is a pure function of
``(seed, kind, n)`` - a CRC32 draw, no process-randomized hashing, no
shared RNG state - so a fault schedule replays identically for a given
seed regardless of thread interleaving (threads may race for opportunity
*indexes*, but the set of firing indexes is fixed).

Injection points check the process-wide :data:`FAULTS` gate, which costs
one attribute read and a ``None`` check when no injector is active
(the same always-cheap pattern as :data:`repro.core.trace.TRACER`).
Activate an injector for a region with :func:`inject_faults`::

    with inject_faults("worker-crash:p=0.5;seed=7"):
        engine.decide_many(batch)   # some workers now crash

Note: process-pool workers run in separate interpreters and do not see
an injector activated in the parent after the pool forked; use thread
mode (the default) for fault-injection testing.
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

from repro.core.metrics import METRICS
from repro.errors import ReproError


class FaultSpecError(ReproError):
    """A ``--inject-faults`` spec string could not be parsed."""


class InjectedFault(OSError):
    """A fault fired by the injection harness.

    Subclasses :class:`OSError` so the retry ladder's transient-error
    classification treats injected faults exactly like the real failures
    they stand in for.
    """

    def __init__(self, kind: str, site: str) -> None:
        super().__init__(f"injected fault {kind!r} at site {site!r}")
        self.kind = kind
        self.site = site


class CacheStoreFault(InjectedFault):
    """The decision cache's store step failed (injected)."""


class PoolExhaustedFault(InjectedFault):
    """Executor creation failed (injected): no workers available."""


#: Recognized fault kinds and the site each one fires at.
FAULT_KINDS: Dict[str, str] = {
    "worker-crash": "worker",
    "slow-worker": "worker",
    "oserror": "worker",
    "cache-store": "cache_store",
    "pool-exhaustion": "pool_create",
}


@dataclass(frozen=True)
class FaultRule:
    """One clause of a fault spec.

    ``probability`` is the chance each opportunity fires, ``after`` skips
    the first N opportunities (letting a batch start healthy and fail
    mid-flight), ``max_fires`` caps total fires, and ``delay_ms`` is the
    slow-worker sleep.
    """

    kind: str
    probability: float = 1.0
    after: int = 0
    max_fires: Optional[int] = None
    delay_ms: float = 25.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.after < 0:
            raise FaultSpecError("'after' must be non-negative")
        if self.max_fires is not None and self.max_fires < 0:
            raise FaultSpecError("'times' must be non-negative")
        if self.delay_ms < 0:
            raise FaultSpecError("'delay_ms' must be non-negative")


def _draw(seed: int, kind: str, opportunity: int) -> float:
    """The deterministic uniform draw for one fault opportunity."""
    digest = zlib.crc32(f"{seed}:{kind}:{opportunity}".encode("utf-8"))
    return (digest % 1_000_000) / 1_000_000.0


class FaultInjector:
    """A seeded set of fault rules with per-kind opportunity counters.

    Thread-safe; one injector may serve a whole concurrent batch.  The
    per-kind counters give every opportunity a stable index, and
    :func:`_draw` decides firing from ``(seed, kind, index)`` alone.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        if not rules:
            raise FaultSpecError("a fault injector needs at least one rule")
        kinds = [rule.kind for rule in rules]
        if len(set(kinds)) != len(kinds):
            raise FaultSpecError("duplicate fault kinds in one spec")
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self._lock = threading.Lock()
        self._opportunities: Dict[str, int] = {rule.kind: 0 for rule in rules}
        self._fires: Dict[str, int] = {rule.kind: 0 for rule in rules}
        self._worker_rules = tuple(
            rule for rule in self.rules if FAULT_KINDS[rule.kind] == "worker"
        )
        self._cache_rules = tuple(
            rule for rule in self.rules if FAULT_KINDS[rule.kind] == "cache_store"
        )
        self._pool_rules = tuple(
            rule for rule in self.rules if FAULT_KINDS[rule.kind] == "pool_create"
        )

    def _should_fire(self, rule: FaultRule) -> bool:
        with self._lock:
            index = self._opportunities[rule.kind]
            self._opportunities[rule.kind] = index + 1
            if index < rule.after:
                return False
            if rule.max_fires is not None and self._fires[rule.kind] >= rule.max_fires:
                return False
            if _draw(self.seed, rule.kind, index) >= rule.probability:
                return False
            self._fires[rule.kind] += 1
        METRICS.counter(f"faults.{rule.kind}").inc()
        return True

    # ------------------------------------------------------------------
    # Sites (called through the FAULTS gate)
    # ------------------------------------------------------------------

    def worker(self) -> None:
        """The per-decision worker checkpoint: may sleep or raise."""
        for rule in self._worker_rules:
            if not self._should_fire(rule):
                continue
            if rule.kind == "slow-worker":
                time.sleep(rule.delay_ms / 1000.0)
            else:
                raise InjectedFault(rule.kind, "worker")

    def cache_store(self) -> None:
        """The decision cache's store step: may raise."""
        for rule in self._cache_rules:
            if self._should_fire(rule):
                raise CacheStoreFault(rule.kind, "cache_store")

    def pool_create(self) -> None:
        """Executor creation: may raise."""
        for rule in self._pool_rules:
            if self._should_fire(rule):
                raise PoolExhaustedFault(rule.kind, "pool_create")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def fired(self) -> Dict[str, int]:
        """Fires per fault kind so far."""
        with self._lock:
            return dict(self._fires)

    def opportunities(self) -> Dict[str, int]:
        """Opportunities seen per fault kind so far."""
        with self._lock:
            return dict(self._opportunities)

    def __repr__(self) -> str:
        clauses = ", ".join(rule.kind for rule in self.rules)
        return f"FaultInjector(seed={self.seed}, rules=[{clauses}])"


def parse_fault_spec(spec: str) -> FaultInjector:
    """Parse the ``--inject-faults`` grammar into a :class:`FaultInjector`.

    >>> injector = parse_fault_spec("worker-crash:p=0.5;seed=7")
    >>> injector.seed
    7
    >>> [rule.kind for rule in injector.rules]
    ['worker-crash']
    """
    seed = 0
    rules = []
    for raw in spec.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            seed = _int_field("seed", clause[len("seed="):])
            continue
        head, _, rest = clause.partition(":")
        kind = head.strip()
        fields: Dict[str, str] = {}
        if rest.strip():
            for pair in rest.split(","):
                name, sep, value = pair.partition("=")
                if not sep:
                    raise FaultSpecError(
                        f"bad fault field {pair!r} in clause {clause!r}; "
                        "expected name=value"
                    )
                fields[name.strip()] = value.strip()
        if "seed" in fields:
            seed = _int_field("seed", fields.pop("seed"))
        kwargs: Dict[str, object] = {}
        if "p" in fields:
            kwargs["probability"] = _float_field("p", fields.pop("p"))
        if "after" in fields:
            kwargs["after"] = _int_field("after", fields.pop("after"))
        if "times" in fields:
            kwargs["max_fires"] = _int_field("times", fields.pop("times"))
        if "delay_ms" in fields:
            kwargs["delay_ms"] = _float_field("delay_ms", fields.pop("delay_ms"))
        if fields:
            raise FaultSpecError(
                f"unknown fault fields {sorted(fields)} in clause {clause!r}; "
                "expected p, after, times, delay_ms, seed"
            )
        rules.append(FaultRule(kind, **kwargs))  # type: ignore[arg-type]
    if not rules:
        raise FaultSpecError(f"fault spec {spec!r} declares no faults")
    return FaultInjector(rules, seed=seed)


def _float_field(name: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise FaultSpecError(f"fault field {name}={value!r} is not a number") from None


def _int_field(name: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise FaultSpecError(f"fault field {name}={value!r} is not an integer") from None


class _FaultGate:
    """The process-wide injection gate every fault site checks.

    ``injector`` is ``None`` almost always; the site methods then return
    after one attribute read, so production paths pay nothing measurable.
    """

    __slots__ = ("injector",)

    def __init__(self) -> None:
        self.injector: Optional[FaultInjector] = None

    @property
    def active(self) -> bool:
        return self.injector is not None

    def worker(self) -> None:
        injector = self.injector
        if injector is not None:
            injector.worker()

    def cache_store(self) -> None:
        injector = self.injector
        if injector is not None:
            injector.cache_store()

    def pool_create(self) -> None:
        injector = self.injector
        if injector is not None:
            injector.pool_create()


#: The process-wide fault gate (inactive unless :func:`inject_faults` or
#: the CLI's ``--inject-faults`` arms it).
FAULTS = _FaultGate()


@contextmanager
def inject_faults(
    spec: Union[str, FaultInjector],
) -> Iterator[FaultInjector]:
    """Arm the process-wide fault gate for a region.

    Accepts a spec string (parsed with :func:`parse_fault_spec`) or a
    prebuilt :class:`FaultInjector`.  Restores the previous injector on
    exit, so fault regions nest.
    """
    injector = parse_fault_spec(spec) if isinstance(spec, str) else spec
    previous = FAULTS.injector
    FAULTS.injector = injector
    try:
        yield injector
    finally:
        FAULTS.injector = previous
