"""Hierarchy schemas (Definition 1 of the paper).

A hierarchy schema is a directed graph ``G = (C, NEAREST)`` over a finite set
of categories containing the distinguished category ``All``.  Unlike most
earlier dimension models, the paper allows the graph to contain *cycles*
(Example 4) and *shortcuts* (Example 3), and to have several *bottom*
categories.  The only structural requirements are:

(a) every category reaches ``All`` through the edge relation, and
(b) there are no self-loop edges.

The schema is the skeleton for dimension instances
(:mod:`repro.core.instance`), for dimension constraints
(:mod:`repro.constraints`), and for the subhierarchies explored by DIMSAT
(:mod:`repro.core.dimsat`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro._types import ALL, Category, Edge
from repro.errors import SchemaError


class HierarchySchema:
    """An immutable hierarchy schema ``G = (C, NEAREST)``.

    Parameters
    ----------
    categories:
        The categories of the schema.  ``All`` is added automatically if
        missing.
    edges:
        The child/parent edges between categories; ``(c, c')`` means members
        of ``c`` may have parents in ``c'`` (written ``c NEAREST c'`` in the
        paper).

    Raises
    ------
    SchemaError
        If an edge mentions an unknown category, an edge is a self loop, or
        some category cannot reach ``All``.

    Examples
    --------
    >>> g = HierarchySchema(["Store", "City"], [("Store", "City"), ("City", "All")])
    >>> g.bottom_categories()
    frozenset({'Store'})
    >>> g.reaches("Store", "All")
    True
    """

    __slots__ = (
        "_categories",
        "_edges",
        "_children",
        "_parents",
        "_reach",
        "__weakref__",
    )

    def __init__(self, categories: Iterable[Category], edges: Iterable[Edge]) -> None:
        cats = set(categories)
        cats.add(ALL)
        edge_set = set()
        for edge in edges:
            child, parent = edge
            if child not in cats:
                raise SchemaError(f"edge {edge!r} mentions unknown category {child!r}")
            if parent not in cats:
                raise SchemaError(f"edge {edge!r} mentions unknown category {parent!r}")
            if child == parent:
                raise SchemaError(f"self-loop edge {edge!r} is not allowed (Definition 1b)")
            edge_set.add((child, parent))

        parents: Dict[Category, Set[Category]] = {c: set() for c in cats}
        children: Dict[Category, Set[Category]] = {c: set() for c in cats}
        for child, parent in edge_set:
            parents[child].add(parent)
            children[parent].add(child)

        self._categories: FrozenSet[Category] = frozenset(cats)
        self._edges: FrozenSet[Edge] = frozenset(edge_set)
        self._parents = {c: frozenset(ps) for c, ps in parents.items()}
        self._children = {c: frozenset(cs) for c, cs in children.items()}
        self._reach = self._compute_reachability()

        for category in self._categories:
            if category != ALL and ALL not in self._reach[category]:
                raise SchemaError(
                    f"category {category!r} does not reach {ALL!r} (Definition 1a)"
                )

    def _compute_reachability(self) -> Dict[Category, FrozenSet[Category]]:
        """Transitive (not reflexive) closure of the edge relation."""
        reach: Dict[Category, Set[Category]] = {}
        for start in self._categories:
            seen: Set[Category] = set()
            stack = list(self._parents[start])
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(self._parents[node])
            reach[start] = seen
        return {c: frozenset(s) for c, s in reach.items()}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def categories(self) -> FrozenSet[Category]:
        """All categories, including ``All``."""
        return self._categories

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The child/parent edges as ``(child, parent)`` pairs."""
        return self._edges

    def parents(self, category: Category) -> FrozenSet[Category]:
        """Categories directly above ``category`` (``G.Out`` in Figure 6)."""
        self._require(category)
        return self._parents[category]

    def children(self, category: Category) -> FrozenSet[Category]:
        """Categories directly below ``category``."""
        self._require(category)
        return self._children[category]

    def has_edge(self, child: Category, parent: Category) -> bool:
        """Whether the edge ``child NEAREST parent`` is in the schema."""
        return (child, parent) in self._edges

    def has_category(self, category: Category) -> bool:
        """Whether ``category`` belongs to the schema."""
        return category in self._categories

    def _require(self, category: Category) -> None:
        if category not in self._categories:
            raise SchemaError(f"unknown category {category!r}")

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    def reaches(self, lower: Category, upper: Category) -> bool:
        """Whether ``lower NEAREST* upper`` (reflexive-transitive closure)."""
        self._require(lower)
        self._require(upper)
        return lower == upper or upper in self._reach[lower]

    def ancestors(self, category: Category) -> FrozenSet[Category]:
        """Categories strictly above ``category`` (transitive, irreflexive
        unless the category lies on a cycle)."""
        self._require(category)
        return self._reach[category]

    def descendants(self, category: Category) -> FrozenSet[Category]:
        """Categories strictly below ``category``."""
        self._require(category)
        return frozenset(
            c for c in self._categories if c != category and category in self._reach[c]
        )

    def bottom_categories(self) -> FrozenSet[Category]:
        """Categories with no incoming edges (Definition 1 prose)."""
        return frozenset(
            c for c in self._categories if not self._children[c] and c != ALL
        ) or frozenset(
            # Degenerate schema with only All: treat All as its own bottom.
            c for c in self._categories if not self._children[c]
        )

    def is_cyclic(self) -> bool:
        """Whether the edge relation contains a directed cycle."""
        return any(c in self._reach[c] for c in self._categories)

    def shortcuts(self) -> FrozenSet[Edge]:
        """The shortcut edges of the schema.

        A shortcut (Definition 1 prose, Example 3) is an edge ``(c, c')``
        such that there is also a path from ``c`` to ``c'`` passing through a
        third category.
        """
        found: Set[Edge] = set()
        for child, parent in self._edges:
            for mid in self._parents[child]:
                if mid != parent and self.reaches(mid, parent):
                    found.add((child, parent))
                    break
        return frozenset(found)

    # ------------------------------------------------------------------
    # Path enumeration (used for composed path atoms and DIMSAT)
    # ------------------------------------------------------------------

    def simple_paths(self, start: Category, end: Category) -> Iterator[Tuple[Category, ...]]:
        """Yield every simple path (no repeated category) from ``start`` to
        ``end``, each as a tuple beginning with ``start`` and ending with
        ``end``.

        Simple paths are exactly the syntactic objects that path atoms may
        name (Definition 3), so this enumeration defines the expansion of
        composed path atoms ``c.ci`` and ``c.ci.cj``.
        """
        self._require(start)
        self._require(end)

        path: List[Category] = [start]
        on_path: Set[Category] = {start}

        def walk(node: Category) -> Iterator[Tuple[Category, ...]]:
            if node == end and len(path) > 1:
                yield tuple(path)
                return
            if node == end and start == end:
                # A path from a category to itself must leave and return,
                # which a simple path cannot do; only the trivial path
                # exists and path atoms require length >= 1.
                return
            for nxt in sorted(self._parents[node]):
                if nxt in on_path:
                    continue
                path.append(nxt)
                on_path.add(nxt)
                yield from walk(nxt)
                path.pop()
                on_path.remove(nxt)

        yield from walk(start)

    def is_simple_path(self, path: Sequence[Category]) -> bool:
        """Whether ``path`` is a simple path of the schema.

        A simple path has at least two categories, no repeats, and an edge
        between each consecutive pair.
        """
        if len(path) < 2 or len(set(path)) != len(path):
            return False
        return all(self.has_edge(a, b) for a, b in zip(path, path[1:]))

    # ------------------------------------------------------------------
    # Convenience constructors and dunder protocol
    # ------------------------------------------------------------------

    @classmethod
    def from_paths(cls, *paths: Sequence[Category]) -> "HierarchySchema":
        """Build a schema from category paths.

        Each path contributes its categories and consecutive edges; the last
        category of every path is additionally linked to ``All`` unless it is
        ``All``.

        >>> g = HierarchySchema.from_paths(["Day", "Month", "Year"])
        >>> sorted(g.parents("Month"))
        ['Year']
        """
        categories: Set[Category] = set()
        edges: Set[Edge] = set()
        for path in paths:
            if not path:
                continue
            categories.update(path)
            edges.update(zip(path, path[1:]))
            if path[-1] != ALL:
                edges.add((path[-1], ALL))
        return cls(categories, edges)

    def with_edges(self, extra: Iterable[Edge]) -> "HierarchySchema":
        """A new schema with additional edges."""
        return HierarchySchema(self._categories, self._edges | set(extra))

    def without_edge(self, child: Category, parent: Category) -> "HierarchySchema":
        """A new schema with the edge ``child -> parent`` removed.

        Raises :class:`SchemaError` when the edge does not exist or its
        removal strands a category from ``All`` (Definition 1a).
        """
        if (child, parent) not in self._edges:
            raise SchemaError(f"edge ({child!r}, {parent!r}) is not in the schema")
        return HierarchySchema(self._categories, self._edges - {(child, parent)})

    def with_category(
        self,
        category: Category,
        parents: Iterable[Category] = (),
        children: Iterable[Category] = (),
    ) -> "HierarchySchema":
        """A new schema with ``category`` added.

        ``parents``/``children`` name the incident edges; with no parents
        the category is linked directly to ``All`` so Definition 1a keeps
        holding.
        """
        if category in self._categories:
            raise SchemaError(f"category {category!r} is already in the schema")
        parent_list = list(parents) or [ALL]
        extra = {(category, p) for p in parent_list}
        extra |= {(c, category) for c in children}
        return HierarchySchema(
            self._categories | {category}, self._edges | extra
        )

    def without_category(self, category: Category) -> "HierarchySchema":
        """A new schema with ``category`` and its incident edges removed.

        Used by the schema audit to drop unsatisfiable categories
        (Section 4 of the paper).
        """
        if category == ALL:
            raise SchemaError("cannot remove the distinguished category All")
        self._require(category)
        cats = self._categories - {category}
        edges = {(a, b) for a, b in self._edges if category not in (a, b)}
        return HierarchySchema(cats, edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HierarchySchema):
            return NotImplemented
        return self._categories == other._categories and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._categories, self._edges))

    def __repr__(self) -> str:
        return (
            f"HierarchySchema({len(self._categories)} categories, "
            f"{len(self._edges)} edges)"
        )
