"""Frozen dimensions (Definition 5) and subhierarchies (Definition 7).

A *frozen dimension* of a schema ``ds`` with root ``c`` is a minimal
homogeneous instance: one member ``phi(c')`` per populated category, the
root member below every other member, and names drawn from
``Const_ds(c') | {nk}``.  Theorem 3 makes them the minimal models for
category satisfiability, which is what DIMSAT searches for.

A *subhierarchy* is the category-level skeleton of a frozen dimension: a
subgraph of ``G`` whose categories all lie between the root and ``All``.
A subhierarchy *induces* a frozen dimension when it is acyclic, shortcut
free, and admits a c-assignment satisfying the reduced constraint set
(Proposition 2); :mod:`repro.core.dimsat` performs that test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from repro.core.hierarchy import ALL, Category, Edge, HierarchySchema
from repro.core.instance import TOP_MEMBER, DimensionInstance
from repro.core.schema import NK, DimensionSchema
from repro.errors import SchemaError


def phi(category: Category) -> str:
    """The injective member-naming function ``phi`` of Definition 5.

    The top category maps to the distinguished member ``all`` (condition
    C4 admits no other member there)."""
    return TOP_MEMBER if category == ALL else f"phi({category})"


@dataclass(frozen=True)
class Subhierarchy:
    """A subhierarchy of a hierarchy schema with a distinguished root.

    Definition 7 requires ``root`` and ``All`` among the categories, every
    edge drawn from ``G``, and every category between the root and ``All``.
    Use :meth:`validate` to enforce this against a concrete ``G``;
    instances produced by DIMSAT are valid by construction.
    """

    root: Category
    categories: FrozenSet[Category]
    edges: FrozenSet[Edge]

    # -- structure -------------------------------------------------------

    def parents_in(self, category: Category) -> FrozenSet[Category]:
        """Categories directly above ``category`` within the subhierarchy."""
        return frozenset(parent for child, parent in self.edges if child == category)

    def children_in(self, category: Category) -> FrozenSet[Category]:
        """Categories directly below ``category`` within the subhierarchy."""
        return frozenset(child for child, parent in self.edges if parent == category)

    def reaches(self, lower: Category, upper: Category) -> bool:
        """Reflexive-transitive reachability inside the subhierarchy."""
        if lower == upper:
            return True
        seen: Set[Category] = set()
        stack = [lower]
        while stack:
            node = stack.pop()
            for child, parent in self.edges:
                if child == node and parent not in seen:
                    if parent == upper:
                        return True
                    seen.add(parent)
                    stack.append(parent)
        return False

    def has_edge_path(self, path: Tuple[Category, ...]) -> bool:
        """Whether consecutive categories of ``path`` are all edges here.

        This is the truth value Definition 8 assigns to a path atom.
        """
        return all((a, b) in self.edges for a, b in zip(path, path[1:]))

    def is_acyclic(self) -> bool:
        """No directed cycle among the subhierarchy's edges."""
        return not any(
            self.reaches(parent, child) for child, parent in self.edges
        )

    def shortcut_edges(self) -> FrozenSet[Edge]:
        """Edges paralleled by a longer path (must be empty to induce a
        frozen dimension)."""
        found: Set[Edge] = set()
        for child, parent in self.edges:
            for mid in self.parents_in(child):
                if mid != parent and self.reaches(mid, parent):
                    found.add((child, parent))
                    break
        return frozenset(found)

    def validate(self, hierarchy: HierarchySchema) -> None:
        """Raise :class:`SchemaError` unless Definition 7 holds."""
        if self.root not in self.categories or ALL not in self.categories:
            raise SchemaError("a subhierarchy must contain its root and All")
        for category in self.categories:
            if not hierarchy.has_category(category):
                raise SchemaError(f"unknown category {category!r} in subhierarchy")
        for edge in self.edges:
            if edge not in hierarchy.edges:
                raise SchemaError(f"edge {edge!r} is not in the hierarchy schema")
            for endpoint in edge:
                if endpoint not in self.categories:
                    raise SchemaError(
                        f"edge {edge!r} leaves the subhierarchy's categories"
                    )
        for category in self.categories:
            if not self.reaches(self.root, category):
                raise SchemaError(
                    f"category {category!r} is not reachable from the root"
                )
            if not self.reaches(category, ALL):
                raise SchemaError(f"category {category!r} does not reach All")

    def sorted_edges(self) -> Tuple[Edge, ...]:
        """Edges in a canonical order, for display and stable tests."""
        return tuple(sorted(self.edges))

    def __str__(self) -> str:
        rendered = ", ".join(f"{a}->{b}" for a, b in self.sorted_edges())
        return f"Subhierarchy[{self.root}: {rendered}]"


@dataclass(frozen=True)
class FrozenDimension:
    """A frozen dimension: a subhierarchy plus a name per category.

    ``names`` maps every category of the subhierarchy to either a constant
    from ``Const_ds`` or the pseudo-constant :data:`~repro.core.schema.NK`
    (standing for "any constant not mentioned in SIGMA").
    """

    subhierarchy: Subhierarchy
    names: Mapping[Category, str] = field(default_factory=dict)

    @property
    def root(self) -> Category:
        """The root category."""
        return self.subhierarchy.root

    @property
    def categories(self) -> FrozenSet[Category]:
        """The populated categories."""
        return self.subhierarchy.categories

    def name_of(self, category: Category) -> str:
        """The constant assigned to ``category`` (``NK`` by default)."""
        return self.names.get(category, NK)

    def to_instance(
        self, schema: DimensionSchema, fresh_constant: Optional[str] = None
    ) -> DimensionInstance:
        """Materialize the frozen dimension as a real dimension instance.

        The pseudo-constant ``nk`` is replaced by ``fresh_constant`` (one is
        synthesized if not given), chosen to differ from every constant
        SIGMA mentions, as Definition 5 requires.  The resulting instance
        has one member ``phi(c')`` per category and is validated against
        (C1)-(C7); tests additionally verify it satisfies SIGMA, which is
        Theorem 3's guarantee.
        """
        if fresh_constant is None:
            mentioned = set()
            for category in schema.hierarchy.categories:
                mentioned.update(schema.constants(category))
            fresh_constant = "nk"
            counter = 0
            while fresh_constant in mentioned:
                counter += 1
                fresh_constant = f"nk_{counter}"

        members = {phi(c): c for c in self.subhierarchy.categories}
        edges = [
            (phi(child), phi(parent)) for child, parent in self.subhierarchy.edges
        ]
        names: Dict[str, object] = {}
        for category in self.subhierarchy.categories:
            if category == ALL:
                names[TOP_MEMBER] = TOP_MEMBER
                continue
            value = self.name_of(category)
            names[phi(category)] = fresh_constant if value == NK else value
        return DimensionInstance(
            schema.hierarchy, members, edges, names=names, validate=True
        )

    def describe(self) -> str:
        """A compact, human-readable rendering used by examples and the
        Figure 4 regeneration test."""
        parts = []
        for category in sorted(self.subhierarchy.categories):
            value = self.name_of(category)
            if category != ALL and value != NK:
                parts.append(f"{category}={value}")
        names = ", ".join(parts) if parts else "(all names free)"
        return f"{self.subhierarchy} with {names}"


def subhierarchy_from_edges(
    root: Category, edges: Iterable[Edge]
) -> Subhierarchy:
    """Build a subhierarchy from its edge set; categories are inferred.

    ``All`` and the root are always included even if isolated, so the
    degenerate one-category subhierarchy can be written as
    ``subhierarchy_from_edges("c", [("c", "All")])``.
    """
    edge_set = frozenset(edges)
    categories: Set[Category] = {root, ALL}
    for child, parent in edge_set:
        categories.add(child)
        categories.add(parent)
    return Subhierarchy(root, frozenset(categories), edge_set)
