"""A persistent, verified disk store for the :class:`DecisionCache`.

Decisions are pure functions of ``(G, SIGMA)`` and the query, so warm
verdicts are worth keeping *across processes*: a restarted service (or a
CI job on the same schemas) should not re-prove what a previous run
already proved.  This module serializes a
:class:`~repro.core.decisioncache.DecisionCache` snapshot - entries,
their :class:`~repro.core.provenance.VerdictProvenance` dependency sets,
and a canonical-JSON schema sidecar per resident fingerprint - into one
file with the durability discipline the audit log established:

* **versioned**: a ``FORMAT_VERSION`` bump invalidates old files cleanly
  instead of misreading them;
* **checksummed**: a SHA-256 over the pickled payload is recorded in the
  JSON header line and re-verified on load, so a torn or tampered file is
  an error, never silently wrong verdicts;
* **atomic**: written to a temp file, fsynced, then ``os.replace``-d into
  place, so a crash mid-save leaves the previous file intact;
* **replay-verified**: :func:`load_cache` can replay every default-options
  entry through the plain sequential kernel (the same oracle
  ``audit-verify`` uses) and drop any divergent entry before the cache
  serves it.

Schemas ride along as canonical JSON (not pickle) and their fingerprints
are recomputed on load - the same defense
:func:`~repro.core.auditlog.load_schema_sidecar` applies to the audit
sidecar.  A loaded entry whose schema is missing or whose fingerprint
does not recompute is dropped, because it could never be rekeyed or
re-verified later.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.core.auditlog import _replay, _verdict_of
from repro.core.faults import FAULTS, CacheStoreFault
from repro.core.metrics import METRICS
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.decisioncache import DecisionCache

__all__ = [
    "CacheStoreError",
    "LoadReport",
    "SaveReport",
    "cache_file_path",
    "load_cache",
    "save_cache",
]

MAGIC = "repro-decision-cache"
FORMAT_VERSION = 1
CACHE_FILENAME = "decisions.cache"

_M_SAVED = METRICS.counter("cache_persist.saved_entries")
_M_LOADED = METRICS.counter("cache_persist.loaded_entries")
_M_DROPPED = METRICS.counter("cache_persist.dropped_entries")
_M_LOAD_FAILURES = METRICS.counter("cache_persist.load_failures")


class CacheStoreError(ReproError):
    """The persistent cache file is missing required structure, fails its
    checksum, or carries an incompatible version."""


@dataclass
class SaveReport:
    """What :func:`save_cache` wrote."""

    path: str
    entries: int
    schemas: int
    bytes_written: int
    #: Entries carried over from the previous on-disk store because no
    #: in-memory entry shadowed them (two processes sharing one
    #: ``--cache-dir`` must not last-writer-win each other's verdicts).
    merged_entries: int = 0

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class LoadReport:
    """What :func:`load_cache` accepted and why the rest was dropped."""

    path: str
    found: bool = False
    #: Entries installed into the cache.
    loaded: int = 0
    #: Entries already resident (or over capacity) at install time.
    not_installed: int = 0
    #: Entries replayed against the sequential kernel (``verify_replay``).
    replayed: int = 0
    #: Entries whose replayed verdict diverged from the stored one -
    #: dropped before the cache could serve them.
    dropped_divergent: int = 0
    #: Entries dropped because their schema sidecar was absent.
    dropped_missing_schema: int = 0
    #: Entries carrying non-default options, installed without replay
    #: (the checksum still guarantees integrity) - same accounting as
    #: ``audit-verify``'s skipped-options records.
    skipped_options: int = 0
    schemas: int = 0
    divergences: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Replay found nothing divergent and no schema was missing."""
        return not self.dropped_divergent and not self.dropped_missing_schema

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    def render(self) -> str:
        lines = [
            "cache-load:",
            f"  path             {self.path}",
            f"  found            {self.found}",
            f"  loaded           {self.loaded}",
            f"  replayed         {self.replayed}",
            f"  divergent        {self.dropped_divergent}",
            f"  missing schemas  {self.dropped_missing_schema}",
            f"  skipped options  {self.skipped_options}",
            f"  schemas          {self.schemas}",
        ]
        for divergence in self.divergences[:20]:
            lines.append(f"  DIVERGED: {divergence}")
        return "\n".join(lines)


def cache_file_path(directory: str) -> str:
    """The cache file inside ``directory``."""
    return os.path.join(directory, CACHE_FILENAME)


@contextlib.contextmanager
def _advisory_lock(path: str) -> Iterator[None]:
    """An exclusive advisory lock over one cache file's save critical
    section (``fcntl.flock`` on a ``.lock`` sidecar).

    Two processes sharing one ``--cache-dir`` - the long-lived decision
    server plus a sidecar CLI run is the canonical pair - serialize
    their read-merge-write sequences through this, so neither can merge
    against a snapshot the other is mid-way through replacing.  On
    platforms without ``fcntl`` the lock degrades to a no-op: the write
    itself stays atomic (``os.replace``), merging merely races.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX fallback
        yield
        return
    handle = open(path + ".lock", "a+b")
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        yield
    finally:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        handle.close()


def _merge_disk_entries(
    path: str,
    entries: Dict[Tuple[object, ...], object],
    provenance: Dict[Tuple[object, ...], object],
    schema_json: Dict[str, str],
    capacity: int,
) -> int:
    """Fold the previous on-disk store into an about-to-be-saved
    snapshot (in-memory entries win per key; disk-only entries survive
    up to ``capacity``).  Returns how many disk entries were carried
    over.  A corrupt or version-skewed previous file contributes
    nothing - the save falls back to a plain overwrite.
    """
    if not os.path.exists(path):
        return 0
    try:
        disk = _read_verified_payload(path)
    except (CacheStoreError, OSError):
        # The previous file cannot be trusted; replacing it wholesale is
        # the correct degradation (the checksummed write fixes the store).
        return 0
    disk_schemas: Dict[str, str] = disk["schemas"]  # type: ignore[assignment]
    disk_provenance: Dict[Tuple[object, ...], object] = disk["provenance"]  # type: ignore[assignment]
    merged = 0
    for key, value in disk["entries"].items():  # type: ignore[union-attr]
        if key in entries or len(entries) >= capacity:
            continue
        fingerprint = key[0]
        if fingerprint not in schema_json:
            text = disk_schemas.get(fingerprint)
            if text is None:
                # Unpersistable then, unpersistable now.
                continue
            schema_json[fingerprint] = text
        entries[key] = value
        provenance[key] = disk_provenance.get(key)
        merged += 1
    return merged


def save_cache(
    cache: "DecisionCache", directory: str, merge: bool = True
) -> SaveReport:
    """Persist a consistent snapshot of ``cache`` into ``directory``.

    The write is atomic (temp file + fsync + ``os.replace``): readers see
    either the previous complete file or the new one, never a torn state.
    An injected ``cache-store`` fault aborts the save without touching
    the existing file (degradation, not corruption).

    With ``merge`` (the default), entries already on disk that this
    cache does not hold are carried into the new file instead of being
    overwritten away - the read-merge-write runs under an advisory file
    lock, so concurrent writers sharing one directory (a server plus a
    sidecar CLI) interleave their saves without losing each other's
    verdicts.  Per-key conflicts keep the in-memory value; decisions are
    deterministic, so both sides agree anyway.  ``merge=False`` restores
    the plain overwrite (e.g. after an intentional cache reset).
    """
    from repro.io.json_io import schema_to_json

    entries, provenance, schemas = cache.snapshot()
    schema_json = {
        fingerprint: schema_to_json(schema, indent=0)
        for fingerprint, schema in schemas.items()
    }
    os.makedirs(directory, exist_ok=True)
    path = cache_file_path(directory)
    tmp_path = path + ".tmp"
    with _advisory_lock(path):
        merged = 0
        if merge:
            merged = _merge_disk_entries(
                path,
                entries,
                provenance,  # type: ignore[arg-type]
                schema_json,
                capacity=max(cache.max_entries, len(entries)),
            )
        payload = pickle.dumps(
            {
                "entries": entries,
                "provenance": provenance,
                "schemas": schema_json,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        header = {
            "magic": MAGIC,
            "version": FORMAT_VERSION,
            "entries": len(entries),
            "schemas": len(schema_json),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        try:
            FAULTS.cache_store()
            with open(tmp_path, "wb") as handle:
                handle.write(json.dumps(header, sort_keys=True).encode("utf-8"))
                handle.write(b"\n")
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except CacheStoreFault:
            # The previous file (if any) is still intact; a failed save
            # only costs the next process a cold start.
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
    _M_SAVED.inc(len(entries))
    return SaveReport(
        path=path,
        entries=len(entries),
        schemas=len(schema_json),
        bytes_written=len(payload),
        merged_entries=merged,
    )


def _read_verified_payload(path: str) -> Dict[str, object]:
    """Parse and integrity-check one cache file."""
    with open(path, "rb") as handle:
        header_line = handle.readline()
        payload = handle.read()
    try:
        header = json.loads(header_line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CacheStoreError(f"{path}: corrupt cache header: {error}")
    if header.get("magic") != MAGIC:
        raise CacheStoreError(f"{path}: not a decision-cache file")
    if header.get("version") != FORMAT_VERSION:
        raise CacheStoreError(
            f"{path}: cache format version {header.get('version')!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CacheStoreError(
            f"{path}: payload checksum mismatch "
            f"({str(header.get('payload_sha256'))[:12]} recorded, "
            f"{digest[:12]} recomputed)"
        )
    try:
        data = pickle.loads(payload)
    except Exception as error:
        raise CacheStoreError(f"{path}: corrupt cache payload: {error}")
    if not isinstance(data, dict) or not {
        "entries",
        "provenance",
        "schemas",
    } <= set(data):
        raise CacheStoreError(f"{path}: cache payload missing sections")
    return data


def load_cache(
    cache: "DecisionCache",
    directory: str,
    verify_replay: bool = True,
) -> LoadReport:
    """Load a persisted snapshot from ``directory`` into ``cache``.

    A missing file is a cold start (``found=False``), not an error;
    corruption, version skew, or checksum failure raise
    :class:`CacheStoreError` - the caller decides whether that degrades
    to a cold start (the CLI warns and continues).

    With ``verify_replay`` (the default, and the posture the persistent
    cache ships with), every default-options entry is recomputed on the
    plain sequential kernel before installation - the same oracle
    ``audit-verify`` replays the audit log against - and divergent
    entries are dropped and reported rather than served.
    """
    from repro.io.json_io import schema_from_json

    path = cache_file_path(directory)
    report = LoadReport(path=path)
    if not os.path.exists(path):
        return report
    report.found = True
    try:
        data = _read_verified_payload(path)
    except CacheStoreError:
        _M_LOAD_FAILURES.inc()
        raise

    schemas: Dict[str, object] = {}
    for fingerprint, text in data["schemas"].items():  # type: ignore[union-attr]
        try:
            schema = schema_from_json(text)
        except Exception as error:
            raise CacheStoreError(
                f"{path}: corrupt schema sidecar for "
                f"{str(fingerprint)[:12]}: {error}"
            )
        if schema.fingerprint() != fingerprint:
            raise CacheStoreError(
                f"{path}: schema sidecar fingerprint mismatch "
                f"({str(fingerprint)[:12]} recorded, "
                f"{schema.fingerprint()[:12]} recomputed)"
            )
        schemas[fingerprint] = schema
    report.schemas = len(schemas)

    entries: Dict[Tuple[object, ...], object] = {}
    provenance_in = data["provenance"]
    provenance: Dict[Tuple[object, ...], object] = {}
    for full_key, value in data["entries"].items():  # type: ignore[union-attr]
        fingerprint = full_key[0]
        schema = schemas.get(fingerprint)
        if schema is None:
            report.dropped_missing_schema += 1
            continue
        if verify_replay:
            key = full_key[1:]
            if key[-1] != ():
                # Non-default options cannot be replayed on the plain
                # kernel; the checksum already vouches for integrity.
                report.skipped_options += 1
            else:
                request = list(key[:-1])
                replayed = _replay(schema, request)
                report.replayed += 1
                if replayed != _verdict_of(value):
                    report.dropped_divergent += 1
                    report.divergences.append(
                        f"{request!r} (schema {str(fingerprint)[:12]}): "
                        f"stored {json.dumps(_verdict_of(value))} != "
                        f"replayed {json.dumps(replayed)}"
                    )
                    continue
        entries[full_key] = value
        provenance[full_key] = provenance_in.get(full_key)  # type: ignore[union-attr]

    installed = cache.install(entries, provenance, schemas)  # type: ignore[arg-type]
    report.loaded = installed
    report.not_installed = len(entries) - installed
    _M_LOADED.inc(installed)
    dropped = report.dropped_divergent + report.dropped_missing_schema
    if dropped:
        _M_DROPPED.inc(dropped)
    return report
