"""The DIMSAT algorithm (Section 5, Figure 6 of the paper).

DIMSAT decides *category satisfiability*: given a dimension schema
``ds = (G, SIGMA)`` and a category ``c``, is there an instance of ``ds``
with a member in ``c``?  By Theorem 3 this is equivalent to the existence
of a frozen dimension with root ``c``, so the algorithm backtracks over
subhierarchies of ``G`` (procedure EXPAND) and tests each complete one for
an induced frozen dimension (procedure CHECK, via Proposition 2):

1. reduce ``SIGMA(ds, c)`` with the *circle operator* of Definition 8 -
   path atoms become truth constants according to the subhierarchy,
   equality atoms whose target is unreachable become false, and (our
   reading; see DESIGN.md) constraints whose root category is absent
   become vacuously true;
2. search for a *c-assignment* - one constant from
   ``Const_ds(c') | {nk}`` per category - satisfying the reduced set.

EXPAND prunes the search with three structural heuristics, each of which
can be disabled for the ablation benchmarks (experiment E10):

* **cycle pruning** - never add an edge closing a directed cycle;
* **shortcut pruning** - never add an edge that creates a parallel longer
  path;
* **into pruning** - an *into* constraint ``c_c'`` forces the edge
  ``(c, c')`` into every subhierarchy containing ``c``, so EXPAND only
  enumerates supersets of the forced edges.

With pruning disabled CHECK takes over the corresponding validity tests,
so every configuration remains sound and complete - only slower.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.constraints.ast import (
    FALSE,
    TRUE,
    Atom,
    ComparisonAtom,
    EqualityAtom,
    Node,
    PathAtom,
    RollsUpAtom,
    ThroughAtom,
    constraint_root,
)
from repro.constraints.simplify import evaluate, simplify, substitute
from repro.core.budget import DecisionBudget
from repro.core.frozen import FrozenDimension, Subhierarchy
from repro.core.hierarchy import ALL, Category, HierarchySchema
from repro.core.metrics import METRICS
from repro.core.schema import NK, DimensionSchema
from repro.core.trace import TRACER
from repro.errors import BudgetExceeded, SchemaError

#: Pre-resolved decision counter (a module attribute read is cheaper
#: than a registry lookup per decision).  The circle-cache hit/miss
#: metrics are *derived* - the cache keeps exact counts under its own
#: lock, and the registry reads them at snapshot time, so the
#: per-reduction hot path pays nothing extra (see the registration after
#: the cache singleton below).
_M_DECISIONS = METRICS.counter("dimsat.decisions")


# ----------------------------------------------------------------------
# Options, statistics, trace
# ----------------------------------------------------------------------


@dataclass
class DimsatOptions:
    """Tuning knobs for DIMSAT.

    The defaults reproduce the paper's algorithm; the ``*_pruning`` flags
    exist for the heuristic-ablation experiment (E10) and never change the
    answer, only the work done.
    """

    #: Prune expansions that would close a directed cycle (Figure 6 line 12).
    cycle_pruning: bool = True
    #: Prune expansions that would create a shortcut (Figure 6 line 11).
    shortcut_pruning: bool = True
    #: Force into-constraint edges and skip branches that cannot contain
    #: them (Figure 6 lines 14-17).
    into_pruning: bool = True
    #: Order in which top categories are chosen: ``"sorted"`` (stable,
    #: used by the paper-figure tests) or ``"lifo"`` (deepest-name first).
    #: The answer never depends on the choice, only the trace shape.
    choice: str = "sorted"
    #: Record the EXPAND/CHECK trace (Figure 7 regeneration).
    keep_trace: bool = False
    #: Abort after this many EXPAND calls (None = unbounded); the search
    #: raises :class:`SearchBudgetExceeded` when the budget runs out.
    max_expansions: Optional[int] = None
    #: Memoize circle-operator reductions in the process-wide
    #: :class:`CircleCache`.  Never changes the answer, only the work done
    #: (the cache ablation of ``bench_decision_cache``).
    circle_cache: bool = True


#: One process-wide lock for every :class:`DimsatStats` instance.  A
#: module-level lock (rather than a per-instance one) keeps the dataclass
#: picklable for process-pool workers and its generated ``__eq__`` exact;
#: counter increments are rare enough that contention is negligible.
_STATS_LOCK = threading.Lock()


@dataclass
class DimsatStats:
    """Work counters for one DIMSAT run.

    Counters are updated through :meth:`incr`, which is atomic: the
    parallel decision engine runs several branches of one search - all
    sharing this object - on a thread pool, and a plain ``+=`` would lose
    updates under that interleaving.
    """

    expand_calls: int = 0
    check_calls: int = 0
    assignments_tested: int = 0
    subhierarchies_completed: int = 0
    into_pruned_branches: int = 0
    dead_ends: int = 0
    #: Circle-operator reductions answered by the memo / computed fresh.
    circle_hits: int = 0
    circle_misses: int = 0

    def incr(self, counter: str, delta: int = 1) -> None:
        """Atomically add ``delta`` to the named counter."""
        with _STATS_LOCK:
            setattr(self, counter, getattr(self, counter) + delta)

    def merge(self, other: "DimsatStats") -> None:
        """Atomically fold another run's counters into this one (used when
        aggregating per-branch or per-worker stats)."""
        with _STATS_LOCK:
            for field_name in (
                "expand_calls",
                "check_calls",
                "assignments_tested",
                "subhierarchies_completed",
                "into_pruned_branches",
                "dead_ends",
                "circle_hits",
                "circle_misses",
            ):
                setattr(
                    self,
                    field_name,
                    getattr(self, field_name) + getattr(other, field_name),
                )

    @property
    def circle_hit_rate(self) -> float:
        """Fraction of circle-operator reductions served from the memo."""
        total = self.circle_hits + self.circle_misses
        return self.circle_hits / total if total else 0.0


@dataclass(frozen=True)
class TraceEntry:
    """One step of the search, for the Figure 7 regeneration test.

    ``kind`` is ``"expand"`` (a category was expanded with parents
    ``added``) or ``"check"`` (a complete subhierarchy was tested;
    ``succeeded`` says whether it induced a frozen dimension).
    """

    kind: str
    category: Optional[Category]
    added: Tuple[Category, ...]
    edges: Tuple[Tuple[Category, Category], ...]
    top: Tuple[Category, ...]
    succeeded: Optional[bool] = None


@dataclass
class DimsatResult:
    """Outcome of a DIMSAT run."""

    satisfiable: bool
    witness: Optional[FrozenDimension]
    stats: DimsatStats
    trace: List[TraceEntry] = field(default_factory=list)


class SearchBudgetExceeded(BudgetExceeded, SchemaError):
    """Raised when ``max_expansions`` is exhausted before an answer.

    Subclasses :class:`~repro.errors.BudgetExceeded` (the typed budget
    error every budget-limited decision raises) and keeps its historical
    :class:`~repro.errors.SchemaError` parentage for compatibility.
    """


# ----------------------------------------------------------------------
# The circle operator (Definition 8)
# ----------------------------------------------------------------------


def circle_node(node: Node, sub: Subhierarchy) -> Node:
    """Apply Definition 8 to a single constraint (no simplification).

    * path atoms become ``TRUE``/``FALSE`` according to edge-path presence
      in the subhierarchy;
    * composed atoms become ``TRUE``/``FALSE`` according to reachability
      (they abbreviate disjunctions of path atoms, and over an acyclic
      subhierarchy the disjunction is true exactly when a path exists);
    * equality atoms ``r.cj ~ k`` become ``FALSE`` when ``cj`` is not
      reachable from ``r`` inside the subhierarchy, and stay otherwise.
    """

    def mapper(atom: Atom) -> Optional[Node]:
        if isinstance(atom, PathAtom):
            return TRUE if sub.has_edge_path(atom.full_path) else FALSE
        if isinstance(atom, RollsUpAtom):
            if atom.root == atom.target:
                return TRUE
            reachable = (
                atom.root in sub.categories
                and atom.target in sub.categories
                and sub.reaches(atom.root, atom.target)
            )
            return TRUE if reachable else FALSE
        if isinstance(atom, ThroughAtom):
            return TRUE if _through_in(atom, sub) else FALSE
        if isinstance(atom, (EqualityAtom, ComparisonAtom)):
            in_sub = (
                atom.root in sub.categories
                and atom.category in sub.categories
                and sub.reaches(atom.root, atom.category)
            )
            return None if in_sub else FALSE
        return None

    return substitute(node, mapper)


def _through_in(atom: ThroughAtom, sub: Subhierarchy) -> bool:
    c, ci, cj = atom.root, atom.via, atom.target
    if c == ci == cj:
        return True
    if c == cj and c != ci:
        return False
    if c == ci and c != cj:
        return c in sub.categories and cj in sub.categories and sub.reaches(c, cj)
    if ci == cj and c != ci:
        return c in sub.categories and ci in sub.categories and sub.reaches(c, ci)
    if not all(cat in sub.categories for cat in (c, ci, cj)):
        return False
    return sub.reaches(c, ci) and sub.reaches(ci, cj)


def circle(constraints: Iterable[Node], sub: Subhierarchy) -> List[Node]:
    """``SIGMA o g``: Definition 8 applied to a constraint set verbatim.

    No vacuity handling and no simplification; this is the literal operator
    shown in Figure 5 and is exported for the E4 regeneration test.  The
    search itself uses :func:`reduced_constraints`, which adds the vacuity
    rule and constant folding.
    """
    return [circle_node(node, sub) for node in constraints]


class CircleCache:
    """Process-wide memo for circle-operator reductions.

    Keyed by ``(constraint node, subhierarchy)``: EXPAND enumerates the
    same complete subhierarchies for every DIMSAT run over a hierarchy,
    and derived schemas share interned constraint nodes, so repeated
    decisions (implication batteries, summarizability sweeps, the
    navigator's rewrite search) reduce each constraint against each
    subhierarchy exactly once process-wide.  Bounded FIFO eviction keeps
    long-lived services at a fixed memory ceiling.
    """

    __slots__ = ("max_entries", "hits", "misses", "_data", "_lock")

    def __init__(self, max_entries: int = 65536) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._data: Dict[Tuple[Node, Subhierarchy], Node] = {}
        # The cache is process-wide and the parallel engine reduces from
        # many threads at once; the lock guards the lookup/insert *and*
        # the counters, so hits + misses always equals reduce() calls.
        self._lock = threading.Lock()

    def reduce(
        self,
        node: Node,
        sub: Subhierarchy,
        stats: Optional[DimsatStats] = None,
    ) -> Node:
        """``simplify(circle_node(node, sub))``, memoized."""
        key = (node, sub)
        with self._lock:
            cached = self._data.get(key)
            if cached is not None:
                self.hits += 1
            else:
                self.misses += 1
        if TRACER.enabled:
            TRACER.event("dimsat.circle_cache", hit=cached is not None)
        if cached is not None:
            if stats is not None:
                stats.incr("circle_hits")
            return cached
        if stats is not None:
            stats.incr("circle_misses")
        # Reduction runs outside the lock: it can be expensive, and the
        # result is deterministic, so concurrent duplicate work is safe
        # (both threads store the same folded node).
        folded = simplify(circle_node(node, sub))
        with self._lock:
            if key not in self._data and len(self._data) >= self.max_entries:
                self._data.pop(next(iter(self._data)))
            self._data[key] = folded
        return folded

    def __len__(self) -> int:
        return len(self._data)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0


_CIRCLE_CACHE = CircleCache()

METRICS.register_derived("circle_cache.hits", lambda: _CIRCLE_CACHE.hits)
METRICS.register_derived("circle_cache.misses", lambda: _CIRCLE_CACHE.misses)


def circle_cache() -> CircleCache:
    """The process-wide circle-operator memo."""
    return _CIRCLE_CACHE


def reduced_constraints(
    schema: DimensionSchema,
    category: Category,
    sub: Subhierarchy,
    stats: Optional[DimsatStats] = None,
    cache: Optional[CircleCache] = None,
) -> Optional[List[Node]]:
    """The reduced constraint set CHECK evaluates for a subhierarchy.

    Constraints from ``SIGMA(ds, category)`` whose root is not populated by
    the subhierarchy are vacuously true and dropped; the rest go through
    the circle operator and constant folding (memoized in ``cache`` when
    given).  Returns ``None`` as soon as some constraint reduces to
    ``FALSE`` (no c-assignment can help), else the list of residual
    constraints (each mentioning only equality atoms).
    """
    residual: List[Node] = []
    for node in schema.relevant_constraints(category):
        root = constraint_root(node)
        if root is not None and root not in sub.categories:
            continue
        if cache is not None:
            folded = cache.reduce(node, sub, stats)
        else:
            folded = simplify(circle_node(node, sub))
            if stats is not None:
                stats.incr("circle_misses")
        if folded is FALSE or folded == FALSE:
            return None
        if folded is TRUE or folded == TRUE:
            continue
        residual.append(folded)
    return residual


# ----------------------------------------------------------------------
# c-assignments (Section 5) and CHECK
# ----------------------------------------------------------------------


def satisfying_assignments(
    schema: DimensionSchema,
    residual: Sequence[Node],
    stats: Optional[DimsatStats] = None,
) -> Iterator[Dict[Category, str]]:
    """Enumerate c-assignments satisfying a residual constraint set.

    Only categories actually mentioned by residual equality atoms are
    enumerated; all others are fixed to ``nk``, which cannot change any
    truth value.  Assignments are yielded as partial maps (mentioned
    categories only); absent categories mean ``nk``.

    ``All`` is never enumerated: condition (C2) fixes its single member's
    name to ``all`` in every instance, so atoms over ``All`` evaluate
    against that literal name instead of a free constant.
    """
    from repro.core.instance import TOP_MEMBER

    mentioned: List[Category] = sorted(
        {
            atom.category
            for node in residual
            for atom in node.atoms()
            if isinstance(atom, (EqualityAtom, ComparisonAtom))
            and atom.category != ALL
        }
    )
    domains = [schema.constant_domain(c) for c in mentioned]
    for combo in itertools.product(*domains):
        assignment = dict(zip(mentioned, combo))
        if stats is not None:
            stats.incr("assignments_tested")

        def atom_truth(atom: Atom) -> bool:
            if isinstance(atom, EqualityAtom):
                if atom.category == ALL:
                    return atom.constant == TOP_MEMBER
                value = assignment.get(atom.category, NK)
                if isinstance(value, float):
                    # Numeric category: representatives are floats and
                    # equality constants were validated numeric.
                    return value == float(atom.constant)
                return value == atom.constant
            if isinstance(atom, ComparisonAtom):
                if atom.category == ALL:
                    # The single member of All is named 'all', which is
                    # not numeric, so no comparison ever holds there.
                    return False
                value = assignment.get(atom.category, NK)
                if not isinstance(value, float):
                    return False
                return atom.compare(value)
            raise SchemaError(
                f"residual constraint still mentions a structural atom: {atom!r}"
            )

        if all(evaluate(node, atom_truth) for node in residual):
            yield assignment


def induced_frozen_dimensions(
    schema: DimensionSchema,
    category: Category,
    sub: Subhierarchy,
    stats: Optional[DimsatStats] = None,
    require_structure: bool = False,
    cache: Optional[CircleCache] = None,
) -> Iterator[FrozenDimension]:
    """All frozen dimensions a subhierarchy induces (Proposition 2).

    When ``require_structure`` is true the acyclicity and shortcut-freeness
    of the subhierarchy are verified here (needed when EXPAND pruning is
    disabled); with the default pruning EXPAND guarantees both.

    Name maps contain only the categories residual constraints mention;
    every other category implicitly carries ``nk``.  Numeric categories
    (order predicates) carry float representatives instead of constants.
    """
    if require_structure:
        if not sub.is_acyclic() or sub.shortcut_edges():
            return
    residual = reduced_constraints(schema, category, sub, stats, cache)
    if residual is None:
        return
    for assignment in satisfying_assignments(schema, residual, stats):
        yield FrozenDimension(sub, dict(assignment))


# ----------------------------------------------------------------------
# EXPAND: the backtracking subhierarchy search
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _GState:
    """The search variable ``g`` of Figure 6, kept immutable: every
    expansion produces a new state, which makes backtracking trivial and
    the trace cheap to snapshot."""

    root: Category
    cats: FrozenSet[Category]
    out: Tuple[Tuple[Category, FrozenSet[Category]], ...]
    top: FrozenSet[Category]
    instar: Tuple[Tuple[Category, FrozenSet[Category]], ...]

    def out_map(self) -> Dict[Category, FrozenSet[Category]]:
        return dict(self.out)

    def instar_map(self) -> Dict[Category, FrozenSet[Category]]:
        return dict(self.instar)

    def edges(self) -> FrozenSet[Tuple[Category, Category]]:
        return frozenset(
            (child, parent) for child, parents in self.out for parent in parents
        )

    def in_relation(self, category: Category) -> FrozenSet[Category]:
        """``g.In(category)``: direct children inside the subhierarchy."""
        return frozenset(
            child for child, parents in self.out if category in parents
        )

    def to_subhierarchy(self) -> Subhierarchy:
        return Subhierarchy(self.root, self.cats, self.edges())

    def extend(self, ctop: Category, parents: FrozenSet[Category]) -> "_GState":
        """Add the edges ``ctop -> p`` for each chosen parent (Figure 6
        lines 1-5), maintaining the reaches-relation ``In*`` exactly."""
        new_cats = self.cats | parents
        new_top = (self.top - {ctop}) | (parents - self.cats)
        out_map = self.out_map()
        out_map[ctop] = parents

        instar = {c: set(s) for c, s in self.instar}
        for c in parents:
            instar.setdefault(c, set())
        gain = set(instar.get(ctop, set())) | {ctop}
        # Propagate the new ancestors of ctop (plus ctop itself) to every
        # category reachable from the new parents.  The paper's line (4)
        # overwrites In*; correct maintenance must merge and propagate so
        # diamonds and re-used categories keep accurate reach sets.
        queue = list(parents)
        while queue:
            node = queue.pop()
            before = instar.setdefault(node, set())
            addition = gain - before
            if not addition:
                continue
            before |= addition
            queue.extend(out_map.get(node, ()))

        return _GState(
            root=self.root,
            cats=frozenset(new_cats),
            out=tuple(sorted(out_map.items())),
            top=frozenset(new_top),
            instar=tuple(sorted((c, frozenset(s)) for c, s in instar.items())),
        )

    @classmethod
    def initial(cls, root: Category) -> "_GState":
        return cls(
            root=root,
            cats=frozenset({root}),
            out=(),
            top=frozenset({root}),
            instar=((root, frozenset()),),
        )


def _choose_top(state: _GState, options: DimsatOptions) -> Category:
    candidates = sorted(state.top - {ALL})
    if options.choice == "sorted":
        return candidates[0]
    if options.choice == "lifo":
        return candidates[-1]
    raise SchemaError(f"unknown choice strategy {options.choice!r}")


def _subsets_by_size(items: Sequence[Category]) -> Iterator[FrozenSet[Category]]:
    ordered = sorted(items)
    for size in range(len(ordered) + 1):
        for combo in itertools.combinations(ordered, size):
            yield frozenset(combo)


class _Search:
    """One DIMSAT search; drives EXPAND and yields frozen dimensions."""

    def __init__(
        self,
        schema: DimensionSchema,
        category: Category,
        options: DimsatOptions,
        budget: Optional[DecisionBudget] = None,
    ) -> None:
        self.schema = schema
        self.category = category
        self.options = options
        self.budget = budget
        self.stats = DimsatStats()
        self.trace: List[TraceEntry] = []
        self._trace_lock = threading.Lock()
        self.circle_cache = _CIRCLE_CACHE if options.circle_cache else None

    def _record(
        self,
        kind: str,
        state: _GState,
        category: Optional[Category],
        added: Iterable[Category],
        succeeded: Optional[bool] = None,
    ) -> None:
        if not self.options.keep_trace:
            return
        entry = TraceEntry(
            kind=kind,
            category=category,
            added=tuple(sorted(added)),
            edges=tuple(sorted(state.edges())),
            top=tuple(sorted(state.top)),
            succeeded=succeeded,
        )
        with self._trace_lock:
            self.trace.append(entry)

    def _charge_expansion(self) -> None:
        """One EXPAND call's worth of accounting and budget checks."""
        self.stats.incr("expand_calls")
        if (
            self.options.max_expansions is not None
            and self.stats.expand_calls > self.options.max_expansions
        ):
            raise SearchBudgetExceeded(
                f"DIMSAT exceeded {self.options.max_expansions} EXPAND calls"
            )
        if self.budget is not None:
            self.budget.charge()

    def run(self) -> Iterator[FrozenDimension]:
        state = _GState.initial(self.category)
        yield from self._expand(state, self.category, frozenset())

    def initial_jobs(self) -> Tuple[_GState, List[Tuple[_GState, Category, FrozenSet[Category]]]]:
        """The root state and its first-level branch jobs.

        This is the parallel engine's entry point: each returned job is an
        independent ``(state, category, parents)`` continuation that can
        run on its own worker via :meth:`expand_from`; together they cover
        exactly the search :meth:`run` performs.  The root expansion is
        charged here, mirroring ``_expand``'s prologue.
        """
        self._charge_expansion()
        state = _GState.initial(self.category)
        self._record("expand", state, self.category, frozenset())
        return state, list(self._branch_jobs(state))

    def expand_from(
        self, job: Tuple[_GState, Category, FrozenSet[Category]]
    ) -> Iterator[FrozenDimension]:
        """Resume the search at one branch job (parallel fan-out)."""
        yield from self._expand(*job)

    # The recursive EXPAND of Figure 6, as a generator so callers can stop
    # at the first frozen dimension (DIMSAT) or exhaust the space
    # (enumeration, implication refutation).
    def _expand(
        self,
        state: _GState,
        current: Category,
        chosen: FrozenSet[Category],
    ) -> Iterator[FrozenDimension]:
        self._charge_expansion()

        if chosen:
            state = state.extend(current, chosen)
        self._record("expand", state, current, chosen)

        if state.top == frozenset({ALL}):
            self.stats.incr("check_calls")
            self.stats.incr("subhierarchies_completed")
            sub = state.to_subhierarchy()
            need_structure = not (
                self.options.cycle_pruning and self.options.shortcut_pruning
            )
            induced = induced_frozen_dimensions(
                self.schema,
                self.category,
                sub,
                stats=self.stats,
                require_structure=need_structure,
                cache=self.circle_cache,
            )
            # One span per CHECK branch (Proposition 2 applied to one
            # complete subhierarchy): the unit of work a slow DIMSAT call
            # decomposes into.  The span times the verdict for this
            # subhierarchy (reduction + first-witness search); it closes
            # before yielding so a caller stopping at the first witness
            # cannot hold it open.
            with TRACER.span(
                "dimsat.check",
                root=self.category,
                categories=len(sub.categories),
                edges=len(sub.edges),
            ) as span:
                first = next(induced, None)
                span.set(succeeded=first is not None)
            if first is None:
                self._record("check", state, None, (), succeeded=False)
                return
            self._record("check", state, None, (), succeeded=True)
            yield first
            for frozen in induced:
                self._record("check", state, None, (), succeeded=True)
                yield frozen
            return

        for job in self._branch_jobs(state):
            yield from self._expand(*job)

    def _branch_jobs(
        self, state: _GState
    ) -> Iterator[Tuple[_GState, Category, FrozenSet[Category]]]:
        """The child expansions of one incomplete state (Figure 6 lines
        6-17), as ``(state, category, parents)`` jobs.

        Factored out of ``_expand`` so the parallel engine can enumerate
        the first level of branching and dispatch each job to a worker;
        the sequential search simply recurses over them in order.
        """
        if not state.top:
            # Only reachable with cycle pruning disabled: a cycle swallowed
            # the frontier before All was reached.
            self.stats.incr("dead_ends")
            return

        ctop = _choose_top(state, self.options)
        schema_parents = self.schema.hierarchy.parents(ctop)
        instar = state.instar_map().get(ctop, frozenset())

        blocked: Set[Category] = set()
        if self.options.shortcut_pruning:
            for candidate in schema_parents:
                if state.in_relation(candidate) & (instar | {ctop}):
                    blocked.add(candidate)
        if self.options.cycle_pruning:
            blocked |= schema_parents & instar

        legal = frozenset(schema_parents) - blocked
        if self.options.into_pruning:
            forced = self.schema.into_targets(ctop)
            if not forced <= legal:
                self.stats.incr("into_pruned_branches")
                return
        else:
            forced = frozenset()

        if not legal:
            self.stats.incr("dead_ends")
            return

        optional = legal - forced
        instar_map = state.instar_map()

        def internal_shortcut(parents: FrozenSet[Category]) -> bool:
            # Adding ctop -> p1 and ctop -> p2 together creates a shortcut
            # when p1 already reaches p2 inside g (the edge ctop -> p2 then
            # parallels ctop -> p1 -> ... -> p2).  Figure 6's line (11)
            # only guards against existing in-edges, so this case needs an
            # extra pairwise check; see DESIGN.md.
            for upper in parents:
                reaching = instar_map.get(upper)
                if reaching and reaching & (parents - {upper}):
                    return True
            return False

        for extra in _subsets_by_size(sorted(optional)):
            parents = extra | forced
            if not parents:
                continue
            if self.options.shortcut_pruning and internal_shortcut(parents):
                continue
            yield (state, ctop, parents)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def _trivial_all_result(options: DimsatOptions) -> DimsatResult:
    sub = Subhierarchy(ALL, frozenset({ALL}), frozenset())
    return DimsatResult(
        satisfiable=True,
        witness=FrozenDimension(sub, {}),
        stats=DimsatStats(),
        trace=[],
    )


def dimsat(
    schema: DimensionSchema,
    category: Category,
    options: Optional[DimsatOptions] = None,
    budget: Optional[DecisionBudget] = None,
) -> DimsatResult:
    """Decide whether ``category`` is satisfiable in ``schema``.

    Returns a :class:`DimsatResult` whose ``witness`` is a frozen dimension
    with root ``category`` when one exists (Theorem 3).  ``All`` is always
    satisfiable (Proposition 1).

    ``budget`` bounds the search: when its node or time ceiling is hit the
    call raises :class:`~repro.errors.BudgetExceeded` instead of returning
    a verdict (it never degrades into a wrong answer).

    >>> from repro.generators.location import location_schema
    >>> dimsat(location_schema(), "Store").satisfiable
    True
    """
    options = options or DimsatOptions()
    if not schema.hierarchy.has_category(category):
        raise SchemaError(f"unknown category {category!r}")
    if category == ALL:
        return _trivial_all_result(options)
    search = _Search(schema, category, options, budget=budget)
    with TRACER.span("dimsat.decide", category=category) as span:
        witness = next(search.run(), None)
        span.set(
            satisfiable=witness is not None,
            expand_calls=search.stats.expand_calls,
            check_calls=search.stats.check_calls,
        )
    _M_DECISIONS.inc()
    return DimsatResult(
        satisfiable=witness is not None,
        witness=witness,
        stats=search.stats,
        trace=search.trace,
    )


def decision_provenance(schema: DimensionSchema, category: Category):
    """The dependency set of a DIMSAT verdict rooted at ``category``.

    EXPAND only ever adds parents of categories already in the
    subhierarchy (Figure 6 lines 6-17), so the whole search - and with it
    the verdict, witness, and work counters - is a function of the upward
    closure of ``category``: the categories reachable from it, the edges
    whose child lies inside that closure, and the constraints that
    mention a closure category (``SIGMA(ds, c)`` plus the ones
    contributing ``Const_ds`` constants or thresholds from outside).
    The :class:`~repro.core.decisioncache.DecisionCache` stores this next
    to the cached result so schema edits outside the closure re-key the
    verdict instead of discarding it.
    """
    from repro.core.provenance import cone_provenance

    return cone_provenance(schema, "dimsat", (category,))


def enumerate_frozen_dimensions(
    schema: DimensionSchema,
    category: Category,
    options: Optional[DimsatOptions] = None,
    budget: Optional[DecisionBudget] = None,
) -> List[FrozenDimension]:
    """Every frozen dimension of the schema with the given root.

    This regenerates Figure 4 when run on ``locationSch`` with root
    ``Store``.  Name maps list only constrained categories; all others
    carry ``nk`` implicitly, so the enumeration is finite and canonical.
    """
    options = options or DimsatOptions()
    if not schema.hierarchy.has_category(category):
        raise SchemaError(f"unknown category {category!r}")
    if category == ALL:
        return [_trivial_all_result(options).witness]  # type: ignore[list-item]
    search = _Search(schema, category, options, budget=budget)
    return list(search.run())


def dimsat_with_search(
    schema: DimensionSchema,
    category: Category,
    options: Optional[DimsatOptions] = None,
    budget: Optional[DecisionBudget] = None,
) -> Tuple[DimsatResult, DimsatStats]:
    """Like :func:`dimsat` but also returns the stats object (convenience
    for benchmarks that aggregate counters across runs)."""
    result = dimsat(schema, category, options, budget)
    return result, result.stats
