"""Dimension schemas ``ds = (G, SIGMA)`` (end of Section 3.1).

A dimension schema couples a hierarchy schema with a finite set of
dimension constraints.  The schema is the unit DIMSAT and the implication
tester operate on; this module also precomputes the two schema-level
artifacts the algorithm needs:

* ``Const_ds`` (Section 3.2) - for each category, the constants mentioned
  by equality atoms targeting it, which bound the c-assignment search;
* the *into* constraints (Section 5) - constraints of the exact form
  ``c_c'`` that EXPAND uses to prune the subhierarchy search.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.constraints.ast import (
    ComparisonAtom,
    EqualityAtom,
    Node,
    PathAtom,
    hash_cons,
)
from repro.errors import ConstraintError
from repro.constraints.atoms import PathCache, shared_path_cache, validate_constraint
from repro.constraints.parser import parse
from repro.core.hierarchy import Category, HierarchySchema

#: The reserved pseudo-constant the paper calls ``nk``: it stands for any
#: constant *not* mentioned for the category in SIGMA.
NK = "<nk>"


class DimensionSchema:
    """An immutable dimension schema ``(G, SIGMA)``.

    Parameters
    ----------
    hierarchy:
        The hierarchy schema ``G``.
    constraints:
        The constraint set ``SIGMA``; each entry is an AST node or a string
        in the textual syntax (parsed on the spot).

    Every constraint is validated against Definition 3 at construction.

    Examples
    --------
    >>> g = HierarchySchema(["Store", "City"], [("Store", "City"), ("City", "All")])
    >>> ds = DimensionSchema(g, ["Store -> City"])
    >>> ds.into_targets("Store")
    frozenset({'City'})
    """

    __slots__ = (
        "hierarchy",
        "_constraints",
        "_roots",
        "_const_map",
        "_thresholds",
        "_path_cache",
        "_fingerprint",
        "__weakref__",
    )

    def __init__(
        self,
        hierarchy: HierarchySchema,
        constraints: Iterable[object] = (),
        path_cache: Optional[PathCache] = None,
    ) -> None:
        self.hierarchy = hierarchy
        parsed: List[Node] = []
        roots: List[Category] = []
        for entry in constraints:
            node = parse(entry) if isinstance(entry, str) else entry
            root = validate_constraint(hierarchy, node)  # type: ignore[arg-type]
            # Intern every constraint: schemas derived from one another
            # (implication extends SIGMA per query) then share node
            # objects, and the satisfiability kernel's memo tables hit by
            # identity.
            parsed.append(hash_cons(node))  # type: ignore[arg-type]
            roots.append(root)
        self._constraints: Tuple[Node, ...] = tuple(parsed)
        self._roots: Tuple[Category, ...] = tuple(roots)
        self._const_map = self._compute_const_map()
        self._thresholds = self._compute_thresholds()
        self._check_numeric_consistency()
        if path_cache is not None and path_cache.hierarchy == hierarchy:
            self._path_cache = path_cache
        else:
            self._path_cache = shared_path_cache(hierarchy)
        self._fingerprint: Optional[str] = None

    def _compute_const_map(self) -> Dict[Category, FrozenSet[str]]:
        found: Dict[Category, set] = {c: set() for c in self.hierarchy.categories}
        for node in self._constraints:
            for atom in node.atoms():
                if isinstance(atom, EqualityAtom):
                    found[atom.category].add(atom.constant)
        return {c: frozenset(s) for c, s in found.items()}

    def _compute_thresholds(self) -> Dict[Category, FrozenSet[float]]:
        found: Dict[Category, set] = {}
        for node in self._constraints:
            for atom in node.atoms():
                if isinstance(atom, ComparisonAtom):
                    found.setdefault(atom.category, set()).add(atom.threshold)
        return {c: frozenset(s) for c, s in found.items()}

    def _check_numeric_consistency(self) -> None:
        # A category constrained by order predicates is *numeric*: every
        # equality constant targeting it must parse as a number, otherwise
        # the finite-representative c-assignment search would be unsound.
        for category in self._thresholds:
            for constant in self._const_map.get(category, ()):
                try:
                    float(constant)
                except (TypeError, ValueError):
                    raise ConstraintError(
                        f"category {category!r} carries order predicates, so "
                        f"the equality constant {constant!r} must be numeric"
                    ) from None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def constraints(self) -> Tuple[Node, ...]:
        """The constraint set ``SIGMA`` in declaration order."""
        return self._constraints

    def roots(self) -> Tuple[Category, ...]:
        """The root category of each constraint, aligned with
        :attr:`constraints`."""
        return self._roots

    def constraints_with_roots(self) -> Iterable[Tuple[Category, Node]]:
        """``(root, constraint)`` pairs."""
        return zip(self._roots, self._constraints)

    @property
    def path_cache(self) -> PathCache:
        """Shared simple-path cache over the hierarchy schema."""
        return self._path_cache

    def constants(self, category: Category) -> FrozenSet[str]:
        """``Const_ds(category)``: constants equality atoms mention for it."""
        return self._const_map.get(category, frozenset())

    def thresholds(self, category: Category) -> FrozenSet[float]:
        """Numbers order predicates compare the category's names against
        (Section 6 extension); empty for symbolic categories."""
        return self._thresholds.get(category, frozenset())

    def is_numeric(self, category: Category) -> bool:
        """Whether the category carries order predicates."""
        return category in self._thresholds

    def constant_domain(self, category: Category) -> Tuple[object, ...]:
        """The c-assignment domain for one category.

        Symbolic categories: ``Const_ds(category) | {nk}`` (mentioned
        constants sorted, then ``nk``).  Numeric categories (those with
        order predicates): a finite set of *representatives* - every
        mentioned number, a point inside each interval between consecutive
        mentioned numbers, and one point beyond each end - which covers
        every truth-value combination the category's atoms can realize,
        so the finite search stays sound and complete.
        """
        if category not in self._thresholds:
            return tuple(sorted(self.constants(category))) + (NK,)
        points = set(self._thresholds[category])
        points.update(float(k) for k in self.constants(category))
        ordered = sorted(points)
        domain = [ordered[0] - 1.0]
        for left, right in zip(ordered, ordered[1:]):
            domain.append(left)
            domain.append((left + right) / 2.0)
        domain.append(ordered[-1])
        domain.append(ordered[-1] + 1.0)
        return tuple(domain)

    def max_constants(self) -> int:
        """``N_K``: the largest constant set any category carries."""
        if not self._const_map:
            return 0
        return max(len(s) for s in self._const_map.values())

    def into_targets(self, category: Category) -> FrozenSet[Category]:
        """Parents ``c'`` of ``category`` with the into constraint
        ``category_c'`` in SIGMA (Figure 6, line 14)."""
        targets = set()
        for node in self._constraints:
            if (
                isinstance(node, PathAtom)
                and node.root == category
                and len(node.path) == 1
            ):
                targets.add(node.path[0])
        return frozenset(targets & self.hierarchy.parents(category))

    def relevant_constraints(self, category: Category) -> Tuple[Node, ...]:
        """``SIGMA(ds, c)``: constraints whose root is reachable from
        ``category`` in ``G`` (Section 5).

        Constraints rooted elsewhere can never be violated by a frozen
        dimension rooted at ``category``, so DIMSAT discards them up front.
        """
        return tuple(
            node
            for root, node in zip(self._roots, self._constraints)
            if self.hierarchy.reaches(category, root)
        )

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def with_constraints(self, extra: Iterable[object]) -> "DimensionSchema":
        """A new schema with additional constraints.

        The simple-path cache is shared with this schema (the hierarchy is
        unchanged), so constraint-by-constraint derivation - the implication
        tester's hot loop - never re-enumerates paths.
        """
        return DimensionSchema(
            self.hierarchy,
            list(self._constraints) + list(extra),
            path_cache=self._path_cache,
        )

    def fingerprint(self) -> str:
        """A canonical fingerprint of ``(G, SIGMA)``.

        Hashes the sorted category set, the sorted edge set, and the
        sorted multiset of constraints in their canonical textual form, so
        two structurally equal schemas - even built independently - share
        a fingerprint.  The schema-level decision cache
        (:mod:`repro.core.decisioncache`) keys every verdict on it, which
        makes cached decisions survive schema reconstruction (fact-table
        reloads, JSON round trips) and never survive schema *edits*.
        """
        if self._fingerprint is None:
            from repro.constraints.printer import unparse

            digest = hashlib.sha256()
            digest.update("\x1d".join(sorted(self.hierarchy.categories)).encode())
            digest.update(b"\x1e")
            digest.update(
                "\x1d".join(f"{a}\x1f{b}" for a, b in sorted(self.hierarchy.edges)).encode()
            )
            digest.update(b"\x1e")
            digest.update(
                "\x1d".join(sorted(unparse(node) for node in self._constraints)).encode()
            )
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def size(self) -> int:
        """``N_SIGMA``: total node count across the constraint set, a
        proxy for the paper's 'size of SIGMA'."""
        from repro.constraints.ast import walk

        return sum(1 for node in self._constraints for _ in walk(node))

    def __repr__(self) -> str:
        return (
            f"DimensionSchema({len(self.hierarchy.categories)} categories, "
            f"{len(self._constraints)} constraints)"
        )
