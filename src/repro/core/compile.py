"""The compiled decision tier: specialize a schema once, answer forever.

Every decision the system serves - category satisfiability (Theorem 3),
constraint implication (Theorem 2), schema-level summarizability
(Theorem 1) - is a pure function of the dimension schema ``(G, SIGMA)``.
The interpreted kernel (:mod:`repro.core.dimsat`) re-runs the EXPAND /
CHECK backtracking search for every cold decision; this module instead
*compiles* the schema, keyed by its existing fingerprint, into a reusable
artifact:

* the complete subhierarchies of each root are enumerated **once** (the
  structural (C1)-(C7) side of the search: rooted at the category,
  reaching ``All``, acyclic, shortcut-free, into edges forced);
* each subhierarchy's reduced constraint set (the circle operator
  applied to SIGMA) is Tseitin-encoded into CNF over per-``(category,
  constant)`` assignment variables, guarded by a per-subhierarchy
  selector literal - one :class:`~repro.core.satsolver.Solver` instance
  per root holds the whole disjunction over subhierarchies;
* each subhierarchy also gets a **generated Python closure** that
  inlines its residual constraint evaluation (the CHECK step of
  Proposition 2); the closures re-verify every witness the solver
  produces, so a compiled "satisfiable" can never be wrong;
* implication queries join incrementally: ``SIGMA | {NOT alpha}``
  (Theorem 2) adds clauses for ``NOT alpha`` guarded by a fresh
  *activation* literal and solves under that assumption, so the solver's
  **learned clauses persist in the artifact** and every later query on
  the same schema - the whole implication family, and the per-bottom
  implication tests Theorem 1 reduces summarizability to - starts from
  everything earlier queries proved.

:class:`CompiledDecisionEngine` wires the artifact into the existing
stack: verdicts memoize through the same
:class:`~repro.core.decisioncache.DecisionCache` keys the sequential and
parallel engines use (so caches interoperate and verdicts stay
byte-identical), trace spans and metrics flow through the PR 3
observability layer, every served verdict lands in the PR 5 audit log
(replayable by ``repro-olap audit-verify``), and any compilation failure
- a numeric category, a query with comparison atoms, a subhierarchy
explosion, a witness the closures reject - degrades to the interpreted
kernel (the PR 4 discipline: slower, never wrong).

Schemas with numeric categories (order predicates) are *not* compiled:
their c-assignment domains are interval representatives whose truth
tables do not map onto the boolean assignment variables used here, so
the tier falls back to the interpreted kernel for them.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.constraints.ast import (
    FALSE,
    TRUE,
    And,
    ComparisonAtom,
    EqualityAtom,
    ExactlyOne,
    Iff,
    Implies,
    Node,
    Not,
    Or,
    Xor,
    hash_cons,
)
from repro.constraints.atoms import validate_constraint
from repro.constraints.parser import parse
from repro.constraints.printer import unparse
from repro.core.auditlog import AUDIT
from repro.core.budget import DecisionBudget
from repro.core.decisioncache import (
    USE_DEFAULT_CACHE,
    _options_key,
    resolve_cache,
)
from repro.core.dimsat import (
    DimsatOptions,
    DimsatResult,
    DimsatStats,
    _GState,
    _Search,
    _trivial_all_result,
    circle_cache,
    dimsat as run_dimsat,
    reduced_constraints,
)
from repro.core.frozen import FrozenDimension, Subhierarchy
from repro.core.hierarchy import ALL, Category
from repro.core.implication import ImplicationResult, implies as run_implies
from repro.core.instance import TOP_MEMBER
from repro.core.metrics import METRICS
from repro.core.satsolver import Solver
from repro.core.schema import DimensionSchema
from repro.core.trace import TRACER
from repro.errors import ReproError, SchemaError

__all__ = [
    "CompilationError",
    "CompiledArtifact",
    "CompiledArtifactStore",
    "CompiledDecisionEngine",
    "CompiledEngineStats",
    "compiled_artifact_store",
    "resolve_engine",
]

_M_ARTIFACT_HITS = METRICS.counter("compiled.artifact_hits")
_M_ARTIFACT_MISSES = METRICS.counter("compiled.artifact_misses")
_M_ARTIFACT_INVALIDATIONS = METRICS.counter("compiled.artifact_invalidations")
_M_COMPILE_FAILURES = METRICS.counter("compiled.compile_failures")
_M_DECISIONS = METRICS.counter("compiled.decisions")
_M_FALLBACKS = METRICS.counter("compiled.fallbacks")

#: Compilation refuses schemas whose roots have more complete
#: subhierarchies than this - the artifact would be larger than the
#: search it replaces; the engine falls back to the interpreted kernel.
DEFAULT_MAX_SUBHIERARCHIES = 4096


class CompilationError(ReproError):
    """A schema (or query) the compiled tier cannot soundly serve.

    Raising this is always safe: every caller degrades to the
    interpreted kernel, so a compilation failure costs time, never
    correctness.
    """


# ----------------------------------------------------------------------
# Structural enumeration: the (C1)-(C7) side, done once per root
# ----------------------------------------------------------------------


def _complete_subhierarchies(
    schema: DimensionSchema, root: Category, limit: int
) -> List[Subhierarchy]:
    """Every complete subhierarchy of ``G`` rooted at ``root``.

    Drives the kernel's own EXPAND branching (cycle, shortcut, and into
    pruning all enabled), so the enumeration matches the interpreted
    search exactly; into pruning stays sound for the whole ``SIGMA |
    {NOT alpha}`` family because a negated query never adds an into
    constraint.  Raises :class:`CompilationError` past ``limit``.
    """
    search = _Search(schema, root, DimsatOptions())
    out: List[Subhierarchy] = []

    def walk(
        state: _GState, current: Category, chosen: FrozenSet[Category]
    ) -> None:
        if chosen:
            state = state.extend(current, chosen)
        if state.top == frozenset({ALL}):
            out.append(state.to_subhierarchy())
            if len(out) > limit:
                raise CompilationError(
                    f"root {root!r} has more than {limit} complete "
                    "subhierarchies; compilation would not pay off"
                )
            return
        for job in search._branch_jobs(state):
            walk(*job)

    walk(_GState.initial(root), root, frozenset())
    return out


# ----------------------------------------------------------------------
# Generated CHECK closures (Proposition 2, inlined)
# ----------------------------------------------------------------------


def _py_expr(node: Node) -> str:
    """A Python expression evaluating a residual constraint against a
    ``names`` dict (category -> constant; absent means ``nk``)."""
    if node is TRUE or node == TRUE:
        return "True"
    if node is FALSE or node == FALSE:
        return "False"
    if isinstance(node, EqualityAtom):
        if node.category == ALL:
            return "True" if node.constant == TOP_MEMBER else "False"
        return f"names.get({node.category!r}) == {node.constant!r}"
    if isinstance(node, ComparisonAtom):
        raise CompilationError(
            "comparison atoms (numeric categories) are not compilable"
        )
    if isinstance(node, Not):
        return f"(not {_py_expr(node.child)})"
    if isinstance(node, And):
        if not node.operands:
            return "True"
        return "(" + " and ".join(_py_expr(op) for op in node.operands) + ")"
    if isinstance(node, Or):
        if not node.operands:
            return "False"
        return "(" + " or ".join(_py_expr(op) for op in node.operands) + ")"
    if isinstance(node, Implies):
        return (
            f"((not {_py_expr(node.antecedent)}) or "
            f"{_py_expr(node.consequent)})"
        )
    if isinstance(node, Iff):
        return f"(bool({_py_expr(node.left)}) == bool({_py_expr(node.right)}))"
    if isinstance(node, Xor):
        return f"(bool({_py_expr(node.left)}) != bool({_py_expr(node.right)}))"
    if isinstance(node, ExactlyOne):
        parts = ", ".join(f"bool({_py_expr(op)})" for op in node.operands)
        return f"(sum([{parts}]) == 1)"
    raise CompilationError(f"cannot compile node type {type(node).__name__}")


def _compile_check(
    residual: Optional[Sequence[Node]],
) -> Callable[[Dict[Category, str]], bool]:
    """The per-subhierarchy CHECK closure: generated Python source
    compiled once, evaluating the residual constraint conjunction
    directly against a name map (no AST walk at decision time)."""
    if residual is None:
        return lambda names: False
    if not residual:
        return lambda names: True
    body = " and ".join(f"({_py_expr(node)})" for node in residual)
    source = f"def _check(names):\n    return {body}\n"
    namespace: Dict[str, object] = {}
    exec(  # noqa: S102 - source is generated from our own AST
        compile(source, "<compiled-check>", "exec"),
        {"__builtins__": {}, "sum": sum, "bool": bool},
        namespace,
    )
    return namespace["_check"]  # type: ignore[return-value]


def _eval_reduced(node: Node, names: Dict[Category, str]) -> bool:
    """Interpreted evaluation of a reduced (equality-only) node; used to
    re-verify query residuals on decoded witnesses."""
    from repro.constraints.simplify import evaluate

    def atom_truth(atom: object) -> bool:
        if isinstance(atom, EqualityAtom):
            if atom.category == ALL:
                return atom.constant == TOP_MEMBER
            return names.get(atom.category) == atom.constant
        raise CompilationError(f"unexpected residual atom {atom!r}")

    return evaluate(node, atom_truth)


# ----------------------------------------------------------------------
# Per-root compilation: one incremental SAT instance per (schema, root)
# ----------------------------------------------------------------------


@dataclass
class _CompiledSubhierarchy:
    """One complete subhierarchy: its selector literal in the root's CNF
    and its generated CHECK closure."""

    sub: Subhierarchy
    selector: int
    check: Callable[[Dict[Category, str]], bool]


class _RootCompilation:
    """The compiled decision surface for one ``(schema, root)`` pair.

    The solver holds, permanently: the at-least-one clause over
    subhierarchy selectors, each subhierarchy's guarded SIGMA residual
    clauses, at-most-one clauses over each category's assignment
    variables, and every clause learned by past queries.  Queries add
    activation-guarded clauses and solve under one assumption.
    """

    def __init__(
        self, schema: DimensionSchema, root: Category, limit: int
    ) -> None:
        self.schema = schema
        self.root = root
        # One compiled root is shared by every thread deciding on its
        # schema (the decision server multiplexes clients over one
        # engine); queries mutate the incremental solver, so the whole
        # assume-solve-decode sequence is a critical section.
        self._lock = threading.Lock()
        self.solver = Solver()
        # A constant-true variable lets TRUE/FALSE fold into literals.
        self._true = self.solver.new_var()
        self.solver.add_clause([self._true])
        self._eq_vars: Dict[Tuple[Category, str], int] = {}
        self._by_category: Dict[Category, List[int]] = {}
        self._gates: Dict[Tuple[object, ...], int] = {}
        #: Hash-consed query node -> (activation literal, negated query).
        self._queries: Dict[Node, Tuple[int, Node]] = {}
        self.subs: List[_CompiledSubhierarchy] = []
        self._build(limit)

    # -- construction ---------------------------------------------------

    def _build(self, limit: int) -> None:
        cache = circle_cache()
        selectors: List[int] = []
        for sub in _complete_subhierarchies(self.schema, self.root, limit):
            selector = self.solver.new_var()
            residual = reduced_constraints(
                self.schema, self.root, sub, None, cache
            )
            if residual is None:
                # Some SIGMA constraint folded to FALSE: dead for the
                # whole implication family (it only adds constraints).
                self.solver.add_clause([-selector])
            else:
                for node in residual:
                    self.solver.add_clause([-selector, self._encode(node)])
            self.subs.append(
                _CompiledSubhierarchy(sub, selector, _compile_check(residual))
            )
            selectors.append(selector)
        # No complete subhierarchy at all makes the root unsatisfiable
        # outright; the empty clause records exactly that.
        self.solver.add_clause(selectors)

    def _eq_var(self, category: Category, constant: str) -> int:
        key = (category, constant)
        var = self._eq_vars.get(key)
        if var is None:
            var = self.solver.new_var()
            siblings = self._by_category.setdefault(category, [])
            # A member has one name: at most one equality var per
            # category holds (all false = the anonymous ``nk``).  New
            # constants from later queries slot in monotonically.
            for other in siblings:
                self.solver.add_clause([-var, -other])
            siblings.append(var)
            self._eq_vars[key] = var
        return var

    def _gate_or(self, literals: Iterable[int]) -> int:
        out: List[int] = []
        seen = set()
        for lit in literals:
            if lit == self._true:
                return self._true
            if lit == -self._true:
                continue
            if -lit in seen:
                return self._true
            if lit in seen:
                continue
            seen.add(lit)
            out.append(lit)
        if not out:
            return -self._true
        if len(out) == 1:
            return out[0]
        key = ("or", tuple(sorted(out)))
        gate = self._gates.get(key)
        if gate is None:
            gate = self.solver.new_var()
            self.solver.add_clause([-gate] + out)
            for lit in out:
                self.solver.add_clause([gate, -lit])
            self._gates[key] = gate
        return gate

    def _gate_and(self, literals: Iterable[int]) -> int:
        return -self._gate_or([-lit for lit in literals])

    def _encode(self, node: Node) -> int:
        """Tseitin-encode one reduced constraint into a literal that is
        true exactly when the constraint holds (both polarities, so the
        encoding is sound under any surrounding negation)."""
        if node is TRUE or node == TRUE:
            return self._true
        if node is FALSE or node == FALSE:
            return -self._true
        if isinstance(node, EqualityAtom):
            if node.category == ALL:
                return (
                    self._true
                    if node.constant == TOP_MEMBER
                    else -self._true
                )
            return self._eq_var(node.category, node.constant)
        if isinstance(node, ComparisonAtom):
            raise CompilationError(
                "comparison atoms (numeric categories) are not compilable"
            )
        if isinstance(node, Not):
            return -self._encode(node.child)
        if isinstance(node, And):
            return self._gate_and([self._encode(op) for op in node.operands])
        if isinstance(node, Or):
            return self._gate_or([self._encode(op) for op in node.operands])
        if isinstance(node, Implies):
            return self._gate_or(
                [-self._encode(node.antecedent), self._encode(node.consequent)]
            )
        if isinstance(node, Iff):
            left = self._encode(node.left)
            right = self._encode(node.right)
            return self._gate_and(
                [self._gate_or([-left, right]), self._gate_or([left, -right])]
            )
        if isinstance(node, Xor):
            left = self._encode(node.left)
            right = self._encode(node.right)
            return -self._gate_and(
                [self._gate_or([-left, right]), self._gate_or([left, -right])]
            )
        if isinstance(node, ExactlyOne):
            lits = [self._encode(op) for op in node.operands]
            terms = [self._gate_or(lits)]
            for a, b in itertools.combinations(lits, 2):
                terms.append(self._gate_or([-a, -b]))
            return self._gate_and(terms)
        raise CompilationError(f"cannot encode node type {type(node).__name__}")

    # -- queries --------------------------------------------------------

    def assume_query(self, node: Node) -> Tuple[int, Node]:
        """Register ``NOT node`` with the solver (Theorem 2's extension)
        and return its activation literal.

        The clauses are guarded by a fresh activation variable, so they
        constrain nothing unless assumed - one solver serves the whole
        implication family, and clauses learned under one query remain
        sound for every other.  The memo keys on the node itself
        (frozen, hash-cached), so repeat queries cost one dict probe.
        """
        known = self._queries.get(node)
        if known is not None:
            return known
        for atom in node.atoms():
            if isinstance(atom, ComparisonAtom):
                raise CompilationError(
                    "query mentions comparison atoms; deciding interpreted"
                )
        negated = hash_cons(Not(node))
        activation = self.solver.new_var()
        cache = circle_cache()
        for compiled in self.subs:
            folded = cache.reduce(negated, compiled.sub)
            if folded is FALSE or folded == FALSE:
                self.solver.add_clause([-activation, -compiled.selector])
            elif folded is TRUE or folded == TRUE:
                continue
            else:
                self.solver.add_clause(
                    [-activation, -compiled.selector, self._encode(folded)]
                )
        self._queries[node] = (activation, negated)
        return activation, negated

    # -- solving --------------------------------------------------------

    def decide(
        self, query: Optional[Node] = None
    ) -> Tuple[bool, Optional[FrozenDimension]]:
        """Satisfiability of the root - plain (``query=None``) or in the
        schema extended with ``NOT query`` (the Theorem 2 test).

        A positive verdict is re-verified: the decoded witness must pass
        the selected subhierarchy's generated CHECK closure (and the
        reduced query, when present).  Verification failure raises
        :class:`CompilationError`, so a solver or encoding defect can
        only ever cost a fallback, never a wrong "satisfiable".
        """
        with self._lock:
            assumptions: List[int] = []
            negated: Optional[Node] = None
            if query is not None:
                activation, negated = self.assume_query(query)
                assumptions.append(activation)
            if not self.solver.solve(assumptions):
                return False, None
            witness = self._decode_witness(negated)
            return True, witness

    def _decode_witness(self, negated: Optional[Node]) -> FrozenDimension:
        model_value = self.solver.model_value
        selected: Optional[_CompiledSubhierarchy] = None
        for compiled in self.subs:
            if model_value(compiled.selector):
                selected = compiled
                break
        if selected is None:
            raise CompilationError("SAT model selects no subhierarchy")
        names = {
            category: constant
            for (category, constant), var in self._eq_vars.items()
            if model_value(var) and category in selected.sub.categories
        }
        if not selected.check(names):
            raise CompilationError(
                "decoded witness fails the compiled CHECK closure"
            )
        if negated is not None:
            folded = circle_cache().reduce(negated, selected.sub)
            if not _eval_reduced(folded, names):
                raise CompilationError(
                    "decoded witness fails the reduced query constraint"
                )
        return FrozenDimension(selected.sub, names)

    # -- introspection --------------------------------------------------

    def describe(self) -> Dict[str, int]:
        return {
            "subhierarchies": len(self.subs),
            "variables": self.solver.num_vars,
            "clauses": self.solver.num_clauses,
            "learned_clauses": self.solver.num_learned,
            "queries": len(self._queries),
            "conflicts": self.solver.stats.conflicts,
        }


# ----------------------------------------------------------------------
# The per-schema artifact and its process-wide store
# ----------------------------------------------------------------------


class CompiledArtifact:
    """Everything compiled for one schema fingerprint.

    Roots compile lazily on first use (a navigator may only ever decide
    over a few bottom categories) and stay resident - with their solvers
    and learned clauses - for the lifetime of the artifact.
    """

    def __init__(
        self,
        schema: DimensionSchema,
        max_subhierarchies: int = DEFAULT_MAX_SUBHIERARCHIES,
    ) -> None:
        for category in schema.hierarchy.categories:
            if schema.is_numeric(category):
                raise CompilationError(
                    f"category {category!r} carries order predicates; "
                    "numeric domains are decided by the interpreted kernel"
                )
        self.schema = schema
        self.fingerprint = schema.fingerprint()
        self.max_subhierarchies = max_subhierarchies
        self._roots: Dict[Category, _RootCompilation] = {}
        self._lock = threading.Lock()

    def root(self, category: Category) -> _RootCompilation:
        """The compiled surface for one root, building it on first use."""
        with self._lock:
            compiled = self._roots.get(category)
            if compiled is None:
                with TRACER.span(
                    "compile.root", root=category, fingerprint=self.fingerprint
                ) as span:
                    compiled = _RootCompilation(
                        self.schema, category, self.max_subhierarchies
                    )
                    span.set(
                        subhierarchies=len(compiled.subs),
                        variables=compiled.solver.num_vars,
                        clauses=compiled.solver.num_clauses,
                    )
                self._roots[category] = compiled
            return compiled

    def compile_all_roots(self) -> Dict[Category, Dict[str, int]]:
        """Eagerly compile every category (the CLI ``compile`` command);
        returns per-root artifact statistics."""
        report: Dict[Category, Dict[str, int]] = {}
        for category in sorted(self.schema.hierarchy.categories):
            if category == ALL:
                continue
            report[category] = self.root(category).describe()
        return report

    def describe(self) -> Dict[str, object]:
        roots = {root: rc.describe() for root, rc in sorted(self._roots.items())}
        return {
            "fingerprint": self.fingerprint,
            "roots_compiled": len(roots),
            "learned_clauses": sum(r["learned_clauses"] for r in roots.values()),
            "roots": roots,
        }


@dataclass
class ArtifactStoreStats:
    """Counters for the process-wide artifact store (``--cache-stats``
    and the telemetry operator report surface these)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    compile_failures: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "compile_failures": self.compile_failures,
        }


class CompiledArtifactStore:
    """Fingerprint-keyed registry of compiled artifacts.

    Failures are cached too (as their reason string): a schema the
    compiler rejects once is rejected cheaply forever - the engine's
    fallback path does the actual deciding.  ``SchemaEditor`` mutations
    call :meth:`invalidate`, mirroring the decision-cache hygiene;
    correctness never depends on it because an edited schema has a new
    fingerprint.
    """

    def __init__(
        self,
        max_entries: int = 64,
        max_subhierarchies: int = DEFAULT_MAX_SUBHIERARCHIES,
    ) -> None:
        self.max_entries = max_entries
        self.max_subhierarchies = max_subhierarchies
        self.stats = ArtifactStoreStats()
        self._lock = threading.Lock()
        self._artifacts: Dict[str, object] = {}

    def get(self, schema: DimensionSchema) -> CompiledArtifact:
        """The artifact for this schema, compiling on first sight."""
        fingerprint = schema.fingerprint()
        with self._lock:
            entry = self._artifacts.get(fingerprint)
            if entry is not None:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
        if entry is not None:
            _M_ARTIFACT_HITS.inc()
            if isinstance(entry, str):
                raise CompilationError(entry)
            return entry  # type: ignore[return-value]
        _M_ARTIFACT_MISSES.inc()
        try:
            with TRACER.span("compile.schema", fingerprint=fingerprint):
                artifact: object = CompiledArtifact(
                    schema, self.max_subhierarchies
                )
        except CompilationError as error:
            with self._lock:
                self.stats.compile_failures += 1
                self._store(fingerprint, str(error))
            _M_COMPILE_FAILURES.inc()
            raise
        with self._lock:
            self._store(fingerprint, artifact)
        return artifact  # type: ignore[return-value]

    def _store(self, fingerprint: str, entry: object) -> None:
        if fingerprint not in self._artifacts:
            if len(self._artifacts) >= self.max_entries:
                self._artifacts.pop(next(iter(self._artifacts)))
            self._artifacts[fingerprint] = entry

    def invalidate(self, schema_or_fingerprint: object) -> int:
        """Drop the artifact (or cached failure) for one schema version;
        returns the number of entries removed."""
        fingerprint = (
            schema_or_fingerprint
            if isinstance(schema_or_fingerprint, str)
            else schema_or_fingerprint.fingerprint()  # type: ignore[union-attr]
        )
        with self._lock:
            dropped = 1 if self._artifacts.pop(fingerprint, None) is not None else 0
            self.stats.invalidations += dropped
        if dropped:
            _M_ARTIFACT_INVALIDATIONS.inc(dropped)
            if TRACER.enabled:
                TRACER.event(
                    "compiled.invalidate", fingerprint=fingerprint
                )
        return dropped

    def holds(self, fingerprint: str) -> bool:
        """Whether an artifact (or cached failure) exists for
        ``fingerprint``."""
        with self._lock:
            return fingerprint in self._artifacts

    def clear(self) -> None:
        with self._lock:
            self._artifacts.clear()
            self.stats = ArtifactStoreStats()

    def __len__(self) -> int:
        return len(self._artifacts)

    def report_lines(self) -> List[str]:
        """The ``--cache-stats`` block for the artifact store."""
        return [
            "compiled artifacts:",
            f"  entries        {len(self)}",
            f"  hits           {self.stats.hits}",
            f"  misses         {self.stats.misses}",
            f"  invalidations  {self.stats.invalidations}",
            f"  compile fails  {self.stats.compile_failures}",
        ]


_ARTIFACT_STORE = CompiledArtifactStore()


def compiled_artifact_store() -> CompiledArtifactStore:
    """The process-wide artifact store (shared by every
    :class:`CompiledDecisionEngine` unless one is injected)."""
    return _ARTIFACT_STORE


# ----------------------------------------------------------------------
# The engine rung
# ----------------------------------------------------------------------


@dataclass
class CompiledEngineStats:
    """Work counters for one :class:`CompiledDecisionEngine`."""

    compiled_decisions: int = 0
    fallbacks: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "compiled_decisions": self.compiled_decisions,
            "fallbacks": self.fallbacks,
        }


class CompiledDecisionEngine:
    """The compiled rung of the decision stack.

    API-compatible with
    :class:`~repro.core.parallel.ParallelDecisionEngine` where the upper
    layers care: the navigator and view selection batch through
    :meth:`decide_many`, and
    :class:`~repro.core.resilience.ResilientDecisionEngine` can wrap it
    as its primary rung (compile failures then ride the existing
    degradation ladder).  Verdicts memoize through the shared
    :class:`~repro.core.decisioncache.DecisionCache` under the *same
    keys* as the sequential and parallel engines - the compiled tier
    changes where cold verdicts come from, never what they are.

    The compiled tier always decides under default
    :class:`~repro.core.dimsat.DimsatOptions` (``options`` is pinned to
    ``None``), which also keeps its audit records replayable by
    ``repro-olap audit-verify``.
    """

    def __init__(
        self,
        cache: object = USE_DEFAULT_CACHE,
        budget: Optional[DecisionBudget] = None,
        store: Optional[CompiledArtifactStore] = None,
    ) -> None:
        self.cache = resolve_cache(cache)
        self.options: Optional[DimsatOptions] = None
        self._options_key = _options_key(self.options)
        self.budget_template = budget
        self.store = store if store is not None else compiled_artifact_store()
        self.stats = CompiledEngineStats()
        self._lock = threading.Lock()

    # -- engine-protocol plumbing ---------------------------------------

    def shutdown(self, wait_for_tasks: bool = True) -> None:
        """No pools to tear down; present for engine-protocol parity."""

    def __enter__(self) -> "CompiledDecisionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def _fresh_budget(self) -> Optional[DecisionBudget]:
        if self.budget_template is None:
            return None
        return self.budget_template.fresh()

    # -- memoization / audit glue ---------------------------------------

    def _memoized(
        self,
        schema: DimensionSchema,
        key: Tuple[object, ...],
        compute: Callable[[], object],
    ) -> object:
        if self.cache is not None:
            return self.cache.memoize(schema, key, compute)
        if AUDIT.enabled:
            start = time.perf_counter()
            value = compute()
            AUDIT.record_decision(
                schema,
                key[:-1],
                key[-1],
                value,
                (time.perf_counter() - start) * 1000.0,
                cache_hit=False,
            )
            return value
        return compute()

    def _note_fallback(self, kind: str, error: CompilationError) -> None:
        with self._lock:
            self.stats.fallbacks += 1
        _M_FALLBACKS.inc()
        if TRACER.enabled:
            TRACER.event("compiled.fallback", kind=kind, reason=str(error))

    # -- the three decision procedures ----------------------------------

    def dimsat(
        self, schema: DimensionSchema, category: Category
    ) -> DimsatResult:
        """Category satisfiability through the compiled artifact."""
        if not schema.hierarchy.has_category(category):
            raise SchemaError(f"unknown category {category!r}")
        if category == ALL:
            return _trivial_all_result(DimsatOptions())
        key = ("dimsat", category, self._options_key)
        return self._memoized(  # type: ignore[return-value]
            schema, key, lambda: self._dimsat_uncached(schema, category)
        )

    def _dimsat_uncached(
        self, schema: DimensionSchema, category: Category
    ) -> DimsatResult:
        try:
            root = self.store.get(schema).root(category)
            with TRACER.span(
                "compiled.decide", kind="dimsat", category=category
            ) as span:
                satisfiable, witness = root.decide()
                span.set(satisfiable=satisfiable)
        except CompilationError as error:
            self._note_fallback("dimsat", error)
            return run_dimsat(schema, category, None, self._fresh_budget())
        # Advisory hot-path counter: a plain increment (GIL-coalesced)
        # instead of a lock round-trip on every served decision.
        self.stats.compiled_decisions += 1
        _M_DECISIONS.inc()
        return DimsatResult(
            satisfiable=satisfiable, witness=witness, stats=DimsatStats()
        )

    def implies(
        self, schema: DimensionSchema, constraint: object
    ) -> ImplicationResult:
        """Theorem 2 through the artifact: assume the query's activation
        literal over the root's persistent solver."""
        node: Node = (
            parse(constraint) if isinstance(constraint, str) else constraint  # type: ignore[assignment]
        )
        root_category = validate_constraint(schema.hierarchy, node)
        if self.cache is None and not AUDIT.enabled:
            # Nothing will consume the memo key; skip serializing it.
            return self._implies_uncached(schema, node, root_category)
        key = ("implies", unparse(node), self._options_key)
        return self._memoized(  # type: ignore[return-value]
            schema,
            key,
            lambda: self._implies_uncached(schema, node, root_category),
        )

    def _implies_uncached(
        self,
        schema: DimensionSchema,
        node: Node,
        root_category: Optional[Category] = None,
    ) -> ImplicationResult:
        if root_category is None:
            root_category = validate_constraint(schema.hierarchy, node)
        try:
            root = self.store.get(schema).root(root_category)
            with TRACER.span(
                "compiled.decide", kind="implies", root=root_category
            ) as span:
                satisfiable, witness = root.decide(query=node)
                span.set(implied=not satisfiable)
        except CompilationError as error:
            self._note_fallback("implies", error)
            return run_implies(
                schema, node, None, cache=None, budget=self._fresh_budget()
            )
        # Advisory hot-path counter: a plain increment (GIL-coalesced)
        # instead of a lock round-trip on every served decision.
        self.stats.compiled_decisions += 1
        _M_DECISIONS.inc()
        return ImplicationResult(
            implied=not satisfiable,
            counterexample=witness,
            dimsat_result=DimsatResult(
                satisfiable=satisfiable, witness=witness, stats=DimsatStats()
            ),
        )

    def is_implied(self, schema: DimensionSchema, constraint: object) -> bool:
        return self.implies(schema, constraint).implied

    def is_satisfiable(
        self, schema: DimensionSchema, category: Category
    ) -> bool:
        return self.dimsat(schema, category).satisfiable

    def is_summarizable(
        self,
        schema: DimensionSchema,
        target: Category,
        sources: Iterable[Category],
    ) -> bool:
        """Theorem 1: one compiled implication test per bottom category.

        All bottoms share the artifact, so the per-bottom tests reuse
        each other's learned clauses within each root solver, and
        repeated source sets hit the registered-query memo outright.
        """
        from repro.core.summarizability import _check_categories

        source_key = tuple(sorted(set(sources)))
        _check_categories(schema.hierarchy, target, source_key)
        key = ("summarizable", target, source_key, self._options_key)
        return self._memoized(  # type: ignore[return-value]
            schema,
            key,
            lambda: self._summarizable_uncached(schema, target, source_key),
        )

    def _summarizable_uncached(
        self,
        schema: DimensionSchema,
        target: Category,
        sources: Tuple[Category, ...],
    ) -> bool:
        from repro.core.summarizability import summarizability_constraints

        with TRACER.span(
            "compiled.decide", kind="summarizable", target=target
        ) as span:
            for bottom, node in summarizability_constraints(
                schema.hierarchy, target, sources
            ):
                if bottom == ALL:
                    continue
                # The generated constraint is rooted at its bottom, so
                # re-validation (and its hierarchy walk) is redundant.
                if not self._implies_uncached(schema, node, bottom).implied:
                    span.set(summarizable=False)
                    return False
            span.set(summarizable=True)
        return True

    # -- the batch API ---------------------------------------------------

    def decide_many(
        self,
        items: Iterable[Tuple[DimensionSchema, Sequence[object]]],
    ) -> List[bool]:
        """Batch verdicts aligned with the input order (the navigator /
        view-selection entry point).  Requests are normalized and deduped
        like the parallel engine's batches; each unique request is one
        artifact decision."""
        results = self.try_decide_many(items)
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return results  # type: ignore[return-value]

    def try_decide_many(
        self,
        items: Iterable[Tuple[DimensionSchema, Sequence[object]]],
    ) -> List[object]:
        """:meth:`decide_many` with per-request fault containment."""
        from repro.core.parallel import normalize_request

        pairs = [
            (schema, normalize_request(request)) for schema, request in items
        ]
        answered: Dict[Tuple[str, Tuple[object, ...]], object] = {}
        out: List[object] = []
        for schema, request in pairs:
            ukey = (schema.fingerprint(), request)
            if ukey not in answered:
                try:
                    answered[ukey] = self._decide_one(schema, request)
                except Exception as error:  # noqa: BLE001 - contained per request
                    answered[ukey] = error
            out.append(answered[ukey])
        return out

    def _decide_one(
        self, schema: DimensionSchema, request: Tuple[object, ...]
    ) -> bool:
        kind = request[0]
        if kind == "dimsat":
            return self.dimsat(schema, request[1]).satisfiable  # type: ignore[arg-type]
        if kind == "implies":
            return self.implies(schema, request[1]).implied
        if kind == "summarizable":
            return self.is_summarizable(
                schema, request[1], tuple(request[2])  # type: ignore[arg-type]
            )
        raise SchemaError(f"unknown decision request kind {kind!r}")


def resolve_engine(engine: object, cache: object = USE_DEFAULT_CACHE) -> object:
    """Resolve the ``engine=`` argument the OLAP layers accept.

    The string ``"compiled"`` becomes a :class:`CompiledDecisionEngine`
    over the given cache; any other value (an engine object or ``None``)
    passes through unchanged.
    """
    if engine == "compiled":
        return CompiledDecisionEngine(cache=cache)
    return engine
