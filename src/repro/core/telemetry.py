"""Telemetry export: ship spans, metrics, and audit records off-process.

PR 3 gave the kernel spans (:mod:`repro.core.trace`) and metrics
(:mod:`repro.core.metrics`), but both live in in-memory ring buffers
that die with the process.  The ROADMAP's production target needs
telemetry that can be *shipped, stored, replayed, and compared across
runs*.  This module is that shipping layer:

* :class:`BackgroundWriter` - a bounded buffer drained by one daemon
  thread.  Producers (the instrumented hot paths) pay one length check
  plus a lock-free ``deque.append`` and never wait - serialization and
  file writes happen on the drain thread.  When the buffer is full the
  record is **dropped and counted** (``telemetry.dropped_records``),
  because a decision service must never stall behind its own
  observability.
* :class:`TelemetryPipeline` - one per telemetry directory.  Streams
  finished spans/events to ``spans.jsonl`` / ``events.jsonl`` (the
  :class:`~repro.core.trace.SpanSink` protocol), audit records to
  ``audit.jsonl`` with the ``schemas.jsonl`` sidecar (the
  :class:`~repro.core.auditlog.AuditSink` protocol), and at
  :meth:`~TelemetryPipeline.finalize` renders three derived artifacts:

  - ``metrics.json`` - the :meth:`MetricsRegistry.snapshot` document;
  - ``metrics.prom`` - the same snapshot in Prometheus text exposition
    format (:func:`render_prometheus`), scrape-ready;
  - ``trace.json`` - the tracer's spans in Chrome trace-event format
    (:func:`render_chrome_trace`), so a DIMSAT decision opens as a
    flamegraph in ``chrome://tracing`` or Perfetto.

* :func:`render_report` - the ``repro-olap report --telemetry DIR``
  renderer: p50/p95/p99 per decision kind from the audit log, cache hit
  rates and circuit-breaker counters from the metrics snapshot, top
  spans by total time.

The CLI's global ``--telemetry-dir DIR`` constructs a pipeline,
:meth:`installs <TelemetryPipeline.install>` it (tracer sink + audit
log), and finalizes it after the command; with the flag absent nothing
here ever runs and the instrumented sites cost one attribute check.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, IO, List, Optional, Sequence, Tuple

from repro.core.auditlog import AUDIT
from repro.core.metrics import METRICS
from repro.core.trace import TRACER
from repro.errors import ReproError

_M_DROPPED = METRICS.counter("telemetry.dropped_records")


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """The ``q``-quantile (0..1) by nearest-rank on a sorted copy."""
    if not values:
        return None
    data = sorted(values)
    index = min(len(data) - 1, max(0, round(q * (len(data) - 1))))
    return data[index]


# ----------------------------------------------------------------------
# The bounded background writer
# ----------------------------------------------------------------------


class BackgroundWriter:
    """One daemon thread draining ``(handle, record)`` work items.

    ``submit`` never blocks and never serializes: the hot path pays a
    length check plus one ``deque.append`` (atomic under the GIL - no
    lock, no condition-variable wakeup).  The drain thread does the
    ``json.dumps`` and the file writes in batches.  The bound is *soft*:
    when the buffer is at ``maxsize`` the record is dropped and counted;
    racing producers can overshoot by a handful of records, which is an
    acceptable trade for a lock-free enqueue.

    The drain thread *yields to the decision path*: while the buffer is
    still growing (producers are mid-burst) it backs off instead of
    competing for the interpreter, and catches up in idle gaps - unless
    the backlog crosses the high-water mark (3/4 of ``maxsize``), at
    which point it drains at full speed to protect the bound.
    :meth:`flush` and :meth:`close` always drain at full speed.

    ``autostart=False`` exists for tests that need deterministic
    buffer-full behavior: nothing is drained until :meth:`start`.
    """

    #: How long the drain thread sleeps when the buffer is empty.
    _IDLE_SLEEP_S = 0.001
    #: How long it backs off while producers are actively appending.
    _BACKOFF_S = 0.002
    #: Records written per drain step outside fast mode, so a drain that
    #: collides with the start of a burst yields after one small batch.
    _BATCH = 128

    def __init__(self, maxsize: int = 8192, autostart: bool = True) -> None:
        self._maxsize = maxsize
        self._high_water = max(1, (maxsize * 3) // 4)
        self._buffer: Deque[Tuple[IO[str], object]] = deque()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._stop = False
        self._busy = False
        self._fast = False
        self._paused = False
        self.dropped = 0
        self.written = 0
        if autostart:
            self.start()

    def start(self) -> None:
        with self._lock:
            if self._thread is None:
                self._stop = False
                self._thread = threading.Thread(
                    target=self._drain, name="telemetry-writer", daemon=True
                )
                self._thread.start()
                # The drain thread is a daemon, so an interpreter exit
                # without an explicit close would discard whatever is
                # still buffered.  The atexit hook drains first; close()
                # unregisters it, so an explicit close stays the common
                # path and the hook is the abnormal-exit safety net.
                atexit.register(self.close)

    def submit(self, handle: IO[str], record: object) -> None:
        """Enqueue one record (a JSON-ready mapping, or a pre-rendered
        string); drop (and count) instead of blocking when full."""
        if len(self._buffer) >= self._maxsize:
            self.dropped += 1
            _M_DROPPED.inc()
            return
        self._buffer.append((handle, record))

    def channel(self, handle: IO[str]):
        """A bound single-argument enqueue for one stream.

        The returned callable is the cheapest producer path this writer
        offers - the buffer, its ``append``, the bound, and the handle
        are closed over, so a hot-path enqueue is one call, one length
        check, and one atomic append.  The pipeline binds its sink
        protocol methods to these."""
        buffer = self._buffer
        append = buffer.append
        maxsize = self._maxsize

        def submit(record: object) -> None:
            if len(buffer) >= maxsize:
                self.dropped += 1
                _M_DROPPED.inc()
            else:
                append((handle, record))

        return submit

    def _write_one(self, handle: IO[str], record: object) -> None:
        try:
            if not isinstance(record, str):
                as_dict = getattr(record, "as_dict", None)
                if as_dict is not None:
                    record = as_dict()
                record = json.dumps(record, separators=(",", ":"))
            handle.write(record + "\n")
            self.written += 1
        except (ValueError, OSError, TypeError):
            # A closed/failing handle or an unserializable record must
            # not kill the drain thread; the record is lost and counted.
            self.dropped += 1
            _M_DROPPED.inc()

    def _drain(self) -> None:
        last_len = 0
        while True:
            n = len(self._buffer)
            if not n:
                if self._stop:
                    return
                self._busy = False
                last_len = 0
                time.sleep(self._IDLE_SLEEP_S)
                continue
            fast = self._fast or self._stop or n >= self._high_water
            if not fast and self._paused:
                time.sleep(self._BACKOFF_S)
                continue
            if not fast and n > last_len:
                # Producers are mid-burst: let the backlog build rather
                # than competing with the decision path for the
                # interpreter.  The high-water mark caps the deferral.
                last_len = n
                time.sleep(self._BACKOFF_S)
                continue
            self._busy = True
            for _ in range(n if fast else self._BATCH):
                try:
                    handle, record = self._buffer.popleft()
                except IndexError:
                    break
                self._write_one(handle, record)
            # Re-checked against the post-batch length, so a burst that
            # started mid-batch triggers the backoff on the next pass.
            last_len = len(self._buffer)
            self._busy = False

    def pause(self) -> None:
        """Keep the drain thread idle (records buffer, nothing is
        written) until :meth:`resume`.  :meth:`flush` and :meth:`close`
        still drain - the pause only yields the steady-state thread.
        Benchmarks use this to price the producer side in isolation;
        the high-water mark still forces a drain if the buffer fills."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    def flush(self) -> None:
        """Block until everything buffered so far has been written."""
        self.start()
        self._fast = True
        try:
            while self._buffer or self._busy:
                time.sleep(self._IDLE_SLEEP_S)
        finally:
            self._fast = False

    def close(self) -> None:
        """Drain the buffer and stop the writer thread.  Idempotent, and
        unregisters the interpreter-exit safety net."""
        self.start()
        self.flush()
        self._stop = True
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
        atexit.unregister(self.close)


# ----------------------------------------------------------------------
# Renderers: Prometheus text exposition, Chrome trace events
# ----------------------------------------------------------------------


def _prom_name(name: str, prefix: str = "repro_") -> str:
    """A metric name sanitized to the Prometheus grammar."""
    sanitized = "".join(
        ch if (ch.isascii() and (ch.isalnum() or ch == "_")) else "_"
        for ch in name.replace(".", "_").replace("-", "_")
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _prom_value(value: object) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """A :meth:`MetricsRegistry.snapshot` document in Prometheus text
    exposition format (version 0.0.4).

    Counters (including derived views) become ``counter`` samples,
    gauges ``gauge`` samples, histograms ``summary`` samples with
    ``{quantile=...}`` labels plus ``_sum``/``_count`` (and a
    ``_reservoir_dropped`` gauge advertising quantile bias).
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        for q_label, q_key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            q_value = data.get(q_key)
            if q_value is not None:
                lines.append(
                    f'{prom}{{quantile="{q_label}"}} {_prom_value(q_value)}'
                )
        lines.append(f"{prom}_sum {_prom_value(data.get('total', 0.0))}")
        lines.append(f"{prom}_count {_prom_value(data.get('count', 0))}")
        dropped = data.get("reservoir_dropped")
        if dropped:
            lines.append(f"# TYPE {prom}_reservoir_dropped gauge")
            lines.append(f"{prom}_reservoir_dropped {_prom_value(dropped)}")
    return "\n".join(lines) + "\n"


def render_chrome_trace(
    spans: Sequence[Dict[str, Any]],
    events: Sequence[Dict[str, Any]] = (),
    pid: Optional[int] = None,
) -> Dict[str, Any]:
    """Tracer spans/events as a Chrome trace-event document.

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps, so ``chrome://tracing`` / Perfetto renders a DIMSAT
    decision as a flamegraph: ``dimsat.decide`` on top, its
    ``dimsat.check`` branches nested below, per worker-thread track.
    Point events become thread-scoped instants (``"ph": "i"``).
    """
    process = os.getpid() if pid is None else pid
    trace_events: List[Dict[str, Any]] = []
    for span in spans:
        args = dict(span.get("attrs", {}))
        args["span_id"] = span.get("span_id")
        if span.get("parent_id") is not None:
            args["parent_id"] = span["parent_id"]
        if span.get("error"):
            args["error"] = span["error"]
        trace_events.append(
            {
                "name": span["name"],
                "cat": span["name"].split(".", 1)[0],
                "ph": "X",
                "ts": span["start_ms"] * 1000.0,
                "dur": (span.get("duration_ms") or 0.0) * 1000.0,
                "pid": process,
                "tid": span.get("tid") or 0,
                "args": args,
            }
        )
    for event in events:
        trace_events.append(
            {
                "name": event["name"],
                "cat": event["name"].split(".", 1)[0],
                "ph": "i",
                "s": "p",
                "ts": event["time_ms"] * 1000.0,
                "pid": process,
                "tid": 0,
                "args": dict(event.get("attrs", {})),
            }
        )
    trace_events.sort(key=lambda e: e["ts"])
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------

#: File names a telemetry directory contains.
SPANS_FILE = "spans.jsonl"
EVENTS_FILE = "events.jsonl"
AUDIT_FILE = "audit.jsonl"
SCHEMAS_FILE = "schemas.jsonl"
METRICS_JSON_FILE = "metrics.json"
METRICS_PROM_FILE = "metrics.prom"
CHROME_TRACE_FILE = "trace.json"
MANIFEST_FILE = "MANIFEST.json"


class TelemetryPipeline:
    """Everything ``--telemetry-dir DIR`` turns on, in one object.

    Implements both sink protocols: the tracer's
    (:meth:`export_span` / :meth:`export_event`) and the audit log's
    (:meth:`export_audit` / :meth:`export_schema`).  All four stream
    through one :class:`BackgroundWriter`, so the hot path pays one
    non-blocking enqueue per record (the writer serializes off-thread).

    Use as a context manager, or :meth:`install` / :meth:`finalize`
    explicitly.
    """

    def __init__(self, directory: str, max_queue: int = 8192) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._writer = BackgroundWriter(maxsize=max_queue)
        self._handles: Dict[str, IO[str]] = {}
        for filename in (SPANS_FILE, EVENTS_FILE, AUDIT_FILE, SCHEMAS_FILE):
            self._handles[filename] = open(
                os.path.join(directory, filename), "w", encoding="utf-8"
            )
        self._installed = False
        self._tracer_was_enabled = False
        self._finalized = False
        # The sink protocol methods are bound per-stream writer channels:
        # a finished span/event/audit record costs the instrumented
        # thread exactly one closure call (length check + atomic append).
        self.export_span = self._writer.channel(self._handles[SPANS_FILE])
        self.export_event = self._writer.channel(self._handles[EVENTS_FILE])
        self.export_audit = self._writer.channel(self._handles[AUDIT_FILE])

    @property
    def writer(self) -> BackgroundWriter:
        """The shared background writer (e.g. for pause/resume)."""
        return self._writer

    # -- sink protocols -------------------------------------------------

    # ``export_span`` (a finished TraceSpan, rendered on the drain
    # thread), ``export_event``, and ``export_audit`` are bound in
    # ``__init__`` as writer channels - see
    # :meth:`BackgroundWriter.channel`.

    def export_schema(self, fingerprint: str, schema_json: str) -> None:
        self._writer.submit(
            self._handles[SCHEMAS_FILE],
            {"fingerprint": fingerprint, "schema_json": schema_json},
        )

    # -- lifecycle ------------------------------------------------------

    def install(self) -> "TelemetryPipeline":
        """Wire this pipeline into the process-wide tracer and audit log.

        Also registers an interpreter-exit finalize: the writer's drain
        thread is a daemon and the stream handles are buffered, so a
        process that ends without an explicit :meth:`finalize` (uncaught
        exception, ``sys.exit`` deep in a library) would otherwise lose
        its tail of spans and audit records.  An explicit finalize
        unregisters the hook; running it twice is a no-op either way.
        """
        if self._installed:
            return self
        self._tracer_was_enabled = TRACER.enabled
        TRACER.sink = self
        TRACER.enable()
        AUDIT.attach(self)
        self._installed = True
        atexit.register(self._atexit_finalize)
        return self

    def _atexit_finalize(self) -> None:
        try:
            self.finalize()
        except Exception:  # pragma: no cover - best-effort at shutdown
            pass

    def flush(self) -> None:
        """Drain the queue and flush every stream to disk."""
        self._writer.flush()
        for handle in self._handles.values():
            try:
                handle.flush()
            except ValueError:  # pragma: no cover - already closed
                pass

    def finalize(self) -> Dict[str, Any]:
        """Detach, drain, render the derived artifacts, close the files.

        Returns the manifest document (also written to ``MANIFEST.json``):
        the artifact list plus the drop counters that tell a reader
        whether the streams are complete.
        """
        if self._finalized:
            return self._manifest()
        atexit.unregister(self._atexit_finalize)
        if self._installed:
            if AUDIT.sink is self:
                AUDIT.detach()
            if TRACER.sink is self:
                TRACER.sink = None
            if not self._tracer_was_enabled:
                TRACER.disable()
            self._installed = False

        snapshot = METRICS.snapshot()
        with open(
            os.path.join(self.directory, METRICS_JSON_FILE), "w", encoding="utf-8"
        ) as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        with open(
            os.path.join(self.directory, METRICS_PROM_FILE), "w", encoding="utf-8"
        ) as handle:
            handle.write(render_prometheus(snapshot))
        trace_doc = render_chrome_trace(TRACER.spans(), TRACER.events())
        with open(
            os.path.join(self.directory, CHROME_TRACE_FILE), "w", encoding="utf-8"
        ) as handle:
            json.dump(trace_doc, handle, indent=2, sort_keys=True)
            handle.write("\n")

        self._writer.close()
        for handle in self._handles.values():
            try:
                handle.flush()
                handle.close()
            except ValueError:  # pragma: no cover - already closed
                pass
        self._finalized = True
        manifest = self._manifest()
        with open(
            os.path.join(self.directory, MANIFEST_FILE), "w", encoding="utf-8"
        ) as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return manifest

    def _manifest(self) -> Dict[str, Any]:
        return {
            "directory": self.directory,
            "files": sorted(
                name
                for name in os.listdir(self.directory)
                if os.path.isfile(os.path.join(self.directory, name))
            ),
            "records_written": self._writer.written,
            "records_dropped": self._writer.dropped,
            "tracer_dropped_spans": TRACER.dropped_spans,
            "tracer_dropped_events": TRACER.dropped_events,
        }

    def __enter__(self) -> "TelemetryPipeline":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.finalize()


# ----------------------------------------------------------------------
# The operator report (``repro-olap report --telemetry DIR``)
# ----------------------------------------------------------------------


def _load_jsonl(path: str) -> List[Dict[str, Any]]:
    if not os.path.exists(path):
        return []
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def _rate(hits: float, misses: float) -> str:
    total = hits + misses
    return f"{hits / total:.1%}" if total else "n/a"


def render_report(directory: str) -> str:
    """A text report over one telemetry directory.

    Sections: per-decision-kind latency quantiles and cache hit rates
    (from ``audit.jsonl``), process-wide cache / resilience counters
    (from ``metrics.json``), and the top spans by total time (from
    ``spans.jsonl``).
    """
    if not os.path.isdir(directory):
        raise ReproError(f"telemetry directory {directory!r} does not exist")
    audit = _load_jsonl(os.path.join(directory, AUDIT_FILE))
    spans = _load_jsonl(os.path.join(directory, SPANS_FILE))
    metrics_path = os.path.join(directory, METRICS_JSON_FILE)
    snapshot: Dict[str, Any] = {}
    if os.path.exists(metrics_path):
        with open(metrics_path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)

    lines: List[str] = [f"telemetry report: {directory}"]

    lines.append("")
    lines.append("decisions (audit log):")
    if audit:
        by_kind: Dict[str, Dict[str, Any]] = {}
        for record in audit:
            row = by_kind.setdefault(
                record["kind"],
                {"count": 0, "hits": 0, "unknown": 0, "durations": []},
            )
            row["count"] += 1
            if record.get("cache_hit"):
                row["hits"] += 1
            if record.get("status") == "unknown":
                row["unknown"] += 1
            elif not record.get("cache_hit"):
                row["durations"].append(record.get("duration_ms", 0.0))
        header = (
            f"  {'kind':<14} {'count':>7} {'hit rate':>9} {'unknown':>8}"
            f" {'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9}"
        )
        lines.append(header)
        for kind, row in sorted(by_kind.items()):
            durations = row["durations"]
            p50 = percentile(durations, 0.50)
            p95 = percentile(durations, 0.95)
            p99 = percentile(durations, 0.99)
            lines.append(
                f"  {kind:<14} {row['count']:>7}"
                f" {_rate(row['hits'], row['count'] - row['hits']):>9}"
                f" {row['unknown']:>8}"
                + "".join(
                    f" {q:>9.3f}" if q is not None else f" {'n/a':>9}"
                    for q in (p50, p95, p99)
                )
            )
    else:
        lines.append("  (no audit records)")

    counters = snapshot.get("counters", {})
    if counters:
        lines.append("")
        lines.append("caches (process-wide metrics):")
        lines.append(
            "  decision cache  hit rate "
            + _rate(
                counters.get("decision_cache.hits", 0),
                counters.get("decision_cache.misses", 0),
            )
            + f"  (evictions {counters.get('decision_cache.evictions', 0)},"
            f" store failures {counters.get('decision_cache.store_failures', 0)})"
        )
        lines.append(
            "  edit survival   rekeyed "
            f"{counters.get('decision_cache.rekeyed', 0)} verdicts across "
            f"{counters.get('decision_cache.invalidations', 0)} invalidations"
            f"  (self-evictions {counters.get('decision_cache.self_evictions', 0)},"
            f" persisted loads {counters.get('cache_persist.loaded_entries', 0)})"
        )
        lines.append(
            "  circle cache    hit rate "
            + _rate(
                counters.get("circle_cache.hits", 0),
                counters.get("circle_cache.misses", 0),
            )
        )
        lines.append(
            "  compiled tier   artifact hit rate "
            + _rate(
                counters.get("compiled.artifact_hits", 0),
                counters.get("compiled.artifact_misses", 0),
            )
            + f"  (decisions {counters.get('compiled.decisions', 0)},"
            f" fallbacks {counters.get('compiled.fallbacks', 0)},"
            f" invalidations {counters.get('compiled.artifact_invalidations', 0)})"
        )
        lines.append("")
        lines.append("resilience:")
        lines.append(
            f"  retries {counters.get('resilience.retries', 0)}"
            f"  degraded {counters.get('resilience.degraded_sequential', 0)}"
            f"  unknown {counters.get('resilience.unknown_verdicts', 0)}"
            f"  breaker trips {counters.get('resilience.breaker_trips', 0)}"
            f"  open skips {counters.get('resilience.breaker_open_skips', 0)}"
        )
        lines.append(
            f"  telemetry dropped records "
            f"{counters.get('telemetry.dropped_records', 0)}"
        )

    if spans:
        totals: Dict[str, Dict[str, float]] = {}
        for span in spans:
            row = totals.setdefault(
                span["name"], {"count": 0.0, "total_ms": 0.0, "max_ms": 0.0}
            )
            duration = span.get("duration_ms") or 0.0
            row["count"] += 1
            row["total_ms"] += duration
            row["max_ms"] = max(row["max_ms"], duration)
        lines.append("")
        lines.append("top spans (by total time):")
        top = sorted(
            totals.items(), key=lambda kv: kv[1]["total_ms"], reverse=True
        )[:8]
        for name, row in top:
            lines.append(
                f"  {name:<28} count={row['count']:<7.0f}"
                f" total={row['total_ms']:>9.3f} ms max={row['max_ms']:.3f} ms"
            )
    return "\n".join(lines)
