"""Implication and satisfiability of dimension constraints (Section 4).

Three decision problems, all reduced to DIMSAT:

* **category satisfiability** - is there an instance with a member in a
  given category?  Decided directly by DIMSAT (Theorem 3).
* **implication** ``ds |= alpha`` - does every instance of the schema
  satisfy ``alpha``?  By Theorem 2 this holds iff the root of ``alpha`` is
  *unsatisfiable* in the schema extended with ``NOT alpha``.
* **schema audit** - which categories of a schema are unsatisfiable and
  could be dropped (the cleanup the paper motivates after Example 11)?

Implication also returns counterexamples: when ``ds |/= alpha``, the frozen
dimension witnessing satisfiability of the extended schema materializes
(via :meth:`FrozenDimension.to_instance`) into a concrete instance of
``ds`` violating ``alpha``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.constraints.ast import Node, Not, constraint_root
from repro.constraints.atoms import validate_constraint
from repro.constraints.parser import parse
from repro.core.budget import DecisionBudget
from repro.core.decisioncache import USE_DEFAULT_CACHE, DecisionCache, resolve_cache
from repro.core.dimsat import DimsatOptions, DimsatResult, dimsat
from repro.core.frozen import FrozenDimension
from repro.core.hierarchy import ALL, Category
from repro.core.instance import DimensionInstance
from repro.core.metrics import METRICS
from repro.core.schema import DimensionSchema
from repro.core.trace import TRACER
from repro.errors import ConstraintError

_M_DECISIONS = METRICS.counter("implication.decisions")


@dataclass
class ImplicationResult:
    """Outcome of an implication test.

    ``implied`` is the verdict; when false, ``counterexample`` holds a
    frozen dimension of ``(G, SIGMA | {NOT alpha})`` whose materialized
    instance satisfies the schema but violates ``alpha``.
    """

    implied: bool
    counterexample: Optional[FrozenDimension]
    dimsat_result: DimsatResult

    def counterexample_instance(
        self, schema: DimensionSchema
    ) -> Optional[DimensionInstance]:
        """The violating instance, or ``None`` when the constraint is
        implied."""
        if self.counterexample is None:
            return None
        return self.counterexample.to_instance(schema)


def is_category_satisfiable(
    schema: DimensionSchema,
    category: Category,
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
    budget: Optional[DecisionBudget] = None,
) -> bool:
    """Category satisfiability (Section 4), decided by DIMSAT.

    ``cache`` is a :class:`~repro.core.decisioncache.DecisionCache`
    memoizing the verdict by schema fingerprint; pass ``None`` to force a
    fresh search.  ``budget`` bounds the search
    (:class:`~repro.errors.BudgetExceeded` on exhaustion); an aborted
    decision is never cached.
    """
    resolved = resolve_cache(cache)
    if resolved is not None:
        return resolved.dimsat(schema, category, options, budget).satisfiable
    return dimsat(schema, category, options, budget).satisfiable


def implies(
    schema: DimensionSchema,
    constraint: object,
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
    budget: Optional[DecisionBudget] = None,
) -> ImplicationResult:
    """Decide ``ds |= alpha`` via Theorem 2.

    ``constraint`` may be an AST node or textual syntax.  Constraints
    rooted at ``All`` are rejected (Definition 3); a constant constraint
    needs at least one atom to carry a root, so plain ``true``/``false``
    are rejected as well.

    Results are memoized in ``cache`` (default: the process-wide
    :func:`~repro.core.decisioncache.default_decision_cache`) keyed by the
    schema fingerprint and the constraint's canonical text; implication is
    deterministic, so a cached result is bit-identical to a fresh one.
    Pass ``cache=None`` for the uncached path.  ``budget`` bounds the
    underlying DIMSAT search; a budget-aborted decision raises
    :class:`~repro.errors.BudgetExceeded` and leaves the cache untouched.

    >>> from repro.generators.location import location_schema
    >>> implies(location_schema(), "Store.City.Country").implied
    True
    """
    node: Node = parse(constraint) if isinstance(constraint, str) else constraint  # type: ignore[assignment]
    resolved = resolve_cache(cache)
    if resolved is not None:
        return resolved.implies(schema, node, options, budget)
    root = validate_constraint(schema.hierarchy, node)
    if root == ALL:  # pragma: no cover - validate_constraint already rejects
        raise ConstraintError("constraints rooted at All are not allowed")

    # The Theorem 2 reduction: ds |= alpha iff root(alpha) is
    # unsatisfiable in (G, SIGMA | {NOT alpha}).  The span wraps the
    # whole refutation search, so the nested dimsat.decide/dimsat.check
    # spans attribute its cost.
    with TRACER.span("implication.decide", root=root) as span:
        extended = schema.with_constraints([Not(node)])
        result = dimsat(extended, root, options, budget)
        span.set(implied=not result.satisfiable)
    _M_DECISIONS.inc()
    return ImplicationResult(
        implied=not result.satisfiable,
        counterexample=result.witness,
        dimsat_result=result,
    )


def implication_provenance(schema: DimensionSchema, constraint: object):
    """The dependency set of an implication verdict for ``constraint``.

    Theorem 2 reduces ``ds |= alpha`` to DIMSAT over ``(G, SIGMA | {NOT
    alpha})`` rooted at ``root(alpha)``; ``NOT alpha`` travels in the
    cache key, so the schema-side dependency is the upward closure of the
    root in ``G`` - widened by any category ``alpha`` itself mentions, so
    that dropping such a category (which would make a fresh decision
    reject the query) also invalidates the cached verdict.
    """
    from repro.core.provenance import VerdictProvenance, cone_provenance

    node: Node = parse(constraint) if isinstance(constraint, str) else constraint  # type: ignore[assignment]
    root = constraint_root(node)
    if root is None:
        return None
    from repro.core.provenance import mentioned_categories

    base = cone_provenance(schema, "implies", (root,))
    extra = mentioned_categories(node) - base.categories
    if not extra:
        return base
    return VerdictProvenance(
        kind=base.kind,
        categories=base.categories | extra,
        edges=base.edges,
        constraints=base.constraints,
        bottoms=base.bottoms,
    )


def is_implied(
    schema: DimensionSchema,
    constraint: object,
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
    budget: Optional[DecisionBudget] = None,
) -> bool:
    """Shorthand for ``implies(...).implied``."""
    return implies(schema, constraint, options, cache, budget).implied


def equivalent(
    schema: DimensionSchema,
    left: object,
    right: object,
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
    budget: Optional[DecisionBudget] = None,
) -> bool:
    """Whether two constraints are equivalent over every instance of the
    schema (mutual implication)."""
    left_node: Node = parse(left) if isinstance(left, str) else left  # type: ignore[assignment]
    right_node: Node = parse(right) if isinstance(right, str) else right  # type: ignore[assignment]
    from repro.constraints.ast import Iff

    both = Iff(left_node, right_node)
    return is_implied(schema, both, options, cache, budget)


def unsatisfiable_categories(
    schema: DimensionSchema,
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
) -> List[Category]:
    """Categories no instance of the schema can populate (Example 11).

    ``All`` is never reported (Proposition 1).  The paper recommends
    dropping these categories for a cleaner schema;
    :func:`prune_unsatisfiable` does so.
    """
    bad = []
    for category in sorted(schema.hierarchy.categories):
        if category == ALL:
            continue
        if not is_category_satisfiable(schema, category, options, cache):
            bad.append(category)
    return bad


def prune_unsatisfiable(
    schema: DimensionSchema,
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
) -> Tuple[DimensionSchema, List[Category]]:
    """Drop unsatisfiable categories from the schema.

    Constraints rooted at dropped categories are vacuous and removed;
    constraints rooted elsewhere are kept only if they do not mention a
    dropped category (a mentioned atom over a dropped category is constant
    false/true, and keeping it would leave dangling references).

    Returns the cleaned schema and the dropped categories.
    """
    dropped = unsatisfiable_categories(schema, options, cache)
    if not dropped:
        return schema, []
    hierarchy = schema.hierarchy
    for category in dropped:
        hierarchy = hierarchy.without_category(category)
    kept: List[Node] = []
    gone = set(dropped)
    for root, node in schema.constraints_with_roots():
        if root in gone:
            continue
        mentioned = set()
        for atom in node.atoms():
            mentioned.add(atom.root)
            for attribute in ("category", "target", "via"):
                value = getattr(atom, attribute, None)
                if value is not None:
                    mentioned.add(value)
            if hasattr(atom, "path"):
                mentioned.update(atom.path)
        if mentioned & gone:
            continue
        kept.append(node)
    return DimensionSchema(hierarchy, kept), dropped


def satisfiability_report(
    schema: DimensionSchema,
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
) -> Dict[Category, bool]:
    """Satisfiability verdict for every category of the schema."""
    return {
        category: (
            True
            if category == ALL
            else is_category_satisfiable(schema, category, options, cache)
        )
        for category in sorted(schema.hierarchy.categories)
    }
