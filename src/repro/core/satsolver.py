"""A stdlib-only incremental SAT solver for the compiled decision tier.

The compiler (:mod:`repro.core.compile`) turns a schema's decision space
into one CNF per root category; this module decides those CNFs.  It is a
conflict-driven DPLL solver in the MiniSat mold, sized for the instances
the compiler produces (hundreds to a few thousand variables):

* **two-watched-literal propagation** - unit propagation touches only
  the clauses whose watch just became false;
* **assumption-based incremental solving** - :meth:`Solver.solve` takes
  a list of assumption literals that hold for this call only.  The
  compiler guards each query's clauses behind a fresh activation
  variable, so one solver instance answers the whole ``SIGMA | {NOT
  alpha}`` implication family of a schema without ever retracting a
  clause;
* **first-UIP clause learning with persistence** - every conflict adds a
  learned clause implied by the clause database *alone* (assumptions
  enter learned clauses only as ordinary negated decision literals), so
  the lemmas survive across :meth:`~Solver.solve` calls and later
  queries on the same schema start from everything earlier queries
  proved.

Literals use the DIMACS convention: variables are positive integers and
``-v`` is the negation of ``v``.  The solver is deliberately
deterministic - no randomized restarts, no activity tie-breaking beyond
variable index - because compiled verdicts must be reproducible across
runs (the audit log replays them byte-for-byte).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["SatStats", "Solver"]


class SatError(ReproError):
    """An ill-formed literal or clause reached the solver."""


@dataclass
class SatStats:
    """Work counters for one :class:`Solver` across its lifetime."""

    solves: int = 0
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    learned_literals: int = 0
    restarts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "solves": self.solves,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "learned_clauses": self.learned_clauses,
            "learned_literals": self.learned_literals,
            "restarts": self.restarts,
        }


#: Conflicts before the first restart; the interval grows geometrically.
_RESTART_BASE = 128
_RESTART_FACTOR = 1.5

#: Activity rescale threshold (MiniSat's trick to keep floats bounded).
_ACTIVITY_CAP = 1e100
_ACTIVITY_DECAY = 1.0 / 0.95


class Solver:
    """An incremental CDCL SAT solver over integer literals.

    Clauses may be added at any time between :meth:`solve` calls (the
    solver resets to decision level zero first); clauses are never
    removed, which is exactly the monotonicity that makes learned
    clauses permanently sound.
    """

    def __init__(self) -> None:
        self.stats = SatStats()
        self._num_vars = 0
        # Indexed by variable (1-based); None = unassigned.
        self._value: List[Optional[bool]] = [None]
        self._level: List[int] = [0]
        self._reason: List[Optional[List[int]]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._watches: Dict[int, List[List[int]]] = {}
        self._clauses: List[List[int]] = []
        self._learned: List[List[int]] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._unsat = False
        self._model: List[Optional[bool]] = []
        self._var_inc = 1.0

    # ------------------------------------------------------------------
    # Variables and clauses
    # ------------------------------------------------------------------

    def new_var(self, phase: bool = False) -> int:
        """Allocate a fresh variable; ``phase`` seeds its saved polarity
        (the branch value it gets when nothing has been learned about it,
        which is how activation literals default to "off")."""
        self._num_vars += 1
        self._value.append(None)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(phase)
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    @property
    def num_learned(self) -> int:
        return len(self._learned)

    def _lit_value(self, lit: int) -> Optional[bool]:
        value = self._value[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add one clause (a disjunction of literals).

        Tautologies are dropped; duplicate literals are merged; literals
        already false at level zero are removed (level-zero facts are
        permanent).  An empty result marks the solver unsatisfiable.
        """
        self._backtrack(0)
        seen: Dict[int, bool] = {}
        lits: List[int] = []
        for lit in literals:
            if not isinstance(lit, int) or lit == 0 or abs(lit) > self._num_vars:
                raise SatError(f"invalid literal {lit!r}")
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            value = self._lit_value(lit)
            if value is True:
                return  # satisfied forever by a level-zero fact
            if value is False:
                continue  # permanently false literal
            seen[lit] = True
            lits.append(lit)
        if not lits:
            self._unsat = True
            return
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            if self._propagate() is not None:
                self._unsat = True
            return
        self._install(lits, learned=False)

    def _install(self, lits: List[int], learned: bool) -> None:
        (self._learned if learned else self._clauses).append(lits)
        self._watches.setdefault(lits[0], []).append(lits)
        self._watches.setdefault(lits[1], []).append(lits)

    # ------------------------------------------------------------------
    # Trail management
    # ------------------------------------------------------------------

    @property
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> None:
        var = abs(lit)
        self._value[var] = lit > 0
        self._level[var] = self._decision_level
        self._reason[var] = reason
        self._trail.append(lit)

    def _backtrack(self, level: int) -> None:
        if self._decision_level <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._phase[var] = self._value[var]  # type: ignore[assignment]
            self._value[var] = None
            self._reason[var] = None
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    # ------------------------------------------------------------------
    # Propagation (two watched literals)
    # ------------------------------------------------------------------

    def _propagate(self) -> Optional[List[int]]:
        """Propagate all enqueued literals; returns a conflicting clause
        or ``None``."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            false_lit = -lit
            watchers = self._watches.get(false_lit)
            if not watchers:
                continue
            kept: List[List[int]] = []
            index = 0
            total = len(watchers)
            while index < total:
                clause = watchers[index]
                index += 1
                self.stats.propagations += 1
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                other = clause[0]
                if self._lit_value(other) is True:
                    kept.append(clause)
                    continue
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause)
                        break
                else:
                    kept.append(clause)
                    if self._lit_value(other) is False:
                        kept.extend(watchers[index:])
                        self._watches[false_lit] = kept
                        return clause
                    self._enqueue(other, clause)
            self._watches[false_lit] = kept
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > _ACTIVITY_CAP:
            scale = 1.0 / _ACTIVITY_CAP
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= scale
            self._var_inc *= scale

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        """First-UIP learned clause and its backjump level.

        The learned clause is implied by the clause database alone, so it
        stays valid for every later :meth:`solve` regardless of which
        assumptions were active when it was derived.
        """
        level = self._decision_level
        seen = set()
        learnt: List[int] = []
        counter = 0
        index = len(self._trail) - 1
        p: Optional[int] = None
        reason: List[int] = conflict
        while True:
            for q in reason:
                if p is not None and q == p:
                    continue
                var = abs(q)
                if var in seen or self._level[var] == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level[var] >= level:
                    counter += 1
                else:
                    learnt.append(q)
            while abs(self._trail[index]) not in seen:
                index -= 1
            p = self._trail[index]
            index -= 1
            counter -= 1
            if counter == 0:
                break
            next_reason = self._reason[abs(p)]
            assert next_reason is not None  # only the UIP lacks a reason
            reason = next_reason
        learnt.insert(0, -p)
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest level; keep that literal watched.
        best = 1
        for k in range(2, len(learnt)):
            if self._level[abs(learnt[k])] > self._level[abs(learnt[best])]:
                best = k
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    def _learn(self, learnt: List[int]) -> None:
        """Install a freshly derived clause and assert its UIP literal."""
        self.stats.learned_clauses += 1
        self.stats.learned_literals += len(learnt)
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
        else:
            self._install(learnt, learned=True)
            self._enqueue(learnt[0], learnt)
        self._var_inc *= _ACTIVITY_DECAY

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _pick_branch(self) -> Optional[int]:
        best_var = 0
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if self._value[var] is None and self._activity[var] > best_activity:
                best_var = var
                best_activity = self._activity[var]
        if best_var == 0:
            return None
        return best_var if self._phase[best_var] else -best_var

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability of the clause database under the given
        assumption literals.

        Returns ``True`` and captures a :meth:`model` on success; returns
        ``False`` when no assignment extends the assumptions.  The solver
        stays usable either way - learned clauses persist, the trail is
        rewound to level zero.
        """
        self.stats.solves += 1
        assumed = list(assumptions)
        for lit in assumed:
            if not isinstance(lit, int) or lit == 0 or abs(lit) > self._num_vars:
                raise SatError(f"invalid assumption literal {lit!r}")
        if self._unsat:
            return False
        self._backtrack(0)
        conflicts_until_restart = _RESTART_BASE
        conflicts_this_run = 0
        try:
            while True:
                conflict = self._propagate()
                if conflict is not None:
                    self.stats.conflicts += 1
                    conflicts_this_run += 1
                    if self._decision_level == 0:
                        self._unsat = True
                        return False
                    learnt, back = self._analyze(conflict)
                    self._backtrack(back)
                    self._learn(learnt)
                    if conflicts_this_run >= conflicts_until_restart:
                        self.stats.restarts += 1
                        conflicts_this_run = 0
                        conflicts_until_restart = int(
                            conflicts_until_restart * _RESTART_FACTOR
                        )
                        self._backtrack(0)
                    continue
                if self._decision_level < len(assumed):
                    lit = assumed[self._decision_level]
                    value = self._lit_value(lit)
                    if value is False:
                        return False
                    # A dummy level for already-true assumptions keeps
                    # level index == assumption index aligned.
                    self._new_level()
                    if value is None:
                        self._enqueue(lit, None)
                    continue
                branch = self._pick_branch()
                if branch is None:
                    self._model = self._value[: self._num_vars + 1]
                    return True
                self.stats.decisions += 1
                self._new_level()
                self._enqueue(branch, None)
        finally:
            self._backtrack(0)

    def model(self) -> Dict[int, bool]:
        """The satisfying assignment captured by the last successful
        :meth:`solve` (variable -> truth value)."""
        return {
            var: bool(self._model[var]) for var in range(1, len(self._model))
        }

    def model_value(self, lit: int) -> bool:
        var = abs(lit)
        value = bool(self._model[var]) if var < len(self._model) else False
        return value if lit > 0 else not value

    def learned_clauses(self) -> List[Tuple[int, ...]]:
        """A snapshot of every persisted learned clause (diagnostics and
        artifact reporting)."""
        return [tuple(clause) for clause in self._learned]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Solver(vars={self._num_vars}, clauses={len(self._clauses)}, "
            f"learned={len(self._learned)}, conflicts={self.stats.conflicts})"
        )
