"""Schema normalization: redundancy removal and constraint strengthening.

Three maintenance operations a long-lived dimension schema needs, all
built on the implication engine:

* :func:`redundant_constraints` / :func:`minimize` - constraints already
  implied by the rest of SIGMA contribute nothing to the semantics, only
  to reasoning cost; the minimizer removes them greedily (front to back,
  so later duplicates fall before earlier originals are touched).
* :func:`implied_into_edges` - edges ``(c, c')`` for which ``c -> c'``
  is *implied* even though never declared.  Into constraints drive
  DIMSAT's strongest pruning (Section 5), so making them explicit speeds
  every subsequent query on the schema; :func:`strengthen_with_intos`
  does exactly that.  The transformation is semantics-preserving by
  construction: it only adds constraints that already hold in every
  instance.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro._types import ALL, Category, Edge
from repro.constraints.ast import Node, PathAtom
from repro.core.dimsat import DimsatOptions
from repro.core.implication import is_implied
from repro.core.schema import DimensionSchema


def redundant_constraints(
    schema: DimensionSchema, options: Optional[DimsatOptions] = None
) -> List[int]:
    """Indices of constraints implied by the *other* constraints.

    Note this is a per-constraint test against the rest of SIGMA; removing
    several "redundant" constraints at once is not always sound (two
    constraints can each imply the other), which is why :func:`minimize`
    removes them one at a time.
    """
    redundant: List[int] = []
    all_constraints = list(schema.constraints)
    for index, node in enumerate(all_constraints):
        rest = all_constraints[:index] + all_constraints[index + 1 :]
        reduced = DimensionSchema(schema.hierarchy, rest)
        if is_implied(reduced, node, options):
            redundant.append(index)
    return redundant


def minimize(
    schema: DimensionSchema, options: Optional[DimsatOptions] = None
) -> Tuple[DimensionSchema, List[Node]]:
    """A minimal equivalent subset of SIGMA (greedy, front to back).

    Returns the minimized schema and the constraints that were dropped.
    Every dropped constraint is implied by the surviving set, so
    ``I(minimized) == I(schema)``.
    """
    survivors = list(schema.constraints)
    dropped: List[Node] = []
    index = 0
    while index < len(survivors):
        candidate = survivors[index]
        rest = survivors[:index] + survivors[index + 1 :]
        reduced = DimensionSchema(schema.hierarchy, rest)
        if is_implied(reduced, candidate, options):
            dropped.append(candidate)
            survivors = rest
        else:
            index += 1
    return DimensionSchema(schema.hierarchy, survivors), dropped


def implied_into_edges(
    schema: DimensionSchema, options: Optional[DimsatOptions] = None
) -> List[Edge]:
    """Edges ``(c, c')`` whose into constraint is implied but not declared.

    Only satisfiable child categories are reported: over an unsatisfiable
    category every constraint is vacuously implied, and declaring intos
    there would be noise.
    """
    from repro.core.implication import is_category_satisfiable

    found: List[Edge] = []
    for child, parent in sorted(schema.hierarchy.edges):
        if child == ALL:
            continue
        if parent in schema.into_targets(child):
            continue
        if not is_category_satisfiable(schema, child, options):
            continue
        if is_implied(schema, PathAtom(child, (parent,)), options):
            found.append((child, parent))
    return found


def strengthen_with_intos(
    schema: DimensionSchema, options: Optional[DimsatOptions] = None
) -> Tuple[DimensionSchema, List[Edge]]:
    """Declare every implied into constraint explicitly.

    Semantics-preserving (the added constraints already hold everywhere)
    but performance-relevant: DIMSAT's EXPAND forces into edges instead of
    enumerating subsets around them (Section 5's heuristic), so downstream
    satisfiability, implication, and summarizability calls get faster on
    schemas whose intos were implicit.
    """
    edges = implied_into_edges(schema, options)
    if not edges:
        return schema, []
    extra = [PathAtom(child, (parent,)) for child, parent in edges]
    return schema.with_constraints(extra), edges


def schemas_equivalent(
    left: DimensionSchema,
    right: DimensionSchema,
    options: Optional[DimsatOptions] = None,
) -> bool:
    """Whether two schemas over the same hierarchy admit the same
    instances (mutual implication of their constraint sets).

    This is the correctness criterion for every transformation in this
    module: ``minimize`` and ``strengthen_with_intos`` must both produce
    schemas equivalent to their input.
    """
    if left.hierarchy != right.hierarchy:
        return False
    for node in right.constraints:
        if not is_implied(left, node, options):
            return False
    for node in left.constraints:
        if not is_implied(right, node, options):
            return False
    return True
