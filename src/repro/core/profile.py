"""Schema profiling: the complexity parameters of Proposition 4, measured.

``schema_profile`` summarizes a dimension schema along every axis the
paper's analysis names - ``N`` (categories), ``N_K`` (constants),
``N_SIGMA`` (constraint size) - plus the structural features that drive
DIMSAT's actual behaviour: heterogeneous categories (several parents),
shortcuts, cycles, into coverage ("heterogeneity as an exception" is
into coverage near 1).  ``reasoning_profile`` runs DIMSAT and reports the
realized search effort next to the theoretical raw spaces.

Exposed on the command line as ``repro-olap stats``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro._types import ALL, Category
from repro.constraints.ast import (
    ComparisonAtom,
    EqualityAtom,
    PathAtom,
    RollsUpAtom,
    ThroughAtom,
)
from repro.core.dimsat import DimsatOptions, dimsat
from repro.core.schema import DimensionSchema


@dataclass(frozen=True)
class SchemaProfile:
    """Structural and constraint metrics of one dimension schema."""

    categories: int                    # the paper's N (excluding All)
    edges: int
    bottom_categories: Tuple[Category, ...]
    shortcuts: int
    cyclic: bool
    heterogeneous_categories: Tuple[Category, ...]  # several parents
    constraints: int
    constraint_size: int               # the paper's N_SIGMA (node count)
    max_constants: int                 # the paper's N_K
    numeric_categories: Tuple[Category, ...]
    atom_counts: Dict[str, int]
    into_coverage: float               # fraction of edges pinned by intos

    def render(self) -> str:
        lines = [
            f"categories (N):        {self.categories}",
            f"edges:                 {self.edges}",
            f"bottom categories:     {', '.join(self.bottom_categories) or '-'}",
            f"shortcut edges:        {self.shortcuts}",
            f"cyclic:                {'yes' if self.cyclic else 'no'}",
            f"heterogeneous:         {', '.join(self.heterogeneous_categories) or '-'}",
            f"constraints:           {self.constraints}",
            f"constraint size (N_S): {self.constraint_size}",
            f"max constants (N_K):   {self.max_constants}",
            f"numeric categories:    {', '.join(self.numeric_categories) or '-'}",
            f"into coverage:         {self.into_coverage:.0%}",
            "atoms:                 "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.atom_counts.items())),
        ]
        return "\n".join(lines)


def schema_profile(schema: DimensionSchema) -> SchemaProfile:
    """Measure a schema along the Proposition 4 axes.

    >>> from repro.generators.location import location_schema
    >>> profile = schema_profile(location_schema())
    >>> profile.categories, profile.max_constants
    (6, 3)
    """
    hierarchy = schema.hierarchy
    atom_counts: Dict[str, int] = {}
    for node in schema.constraints:
        for atom in node.atoms():
            key = {
                PathAtom: "path",
                EqualityAtom: "equality",
                ComparisonAtom: "comparison",
                RollsUpAtom: "rolls-up",
                ThroughAtom: "through",
            }[type(atom)]
            atom_counts[key] = atom_counts.get(key, 0) + 1

    heterogeneous = tuple(
        sorted(
            c
            for c in hierarchy.categories
            if c != ALL and len(hierarchy.parents(c)) > 1
        )
    )
    non_all_edges = [e for e in hierarchy.edges]
    pinned = sum(
        1
        for child, parent in non_all_edges
        if parent in schema.into_targets(child)
    )
    numeric = tuple(
        sorted(c for c in hierarchy.categories if schema.is_numeric(c))
    )
    return SchemaProfile(
        categories=len(hierarchy.categories) - 1,
        edges=len(hierarchy.edges),
        bottom_categories=tuple(sorted(hierarchy.bottom_categories())),
        shortcuts=len(hierarchy.shortcuts()),
        cyclic=hierarchy.is_cyclic(),
        heterogeneous_categories=heterogeneous,
        constraints=len(schema.constraints),
        constraint_size=schema.size(),
        max_constants=schema.max_constants(),
        numeric_categories=numeric,
        atom_counts=atom_counts,
        into_coverage=pinned / len(non_all_edges) if non_all_edges else 0.0,
    )


@dataclass(frozen=True)
class ReasoningProfile:
    """Realized DIMSAT effort for one category, next to the raw spaces."""

    category: Category
    satisfiable: bool
    expand_calls: int
    check_calls: int
    assignments_tested: int
    raw_edge_subsets: int             # 2^|reachable edges|
    raw_assignment_space: int         # product of |domain| over categories

    def render(self) -> str:
        return (
            f"{self.category}: "
            f"{'satisfiable' if self.satisfiable else 'UNSATISFIABLE'}; "
            f"expand={self.expand_calls} check={self.check_calls} "
            f"assignments={self.assignments_tested} "
            f"(raw spaces: {self.raw_edge_subsets} subhierarchies x "
            f"{self.raw_assignment_space} assignments)"
        )


def reasoning_profile(
    schema: DimensionSchema,
    category: Category,
    options: Optional[DimsatOptions] = None,
) -> ReasoningProfile:
    """Run DIMSAT and compare its effort with the unpruned spaces."""
    hierarchy = schema.hierarchy
    result = dimsat(schema, category, options)
    reachable_edges = sum(
        1 for child, _parent in hierarchy.edges if hierarchy.reaches(category, child)
    )
    assignment_space = 1
    for other in hierarchy.categories:
        if other != ALL and hierarchy.reaches(category, other):
            assignment_space *= len(schema.constant_domain(other))
    return ReasoningProfile(
        category=category,
        satisfiable=result.satisfiable,
        expand_calls=result.stats.expand_calls,
        check_calls=result.stats.check_calls,
        assignments_tested=result.stats.assignments_tested,
        raw_edge_subsets=2 ** reachable_edges,
        raw_assignment_space=assignment_space,
    )


def profile_report(schema: DimensionSchema) -> str:
    """The full ``repro-olap stats`` text: schema metrics plus a reasoning
    profile for every bottom category."""
    parts: List[str] = [schema_profile(schema).render(), ""]
    for bottom in sorted(schema.hierarchy.bottom_categories()):
        parts.append(reasoning_profile(schema, bottom).render())
    return "\n".join(parts)
