"""Verdict provenance: what a decision proof actually depends on.

Every verdict the kernel produces - category satisfiability (Theorem 3),
constraint implication (Theorem 2), schema-level summarizability
(Theorem 1) - is a pure function of the dimension schema ``(G, SIGMA)``.
But each *individual* proof only ever consults a fraction of the schema:
DIMSAT rooted at ``c`` explores subhierarchies built from the categories
reachable from ``c`` and evaluates only ``SIGMA(ds, c)`` (the constraints
whose root is reachable from ``c``, Section 5).  This module captures
that dependency cone as a :class:`VerdictProvenance`, diffs two schema
versions into a :class:`SchemaDelta`, and decides - soundly - which
cached verdicts *survive* an edit unchanged.

Soundness argument (the invariant the invalidation property test pins):

* The DIMSAT search for root ``c`` is a function of the *restriction* of
  ``(G, SIGMA)`` to the upward closure of ``c``: the categories reachable
  from ``c``, the edges whose child endpoint is reachable from ``c``, and
  every constraint that mentions a category in that closure (mentioned
  constraints contribute ``Const_ds`` constants, order thresholds, and
  into-edges even when rooted elsewhere).  If an edit leaves that
  restriction untouched, the search - and hence the verdict, its witness,
  and its work counters - is byte-identical by construction.
* An added edge ``(x, y)`` can enter the closure only when ``x`` was
  already reachable from ``c`` (a path from ``c`` over the new edge must
  first reach ``x`` over old edges), so checking the *child* endpoint of
  every changed edge against the recorded category cone is exact.
* An added category arrives with its incident edges; the edge rule covers
  the only way it can become reachable.
* Theorem 2 reduces ``ds |= alpha`` to DIMSAT over ``(G, SIGMA | {NOT
  alpha})`` rooted at ``root(alpha)``; the query constraint travels in
  the cache key, so the dependency cone is the same upward closure taken
  in ``G``.
* Theorem 1 additionally quantifies over the hierarchy's bottom
  categories, so summarizability verdicts also record the bottom set and
  die whenever it changes.

This is the "unsat-core" of the decision at the granularity the edit
workload needs: a constraint edit in one branch of a wide hierarchy
leaves every other branch's verdicts provably untouched, and the
:class:`~repro.core.decisioncache.DecisionCache` re-keys them to the new
fingerprint instead of discarding them (``SchemaEditor`` in
:mod:`repro.olap.maintenance`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, Iterable, Optional, Set, Tuple

from repro._types import Category
from repro.constraints.ast import Node, constraint_root
from repro.constraints.printer import unparse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.schema import DimensionSchema

__all__ = [
    "SchemaDelta",
    "VerdictProvenance",
    "mentioned_categories",
    "provenance_for_key",
    "schema_delta",
]


def mentioned_categories(node: Node) -> FrozenSet[Category]:
    """Every category an atom of ``node`` refers to.

    This is the footprint through which a constraint can influence a
    decision it is not rooted in: equality atoms contribute
    ``Const_ds`` constants, comparison atoms contribute thresholds, and
    path atoms contribute into-edges - all keyed by the categories the
    atoms mention.
    """
    mentioned: Set[Category] = set()
    for atom in node.atoms():
        mentioned.add(atom.root)
        for attribute in ("category", "target", "via"):
            value = getattr(atom, attribute, None)
            if value is not None:
                mentioned.add(value)
        if hasattr(atom, "path"):
            mentioned.update(atom.path)
    return frozenset(mentioned)


@dataclass(frozen=True)
class SchemaDelta:
    """The structural difference between two schema versions.

    Constraint changes are tracked as canonical-text *sets* (a duplicate
    add or drop of a textually identical constraint is a semantic no-op
    even though it changes the fingerprint), and the union of their
    mentioned categories is precomputed because the survival test only
    needs the footprint, not the individual constraints.
    """

    added_categories: FrozenSet[Category]
    removed_categories: FrozenSet[Category]
    added_edges: FrozenSet[Tuple[Category, Category]]
    removed_edges: FrozenSet[Tuple[Category, Category]]
    added_constraints: FrozenSet[str]
    removed_constraints: FrozenSet[str]
    #: Union of :func:`mentioned_categories` over every added or removed
    #: constraint - the categories through which the constraint edit can
    #: influence other decisions.
    constraint_footprint: FrozenSet[Category]
    #: Child endpoints of every added or removed edge - the only side
    #: through which an edge change can enter a decision's upward cone.
    changed_edge_children: FrozenSet[Category]
    #: Whether the hierarchy's bottom-category set changed (Theorem 1
    #: quantifies over it, so summarizability verdicts cannot survive).
    bottoms_changed: bool

    @property
    def empty(self) -> bool:
        """A fingerprint-changing but semantically empty edit (e.g.
        adding a textual duplicate of an existing constraint)."""
        return not (
            self.added_categories
            or self.removed_categories
            or self.added_edges
            or self.removed_edges
            or self.added_constraints
            or self.removed_constraints
        )


def schema_delta(old: "DimensionSchema", new: "DimensionSchema") -> SchemaDelta:
    """Diff two schema versions into the sets :meth:`VerdictProvenance.
    survives` consults."""
    old_categories = old.hierarchy.categories
    new_categories = new.hierarchy.categories
    old_edges = frozenset(old.hierarchy.edges)
    new_edges = frozenset(new.hierarchy.edges)

    old_texts = {unparse(node): node for node in old.constraints}
    new_texts = {unparse(node): node for node in new.constraints}
    added_texts = frozenset(new_texts) - frozenset(old_texts)
    removed_texts = frozenset(old_texts) - frozenset(new_texts)

    footprint: Set[Category] = set()
    for text in added_texts:
        footprint |= mentioned_categories(new_texts[text])
    for text in removed_texts:
        footprint |= mentioned_categories(old_texts[text])

    added_edges = new_edges - old_edges
    removed_edges = old_edges - new_edges
    return SchemaDelta(
        added_categories=frozenset(new_categories - old_categories),
        removed_categories=frozenset(old_categories - new_categories),
        added_edges=added_edges,
        removed_edges=removed_edges,
        added_constraints=added_texts,
        removed_constraints=removed_texts,
        constraint_footprint=frozenset(footprint),
        changed_edge_children=frozenset(
            child for child, _parent in added_edges | removed_edges
        ),
        bottoms_changed=(
            old.hierarchy.bottom_categories() != new.hierarchy.bottom_categories()
        ),
    )


@dataclass(frozen=True)
class VerdictProvenance:
    """The dependency set of one cached verdict.

    ``categories`` is the upward closure of the decision's root(s) in the
    hierarchy the verdict was decided against; ``edges`` the edges whose
    child endpoint lies inside it; ``constraints`` the canonical texts of
    the constraints the proof consulted (``SIGMA(ds, c)``); ``bottoms``
    the hierarchy's bottom set for summarizability verdicts (Theorem 1
    quantifies over it), ``None`` otherwise.
    """

    kind: str
    categories: FrozenSet[Category]
    edges: FrozenSet[Tuple[Category, Category]] = frozenset()
    constraints: FrozenSet[str] = frozenset()
    bottoms: Optional[FrozenSet[Category]] = None

    def survives(self, delta: SchemaDelta) -> bool:
        """Whether a verdict with this dependency set is byte-identical
        under the edited schema (see the module docstring for why each
        rule is sound)."""
        if delta.empty:
            return True
        if self.bottoms is not None and delta.bottoms_changed:
            return False
        if delta.constraint_footprint & self.categories:
            return False
        if delta.changed_edge_children & self.categories:
            return False
        if delta.removed_categories & self.categories:
            return False
        return True


def cone_provenance(
    schema: "DimensionSchema",
    kind: str,
    roots: Iterable[Category],
    bottoms: Optional[FrozenSet[Category]] = None,
) -> VerdictProvenance:
    """The provenance of a decision whose search is confined to the
    upward closure of ``roots`` (every kernel decision is)."""
    hierarchy = schema.hierarchy
    categories: Set[Category] = set()
    for root in roots:
        categories.add(root)
        categories |= hierarchy.ancestors(root)
    cone = frozenset(categories)
    edges = frozenset(
        (child, parent) for child, parent in hierarchy.edges if child in cone
    )
    texts = frozenset(
        unparse(node)
        for root, node in schema.constraints_with_roots()
        if root in cone
    )
    return VerdictProvenance(
        kind=kind, categories=cone, edges=edges, constraints=texts, bottoms=bottoms
    )


def provenance_for_key(
    schema: "DimensionSchema", key: Tuple[object, ...]
) -> Optional[VerdictProvenance]:
    """Derive provenance from a canonical decision-cache key.

    Keys have the shape ``(kind, query..., options)`` shared by the
    sequential wrappers, the parallel engine, and the compiled tier, so
    every store site gets provenance without threading extra arguments.
    Unknown kinds return ``None`` (the entry is then invalidated on any
    edit - conservative, never wrong).
    """
    kind = key[0]
    if kind == "dimsat":
        from repro.core.dimsat import decision_provenance

        return decision_provenance(schema, key[1])  # type: ignore[arg-type]
    if kind == "implies":
        from repro.core.implication import implication_provenance

        return implication_provenance(schema, key[1])
    if kind == "summarizable":
        from repro.core.summarizability import summarizability_provenance

        return summarizability_provenance(schema, key[1], key[2])  # type: ignore[arg-type]
    return None
