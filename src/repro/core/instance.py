"""Dimension instances (Definition 2) and the (C1)-(C7) validator.

A dimension instance populates a hierarchy schema with members, a
child/parent relation ``<`` between members, and a ``Name`` attribute per
member.  Figure 2 of the paper lists seven conditions every instance must
satisfy; :meth:`DimensionInstance.violations` checks all of them and
:meth:`DimensionInstance.validate` raises on the first failure.

The conditions, by paper label:

* **(C1) connectivity** - member edges only along schema edges;
* **(C2) partitioning** (strictness) - a member reaches at most one member
  in any category;
* **(C3) disjointness** - member sets are pairwise disjoint;
* **(C4) top category** - ``MembSet[All] == {all}``;
* **(C5) shortcuts** - no member edge parallels a longer member path;
* **(C6) stratification** - no member is an ancestor of a member of its own
  category (this makes ``<`` acyclic);
* **(C7) up connectivity** - every member outside ``All`` has at least one
  parent.  (The formula printed in the paper transposes the edge direction;
  we follow the prose, see DESIGN.md.)
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro._types import ALL, Category, Member
from repro.core.hierarchy import HierarchySchema
from repro.errors import InstanceError, SchemaError

MemberEdge = Tuple[Member, Member]

#: The single member of the ``All`` category (condition C4).
TOP_MEMBER = "all"


class DimensionInstance:
    """A dimension instance ``d = (G, MembSet, <, Name)``.

    Parameters
    ----------
    hierarchy:
        The hierarchy schema ``G`` the instance is defined over.
    members:
        Mapping from member to its category.  The top member ``all`` is
        added automatically if absent.
    child_parent:
        The ``<`` relation as ``(child, parent)`` pairs between members.
        Edges from members of categories directly under ``All`` to ``all``
        are added automatically, which keeps example construction terse.
    names:
        Optional ``Name`` attribute per member; members not mentioned get
        their own identity as name (the convention of Figure 1).
    validate:
        When true (the default) the (C1)-(C7) validator runs at
        construction time and raises :class:`InstanceError` on violation.

    Examples
    --------
    >>> g = HierarchySchema(["Store", "City"], [("Store", "City"), ("City", "All")])
    >>> d = DimensionInstance(
    ...     g,
    ...     members={"s1": "Store", "toronto": "City"},
    ...     child_parent=[("s1", "toronto")],
    ... )
    >>> d.rolls_up_to_category("s1", "City")
    True
    """

    __slots__ = (
        "hierarchy",
        "_category_of",
        "_members_by_category",
        "_parents",
        "_children",
        "_names",
        "_ancestors_cache",
    )

    def __init__(
        self,
        hierarchy: HierarchySchema,
        members: Mapping[Member, Category],
        child_parent: Iterable[MemberEdge],
        names: Optional[Mapping[Member, object]] = None,
        validate: bool = True,
    ) -> None:
        self.hierarchy = hierarchy
        category_of: Dict[Member, Category] = dict(members)
        for member, category in category_of.items():
            if not hierarchy.has_category(category):
                raise SchemaError(
                    f"member {member!r} assigned to unknown category {category!r}"
                )
        category_of.setdefault(TOP_MEMBER, ALL)

        by_category: Dict[Category, Set[Member]] = {c: set() for c in hierarchy.categories}
        for member, category in category_of.items():
            by_category[category].add(member)

        parents: Dict[Member, Set[Member]] = {m: set() for m in category_of}
        children: Dict[Member, Set[Member]] = {m: set() for m in category_of}
        for child, parent in child_parent:
            if child not in category_of:
                raise SchemaError(f"edge ({child!r}, {parent!r}) mentions unknown member")
            if parent not in category_of:
                raise SchemaError(f"edge ({child!r}, {parent!r}) mentions unknown member")
            parents[child].add(parent)
            children[parent].add(child)

        # Auto-link parentless members of categories directly under All to
        # the top member.  Members with declared parents are left alone so
        # the auto-link can never manufacture a (C5) shortcut.
        for member, category in category_of.items():
            if category == ALL:
                continue
            if hierarchy.has_edge(category, ALL) and not parents[member]:
                parents[member].add(TOP_MEMBER)
                children[TOP_MEMBER].add(member)

        self._category_of = category_of
        self._members_by_category = {c: frozenset(ms) for c, ms in by_category.items()}
        self._parents = {m: frozenset(ps) for m, ps in parents.items()}
        self._children = {m: frozenset(cs) for m, cs in children.items()}
        base_names = {m: m for m in category_of}
        if names:
            base_names.update(names)
        self._names: Dict[Member, object] = base_names
        self._ancestors_cache: Dict[Member, FrozenSet[Member]] = {}

        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def members(self, category: Category) -> FrozenSet[Member]:
        """``MembSet(category)``."""
        if not self.hierarchy.has_category(category):
            raise SchemaError(f"unknown category {category!r}")
        return self._members_by_category[category]

    def all_members(self) -> Iterator[Member]:
        """Every member of the instance, across categories."""
        return iter(self._category_of)

    def category_of(self, member: Member) -> Category:
        """The category a member belongs to."""
        try:
            return self._category_of[member]
        except KeyError:
            raise SchemaError(f"unknown member {member!r}") from None

    def name(self, member: Member) -> object:
        """``Name(member)``."""
        try:
            return self._names[member]
        except KeyError:
            raise SchemaError(f"unknown member {member!r}") from None

    def parents_of(self, member: Member) -> FrozenSet[Member]:
        """Direct parents of a member under ``<``."""
        try:
            return self._parents[member]
        except KeyError:
            raise SchemaError(f"unknown member {member!r}") from None

    def children_of(self, member: Member) -> FrozenSet[Member]:
        """Direct children of a member under ``<``."""
        try:
            return self._children[member]
        except KeyError:
            raise SchemaError(f"unknown member {member!r}") from None

    def member_edges(self) -> Iterator[MemberEdge]:
        """Every ``(child, parent)`` pair of the ``<`` relation."""
        for child, parents in self._parents.items():
            for parent in parents:
                yield (child, parent)

    # ------------------------------------------------------------------
    # Rollup structure
    # ------------------------------------------------------------------

    def ancestors_of(self, member: Member) -> FrozenSet[Member]:
        """Members strictly above ``member`` (transitive closure of ``<``)."""
        cached = self._ancestors_cache.get(member)
        if cached is not None:
            return cached
        if member not in self._category_of:
            raise SchemaError(f"unknown member {member!r}")
        seen: Set[Member] = set()
        queue = deque(self._parents[member])
        while queue:
            node = queue.popleft()
            if node in seen:
                continue
            seen.add(node)
            queue.extend(self._parents[node])
        result = frozenset(seen)
        self._ancestors_cache[member] = result
        return result

    def leq(self, lower: Member, upper: Member) -> bool:
        """The rollup partial order: ``lower <= upper``."""
        return lower == upper or upper in self.ancestors_of(lower)

    def rolls_up_to_category(self, member: Member, category: Category) -> bool:
        """Whether ``member`` rolls up to some member of ``category``."""
        if self.category_of(member) == category:
            return True
        return any(self._category_of[a] == category for a in self.ancestors_of(member))

    def ancestor_in(self, member: Member, category: Category) -> Optional[Member]:
        """The unique member of ``category`` that ``member`` rolls up to,
        or ``None``.  Uniqueness is condition (C2)."""
        if self.category_of(member) == category:
            return member
        for ancestor in self.ancestors_of(member):
            if self._category_of[ancestor] == category:
                return ancestor
        return None

    def rollup_mapping(
        self, lower: Category, upper: Category
    ) -> Dict[Member, Member]:
        """The rollup mapping ``GAMMA_{lower}^{upper}`` as a dict.

        Only members of ``lower`` that actually reach ``upper`` appear, so in
        heterogeneous dimensions the mapping may be partial.
        """
        mapping: Dict[Member, Member] = {}
        for member in self.members(lower):
            target = self.ancestor_in(member, upper)
            if target is not None:
                mapping[member] = target
        return mapping

    def base_members(self) -> FrozenSet[Member]:
        """Members of the bottom categories (``MembSet_{c_b}``)."""
        bottoms = self.hierarchy.bottom_categories()
        return frozenset(
            m for c in bottoms for m in self._members_by_category.get(c, frozenset())
        )

    # ------------------------------------------------------------------
    # Validation: conditions (C1)-(C7) of Figure 2
    # ------------------------------------------------------------------

    def violations(self) -> List[InstanceError]:
        """Every violation of conditions (C1)-(C7), in condition order."""
        found: List[InstanceError] = []
        found.extend(self._check_c1_connectivity())
        found.extend(self._check_c3_disjointness())
        found.extend(self._check_c4_top())
        found.extend(self._check_c6_stratification())
        # (C2) and (C5) assume an acyclic member graph; only meaningful
        # once (C6) holds, but we still report what we can.
        found.extend(self._check_c2_partitioning())
        found.extend(self._check_c5_shortcuts())
        found.extend(self._check_c7_up_connectivity())
        return found

    def validate(self) -> None:
        """Raise :class:`InstanceError` for the first violated condition."""
        for violation in self.violations():
            raise violation

    def is_valid(self) -> bool:
        """Whether the instance satisfies all of (C1)-(C7)."""
        return not self.violations()

    def _check_c1_connectivity(self) -> Iterator[InstanceError]:
        for child, parent in self.member_edges():
            child_cat = self._category_of[child]
            parent_cat = self._category_of[parent]
            if not self.hierarchy.has_edge(child_cat, parent_cat):
                yield InstanceError(
                    "(C1) connectivity",
                    f"member edge {child!r} < {parent!r} has no schema edge "
                    f"{child_cat!r} -> {parent_cat!r}",
                )

    def _check_c2_partitioning(self) -> Iterator[InstanceError]:
        for member in self._category_of:
            seen_in_category: Dict[Category, Member] = {}
            for ancestor in self.ancestors_of(member):
                category = self._category_of[ancestor]
                other = seen_in_category.get(category)
                if other is not None and other != ancestor:
                    yield InstanceError(
                        "(C2) partitioning",
                        f"member {member!r} reaches both {other!r} and "
                        f"{ancestor!r} in category {category!r}",
                    )
                else:
                    seen_in_category[category] = ancestor

    def _check_c3_disjointness(self) -> Iterator[InstanceError]:
        # Membership is stored as a function member -> category, so overlap
        # can only arise if the same member was declared twice, which the
        # dict representation already collapses.  Nothing to report; the
        # check is kept for symmetry and documentation.
        return iter(())

    def _check_c4_top(self) -> Iterator[InstanceError]:
        top = self._members_by_category.get(ALL, frozenset())
        if top != frozenset({TOP_MEMBER}):
            yield InstanceError(
                "(C4) top category",
                f"MembSet[All] must be exactly {{'all'}}, found {sorted(map(repr, top))}",
            )

    def _check_c5_shortcuts(self) -> Iterator[InstanceError]:
        for child, parent in self.member_edges():
            for mid in self._parents[child]:
                if mid != parent and parent in self.ancestors_of(mid):
                    yield InstanceError(
                        "(C5) shortcuts",
                        f"edge {child!r} < {parent!r} parallels the longer "
                        f"path through {mid!r}",
                    )
                    break

    def _check_c6_stratification(self) -> Iterator[InstanceError]:
        for member in self._category_of:
            category = self._category_of[member]
            for ancestor in self.ancestors_of(member):
                if ancestor != member and self._category_of[ancestor] == category:
                    yield InstanceError(
                        "(C6) stratification",
                        f"member {member!r} has ancestor {ancestor!r} in its "
                        f"own category {category!r}",
                    )
            if member in self.ancestors_of(member):
                yield InstanceError(
                    "(C6) stratification",
                    f"member {member!r} lies on a cycle of '<'",
                )

    def _check_c7_up_connectivity(self) -> Iterator[InstanceError]:
        for member, category in self._category_of.items():
            if category == ALL:
                continue
            if not self._parents[member]:
                yield InstanceError(
                    "(C7) up connectivity",
                    f"member {member!r} of category {category!r} has no parent",
                )

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __contains__(self, member: Member) -> bool:
        return member in self._category_of

    def __len__(self) -> int:
        return len(self._category_of)

    def __repr__(self) -> str:
        return (
            f"DimensionInstance({len(self._category_of)} members over "
            f"{len(self.hierarchy.categories)} categories)"
        )
