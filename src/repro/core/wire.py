"""The decision server's wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding one request or response object.
Length-prefixing (over newline-delimiting) keeps the framing independent
of the payload - schema JSON, counterexample descriptions, and audit
provenance all travel verbatim without escaping concerns - and lets both
sides reject oversized frames *before* buffering them.

The same framing is implemented twice on purpose:

* **async** (:func:`read_frame_async` / :func:`write_frame_async`) for
  the :mod:`repro.core.server` event loop;
* **blocking** (:func:`read_frame` / :func:`write_frame`) over a plain
  ``socket.socket`` for :class:`repro.core.client.DecisionClient` and
  any non-asyncio caller (CI drivers, shell one-liners via
  ``repro-olap call``).

Requests are objects ``{"op": <str>, ...payload}``; responses are
objects ``{"op": <str>, "status": <str>, ...payload}`` where ``status``
is one of :data:`STATUSES`:

``ok``
    The operation succeeded; the payload carries its result.
``busy``
    Backpressure: the server is past its in-flight ceiling and refused
    to queue the decision.  The request was **not** evaluated - retrying
    later is always sound, and a BUSY can never stand in for a verdict.
``unknown``
    Every rung of the resilience ladder failed; the payload carries the
    per-attempt failure provenance.  Like BUSY, never a wrong verdict.
``budget-exceeded``
    The decision hit its :class:`~repro.core.budget.DecisionBudget`
    ceiling; a retry with a larger budget is sound (nothing was cached).
``error``
    A request-level problem (unknown op, unknown fingerprint, malformed
    constraint ...).  The payload carries ``error`` (message) and
    ``error_type``.

Protocol errors (torn frame, bad length, non-JSON payload) raise
:class:`WireError` - they poison the connection, not the server.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

from repro.errors import ReproError

__all__ = [
    "MAX_FRAME_BYTES",
    "STATUSES",
    "WireError",
    "decode_frame",
    "encode_frame",
    "error_response",
    "read_frame",
    "read_frame_async",
    "write_frame",
    "write_frame_async",
]

#: One frame's 4-byte big-endian unsigned length prefix.
_HEADER = struct.Struct(">I")

#: Ceiling on one frame's payload.  Generous for schema JSON (the
#: census-scale adversarial schemas serialize well under 1 MiB) while
#: keeping a corrupt or hostile length prefix from provoking a
#: multi-gigabyte allocation.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Every response status the protocol may carry.
STATUSES = ("ok", "busy", "unknown", "budget-exceeded", "error")


class WireError(ReproError):
    """A malformed frame: bad length prefix, truncated payload, payload
    that is not a JSON object, or a frame past :data:`MAX_FRAME_BYTES`."""


def encode_frame(document: Dict[str, Any]) -> bytes:
    """Serialize one request/response object into a framed byte string."""
    if not isinstance(document, dict):
        raise WireError(
            f"a wire frame must be a JSON object, not {type(document).__name__}"
        )
    payload = json.dumps(document, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Dict[str, Any]:
    """Parse one frame's payload bytes back into an object."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"frame payload is not valid JSON: {error}")
    if not isinstance(document, dict):
        raise WireError(
            f"frame payload must be a JSON object, "
            f"not {type(document).__name__}"
        )
    return document


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"announced frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling"
        )


# ----------------------------------------------------------------------
# Async framing (the server side)
# ----------------------------------------------------------------------


async def read_frame_async(reader: Any) -> Optional[Dict[str, Any]]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on a clean EOF at a frame boundary (the peer hung
    up between requests); raises :class:`WireError` when the connection
    dies mid-frame or the frame is malformed.
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireError(
            f"connection closed mid-header ({len(error.partial)} of "
            f"{_HEADER.size} bytes)"
        )
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise WireError(
            f"connection closed mid-frame ({len(error.partial)} of "
            f"{length} bytes)"
        )
    return decode_frame(payload)


async def write_frame_async(writer: Any, document: Dict[str, Any]) -> None:
    """Write one frame to an :class:`asyncio.StreamWriter` and drain."""
    writer.write(encode_frame(document))
    await writer.drain()


# ----------------------------------------------------------------------
# Blocking framing (the client side)
# ----------------------------------------------------------------------


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise on a mid-read hangup; returns
    ``b""`` only for a clean EOF before the first byte."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if remaining == n:
                return b""
            raise WireError(
                f"connection closed mid-read ({n - remaining} of {n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Blocking read of one frame; ``None`` on clean EOF at a boundary."""
    header = _recv_exactly(sock, _HEADER.size)
    if not header:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    payload = _recv_exactly(sock, length)
    if length and not payload:
        raise WireError("connection closed between header and payload")
    return decode_frame(payload)


def write_frame(sock: socket.socket, document: Dict[str, Any]) -> None:
    """Blocking write of one frame."""
    sock.sendall(encode_frame(document))


# ----------------------------------------------------------------------
# Response helpers
# ----------------------------------------------------------------------


def error_response(
    op: str, error: BaseException | str, **extra: Any
) -> Dict[str, Any]:
    """A typed ``status="error"`` response for one failed request."""
    if isinstance(error, BaseException):
        message, error_type = str(error), type(error).__name__
    else:
        message, error_type = error, "ProtocolError"
    response = {
        "op": op,
        "status": "error",
        "error": message,
        "error_type": error_type,
    }
    response.update(extra)
    return response
