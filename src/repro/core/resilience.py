"""A resilient decision service: retries, circuit breaking, degradation.

The :class:`~repro.core.parallel.ParallelDecisionEngine` answers heavy
traffic fast, but a worker crash, a hung pool, or a flaky cache store
takes a whole request (or batch) down with an exception.  Bertossi &
Milani's ontological multidimensional model treats inconsistency as a
first-class *answerable* state rather than a crash; this module gives
the decision stack the same property.  :class:`ResilientDecisionEngine`
wraps a parallel engine with a three-rung **degradation ladder**:

1. **parallel** - the wrapped engine (fan-out, batching, dedup), with
   per-decision retry: exponential backoff, deterministic jitter, a
   configurable attempt cap.  Transient failures (``OSError``, injected
   faults, broken pools) are retried; everything else is not.
2. **sequential** - the in-process sequential kernel with a fresh
   budget, also retried.  A :class:`CircuitBreaker` per schema
   fingerprint sends traffic straight here while the parallel rung
   keeps failing, and lets it back after a cooldown.
3. **UNKNOWN** - a typed verdict-free outcome
   (:class:`DecisionOutcome` with ``status="unknown"``, or a raised
   :class:`~repro.errors.DecisionUnavailable`) carrying the full failure
   provenance: one :class:`AttemptRecord` per failed attempt.

Two invariants, extending the budget layer's:

* **never wrong** - a verdict is either computed by a sound kernel path
  or not returned at all; no rung ever guesses;
* **caches stay verdict-clean** - a faulted or aborted decision never
  stores anything in the :class:`~repro.core.decisioncache.DecisionCache`
  (the fault-injection hammer in ``tests/test_resilience_differential.py``
  asserts exactly this).

With no faults present the resilient engine is observationally identical
to the plain engines - the differential suite proves verdict
byte-identity, and the bench gate caps the fault-free overhead at 5%.
"""

from __future__ import annotations

import threading
import time
import zlib
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro._types import Category
from repro.core.auditlog import AUDIT
from repro.core.dimsat import DimsatResult, dimsat
from repro.core.faults import FAULTS
from repro.core.implication import ImplicationResult, implies as run_implies
from repro.core.metrics import METRICS
from repro.core.parallel import (
    ParallelDecisionEngine,
    RequestKey,
    _decide,
    normalize_request,
)
from repro.core.schema import DimensionSchema
from repro.core.summarizability import is_summarizable_in_schema
from repro.core.trace import TRACER
from repro.errors import BudgetExceeded, DecisionUnavailable, ReproError

_M_RETRIES = METRICS.counter("resilience.retries")
_M_DEGRADED = METRICS.counter("resilience.degraded_sequential")
_M_UNKNOWN = METRICS.counter("resilience.unknown_verdicts")
_M_BREAKER_TRIPS = METRICS.counter("resilience.breaker_trips")
_M_BREAKER_SKIPS = METRICS.counter("resilience.breaker_open_skips")
_H_ATTEMPTS = METRICS.histogram("resilience.attempts_per_decision")

#: Failures worth retrying: transient OS-level trouble (which injected
#: worker faults subclass) and broken executors.  Everything else is
#: either a sound typed abort (``BudgetExceeded``, degradable but not
#: retryable - the same ceilings would abort again) or a caller bug
#: (``SchemaError`` etc., re-raised untouched).
RETRYABLE_ERRORS = (OSError, TimeoutError, BrokenExecutor)


def classify_failure(error: BaseException) -> str:
    """``"retryable"``, ``"degradable"``, or ``"fatal"`` for one failure."""
    if isinstance(error, BudgetExceeded):
        return "degradable"
    if isinstance(error, RETRYABLE_ERRORS):
        return "retryable"
    return "fatal"


@dataclass(frozen=True)
class AttemptRecord:
    """Provenance of one failed attempt at a decision."""

    #: ``"parallel"`` or ``"sequential"`` - the ladder rung that failed.
    rung: str
    #: 0-based attempt index within the rung.
    attempt: int
    #: Exception class name (``"InjectedFault"``, ``"BudgetExceeded"`` ...).
    error_type: str
    #: The exception's message.
    message: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rung": self.rung,
            "attempt": self.attempt,
            "error_type": self.error_type,
            "message": self.message,
        }


@dataclass(frozen=True)
class DecisionOutcome:
    """The resilient engine's answer to one decision request.

    ``status`` is ``"ok"`` (``verdict`` is the sound boolean) or
    ``"unknown"`` (``verdict`` is ``None``; every rung failed and
    ``failures`` says how).  ``rung`` names the ladder rung that produced
    the verdict; ``attempts`` counts every attempt made, successful or
    not.
    """

    verdict: Optional[bool]
    status: str
    rung: str
    attempts: int
    failures: Tuple[AttemptRecord, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def unknown(self) -> bool:
        return self.status == "unknown"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict,
            "status": self.status,
            "rung": self.rung,
            "attempts": self.attempts,
            "failures": [record.as_dict() for record in self.failures],
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``max_attempts`` caps attempts *per rung*.  The delay before retry
    ``n`` is ``base_delay_ms * 2**n`` (clamped to ``max_delay_ms``)
    stretched by up to ``jitter`` of itself; the stretch is a pure
    CRC32 function of ``(token, attempt)``, so a retry schedule replays
    identically - no wall-clock randomness in the decision path.
    """

    max_attempts: int = 3
    base_delay_ms: float = 1.0
    max_delay_ms: float = 50.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError("max_attempts must be at least 1")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ReproError("retry delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError("jitter must be in [0, 1]")

    def delay_ms(self, attempt: int, token: int = 0) -> float:
        base = min(self.max_delay_ms, self.base_delay_ms * (2**attempt))
        draw = zlib.crc32(f"{token}:{attempt}".encode("utf-8")) % 1000 / 1000.0
        return base * (1.0 + self.jitter * draw)


class CircuitBreaker:
    """A per-key (schema fingerprint) breaker over the parallel rung.

    ``failure_threshold`` consecutive parallel-rung failures for one key
    open the circuit: traffic for that key skips straight to the
    sequential rung (no pool churn on a schema that keeps crashing
    workers).  After ``cooldown_ms`` the circuit half-opens - the next
    decision probes the parallel rung again; success closes the circuit,
    failure re-opens it for another cooldown.
    """

    def __init__(
        self, failure_threshold: int = 5, cooldown_ms: float = 1000.0
    ) -> None:
        if failure_threshold < 1:
            raise ReproError("failure_threshold must be at least 1")
        if cooldown_ms < 0:
            raise ReproError("cooldown_ms must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self._lock = threading.Lock()
        #: key -> [consecutive failures, opened_at monotonic seconds or None]
        self._state: Dict[str, List[Optional[float]]] = {}

    def allow(self, key: str) -> bool:
        """May the parallel rung be tried for this key right now?"""
        with self._lock:
            state = self._state.get(key)
            if state is None or state[1] is None:
                return True
            if (time.monotonic() - state[1]) * 1000.0 >= self.cooldown_ms:
                # Half-open: let traffic probe the parallel rung; the next
                # record_success/record_failure settles the circuit.
                state[1] = None
                return True
            return False

    def record_success(self, key: str) -> None:
        with self._lock:
            self._state.pop(key, None)

    def record_failure(self, key: str) -> None:
        tripped = False
        with self._lock:
            state = self._state.setdefault(key, [0, None])
            state[0] += 1  # type: ignore[operator]
            if state[0] >= self.failure_threshold and state[1] is None:  # type: ignore[operator]
                state[1] = time.monotonic()
                tripped = True
        if tripped:
            _M_BREAKER_TRIPS.inc()

    def state(self, key: str) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` for one key."""
        with self._lock:
            state = self._state.get(key)
            if state is None:
                return "closed"
            if state[1] is None:
                return "closed"
            if (time.monotonic() - state[1]) * 1000.0 >= self.cooldown_ms:
                return "half-open"
            return "open"


@dataclass
class ResilienceStats:
    """Cumulative counters for one :class:`ResilientDecisionEngine`."""

    decisions: int = 0
    retries: int = 0
    degraded_sequential: int = 0
    unknown_verdicts: int = 0
    breaker_open_skips: int = 0


class ResilientDecisionEngine:
    """The degradation-ladder wrapper around a parallel decision engine.

    Parameters
    ----------
    engine:
        The wrapped :class:`~repro.core.parallel.ParallelDecisionEngine`;
        built from ``engine_kwargs`` when omitted.
    retry:
        The :class:`RetryPolicy` (attempt cap, backoff, jitter).
    breaker:
        The :class:`CircuitBreaker` guarding the parallel rung.
    engine_kwargs:
        Forwarded to :class:`ParallelDecisionEngine` when ``engine`` is
        ``None`` (``max_workers``, ``mode``, ``budget``, ``options``,
        ``cache``).

    The single-decision surface (:meth:`dimsat`, :meth:`implies`,
    :meth:`is_summarizable`, ...) mirrors the wrapped engine's but raises
    :class:`~repro.errors.DecisionUnavailable` instead of transient
    errors; the batch surface adds :meth:`decide_many_outcomes`, whose
    per-request :class:`DecisionOutcome` records are never exceptions -
    the form a service loop wants.
    """

    def __init__(
        self,
        engine: Optional[ParallelDecisionEngine] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        **engine_kwargs: Any,
    ) -> None:
        if engine is not None and engine_kwargs:
            raise ReproError(
                "pass either a prebuilt engine or engine kwargs, not both"
            )
        self.engine = engine if engine is not None else ParallelDecisionEngine(
            **engine_kwargs
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.stats = ResilienceStats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self, wait_for_tasks: bool = True) -> None:
        self.engine.shutdown(wait_for_tasks)

    def __enter__(self) -> "ResilientDecisionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # The ladder
    # ------------------------------------------------------------------

    def _sleep(self, rung_attempt: int, token: int) -> None:
        delay = self.retry.delay_ms(rung_attempt, token)
        if delay > 0:
            time.sleep(delay / 1000.0)

    def _run_rung(
        self,
        rung: str,
        run: Callable[[], Any],
        failures: List[AttemptRecord],
        token: int,
    ) -> Tuple[bool, Any, int]:
        """Run one ladder rung with retries.

        Returns ``(succeeded, value, attempts_made)``.  Fatal errors are
        re-raised; degradable errors (budget aborts) end the rung after
        one attempt - the same ceilings would abort again.
        """
        attempts = 0
        for attempt in range(self.retry.max_attempts):
            attempts += 1
            try:
                return True, run(), attempts
            except Exception as exc:
                kind = classify_failure(exc)
                if kind == "fatal":
                    raise
                failures.append(
                    AttemptRecord(rung, attempt, type(exc).__name__, str(exc))
                )
                if kind == "degradable":
                    break
                if attempt + 1 < self.retry.max_attempts:
                    self.stats.retries += 1
                    _M_RETRIES.inc()
                    if TRACER.enabled:
                        TRACER.event(
                            "resilience.retry",
                            rung=rung,
                            attempt=attempt,
                            error=type(exc).__name__,
                        )
                    self._sleep(attempt, token)
        return False, None, attempts

    def _ladder(
        self,
        schema: DimensionSchema,
        label: str,
        parallel_run: Callable[[], Any],
        sequential_run: Callable[[], Any],
        request: Optional[Tuple[Any, ...]] = None,
    ) -> Any:
        """Single-decision ladder; raises ``DecisionUnavailable`` at the
        bottom.  ``request`` is the canonical request key, recorded on the
        audit log when every rung fails (successful rungs are audited at
        the cache/kernel layer they answer from)."""
        self.stats.decisions += 1
        fingerprint = schema.fingerprint()
        token = zlib.crc32(f"{label}:{fingerprint}".encode("utf-8"))
        failures: List[AttemptRecord] = []
        total_attempts = 0
        with TRACER.span("resilience.decide", kind=label) as span:
            if self.breaker.allow(fingerprint):
                ok, value, attempts = self._run_rung(
                    "parallel", parallel_run, failures, token
                )
                total_attempts += attempts
                if ok:
                    self.breaker.record_success(fingerprint)
                    span.set(rung="parallel", attempts=total_attempts)
                    _H_ATTEMPTS.observe(total_attempts)
                    return value
                self.breaker.record_failure(fingerprint)
            else:
                self.stats.breaker_open_skips += 1
                _M_BREAKER_SKIPS.inc()
                failures.append(
                    AttemptRecord(
                        "parallel", 0, "CircuitOpen",
                        f"circuit open for schema {fingerprint[:12]}",
                    )
                )
            self.stats.degraded_sequential += 1
            _M_DEGRADED.inc()
            if TRACER.enabled:
                TRACER.event("resilience.degrade", kind=label, to="sequential")
            ok, value, attempts = self._run_rung(
                "sequential", sequential_run, failures, token ^ 0x5E0
            )
            total_attempts += attempts
            if ok:
                span.set(rung="sequential", attempts=total_attempts)
                _H_ATTEMPTS.observe(total_attempts)
                return value
            self.stats.unknown_verdicts += 1
            _M_UNKNOWN.inc()
            _H_ATTEMPTS.observe(total_attempts)
            span.set(rung="unknown", attempts=total_attempts)
            if TRACER.enabled:
                TRACER.event(
                    "resilience.unknown", kind=label, attempts=total_attempts
                )
            if AUDIT.enabled and request is not None:
                AUDIT.record_unknown(
                    schema, request, total_attempts, failures
                )
        raise DecisionUnavailable(
            f"{label} decision unavailable after {total_attempts} attempts "
            f"({', '.join(sorted({f.error_type for f in failures}))})",
            tuple(failures),
        )

    # ------------------------------------------------------------------
    # Single decisions (mirror the wrapped engine's surface)
    # ------------------------------------------------------------------

    def dimsat(self, schema: DimensionSchema, category: Category) -> DimsatResult:
        """Category satisfiability through the ladder."""

        def sequential() -> DimsatResult:
            FAULTS.worker()
            budget = self.engine._fresh_budget()
            if self.engine.cache is not None:
                return self.engine.cache.dimsat(
                    schema, category, self.engine.options, budget
                )
            return dimsat(schema, category, self.engine.options, budget)

        return self._ladder(
            schema,
            "dimsat",
            lambda: self.engine.dimsat(schema, category),
            sequential,
            request=("dimsat", category),
        )

    def is_satisfiable(self, schema: DimensionSchema, category: Category) -> bool:
        return self.dimsat(schema, category).satisfiable

    def implies(
        self, schema: DimensionSchema, constraint: object
    ) -> ImplicationResult:
        """``ds |= alpha`` through the ladder."""

        def sequential() -> ImplicationResult:
            FAULTS.worker()
            budget = self.engine._fresh_budget()
            if self.engine.cache is not None:
                return self.engine.cache.implies(
                    schema, constraint, self.engine.options, budget
                )
            return run_implies(
                schema, constraint, self.engine.options, cache=None, budget=budget
            )

        return self._ladder(
            schema,
            "implies",
            lambda: self.engine.implies(schema, constraint),
            sequential,
            request=normalize_request(("implies", constraint)),
        )

    def is_implied(self, schema: DimensionSchema, constraint: object) -> bool:
        return self.implies(schema, constraint).implied

    def is_summarizable(
        self,
        schema: DimensionSchema,
        target: Category,
        sources: Iterable[Category],
    ) -> bool:
        """Theorem 1 through the ladder."""
        source_key = tuple(sorted(set(sources)))

        def sequential() -> bool:
            FAULTS.worker()
            budget = self.engine._fresh_budget()
            return is_summarizable_in_schema(
                schema,
                target,
                source_key,
                self.engine.options,
                self.engine.cache,
                budget,
            )

        return self._ladder(
            schema,
            "summarizable",
            lambda: self.engine.is_summarizable(schema, target, source_key),
            sequential,
            request=("summarizable", target, source_key),
        )

    # ------------------------------------------------------------------
    # Batches
    # ------------------------------------------------------------------

    def decide(
        self, schema: DimensionSchema, request: Sequence[object]
    ) -> DecisionOutcome:
        """One request as a :class:`DecisionOutcome` (never raises for
        service faults)."""
        return self.decide_many_outcomes([(schema, request)])[0]

    def decide_many(
        self,
        items: Iterable[Tuple[DimensionSchema, Sequence[object]]],
    ) -> List[bool]:
        """Boolean verdicts aligned with the input order.

        Drop-in for :meth:`ParallelDecisionEngine.decide_many`; raises
        :class:`~repro.errors.DecisionUnavailable` when any decision
        degraded to UNKNOWN (use :meth:`decide_many_outcomes` to keep the
        rest of the batch).
        """
        outcomes = self.decide_many_outcomes(items)
        unknown = [o for o in outcomes if o.unknown]
        if unknown:
            raise DecisionUnavailable(
                f"{len(unknown)} of {len(outcomes)} batch decisions "
                "unavailable after retries and sequential fallback",
                unknown[0].failures,
            )
        return [o.verdict for o in outcomes]  # type: ignore[misc]

    def decide_many_outcomes(
        self,
        items: Iterable[Tuple[DimensionSchema, Sequence[object]]],
    ) -> List[DecisionOutcome]:
        """The batch ladder: every request gets an outcome, never an
        exception (service faults; malformed requests still raise).

        Round 1 sends the whole batch through the wrapped engine's
        :meth:`~repro.core.parallel.ParallelDecisionEngine.try_decide_many`
        (deduped, concurrent); failed requests are retried as shrinking
        sub-batches with backoff, then degraded to the sequential kernel,
        then - only if that also fails - answered UNKNOWN with their full
        failure provenance.
        """
        pairs = list(items)
        self.stats.decisions += len(pairs)
        outcomes: List[Optional[DecisionOutcome]] = [None] * len(pairs)
        failures: List[List[AttemptRecord]] = [[] for _ in pairs]
        attempts_made = [0] * len(pairs)

        # Partition by breaker state up front: open circuits go straight
        # to the sequential rung.
        parallel_pending: List[int] = []
        sequential_pending: List[int] = []
        for index, (schema, _request) in enumerate(pairs):
            if self.breaker.allow(schema.fingerprint()):
                parallel_pending.append(index)
            else:
                self.stats.breaker_open_skips += 1
                _M_BREAKER_SKIPS.inc()
                failures[index].append(
                    AttemptRecord(
                        "parallel", 0, "CircuitOpen",
                        f"circuit open for schema {schema.fingerprint()[:12]}",
                    )
                )
                sequential_pending.append(index)

        # Rung 1: the parallel engine, whole-batch, retried in rounds.
        for attempt in range(self.retry.max_attempts):
            if not parallel_pending:
                break
            sub = [pairs[i] for i in parallel_pending]
            results = self.engine.try_decide_many(sub)
            retry_round: List[int] = []
            for index, result in zip(parallel_pending, results):
                attempts_made[index] += 1
                schema = pairs[index][0]
                if not isinstance(result, BaseException):
                    outcomes[index] = DecisionOutcome(
                        verdict=bool(result),
                        status="ok",
                        rung="parallel",
                        attempts=attempts_made[index],
                        failures=tuple(failures[index]),
                    )
                    self.breaker.record_success(schema.fingerprint())
                    continue
                kind = classify_failure(result)
                if kind == "fatal":
                    raise result
                failures[index].append(
                    AttemptRecord(
                        "parallel", attempt, type(result).__name__, str(result)
                    )
                )
                self.breaker.record_failure(schema.fingerprint())
                if kind == "retryable" and attempt + 1 < self.retry.max_attempts:
                    retry_round.append(index)
                    self.stats.retries += 1
                    _M_RETRIES.inc()
                else:
                    sequential_pending.append(index)
            parallel_pending = retry_round
            if parallel_pending and attempt + 1 < self.retry.max_attempts:
                if TRACER.enabled:
                    TRACER.event(
                        "resilience.retry",
                        rung="parallel",
                        attempt=attempt,
                        requests=len(parallel_pending),
                    )
                self._sleep(attempt, token=attempt)

        # Rung 2: the sequential kernel, per request, retried.
        for index in sorted(sequential_pending):
            schema, request = pairs[index]
            key: RequestKey = normalize_request(request)
            self.stats.degraded_sequential += 1
            _M_DEGRADED.inc()
            if TRACER.enabled:
                TRACER.event(
                    "resilience.degrade", kind=str(key[0]), to="sequential"
                )
            token = zlib.crc32(repr(key).encode("utf-8"))
            ok, value, attempts = self._run_rung(
                "sequential",
                lambda: self._sequential_decide(schema, key),
                failures[index],
                token,
            )
            attempts_made[index] += attempts
            if ok:
                outcomes[index] = DecisionOutcome(
                    verdict=bool(value),
                    status="ok",
                    rung="sequential",
                    attempts=attempts_made[index],
                    failures=tuple(failures[index]),
                )
            else:
                self.stats.unknown_verdicts += 1
                _M_UNKNOWN.inc()
                if TRACER.enabled:
                    TRACER.event(
                        "resilience.unknown",
                        kind=str(key[0]),
                        attempts=attempts_made[index],
                    )
                if AUDIT.enabled:
                    AUDIT.record_unknown(
                        schema, key, attempts_made[index], failures[index]
                    )
                outcomes[index] = DecisionOutcome(
                    verdict=None,
                    status="unknown",
                    rung="unknown",
                    attempts=attempts_made[index],
                    failures=tuple(failures[index]),
                )

        for index, outcome in enumerate(outcomes):
            assert outcome is not None, f"request {index} left undecided"
            _H_ATTEMPTS.observe(outcome.attempts)
        return outcomes  # type: ignore[return-value]

    def _sequential_decide(self, schema: DimensionSchema, key: RequestKey) -> bool:
        """One normalized request on the in-process sequential kernel
        (the ladder's second rung; passes the worker fault checkpoint
        inside :func:`repro.core.parallel._decide`)."""
        budget = (
            self.engine.budget_template.fresh()
            if self.engine.budget_template is not None
            else None
        )
        return _decide(schema, key, self.engine.options, self.engine.cache, budget)

    def report(self) -> str:
        """A human-readable stats block."""
        lines = [
            "resilient engine:",
            f"  decisions            {self.stats.decisions}",
            f"  retries              {self.stats.retries}",
            f"  degraded sequential  {self.stats.degraded_sequential}",
            f"  unknown verdicts     {self.stats.unknown_verdicts}",
            f"  breaker open skips   {self.stats.breaker_open_skips}",
        ]
        return "\n".join(lines)
