"""Rollup helpers shared by constraint semantics and the OLAP engine.

The constraint language needs two member-level reachability notions:

* **direct chains** for path atoms: ``c_c1_..._cn`` holds at member ``x``
  when there is a chain ``x < x1 < ... < xn`` of *direct* child/parent edges
  with each ``xi`` in category ``ci``;
* **rollup** for equality and composed atoms: ``x`` reaches an ancestor in a
  category through the transitive closure of ``<``.

Both are provided here as free functions over
:class:`~repro.core.instance.DimensionInstance`, kept separate from the
instance class so the semantics module reads like the paper's definitions.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Set, Tuple

from repro.core.hierarchy import Category
from repro.core.instance import DimensionInstance, Member


def has_category_chain(
    instance: DimensionInstance, member: Member, categories: Sequence[Category]
) -> bool:
    """Whether a direct child/parent chain from ``member`` visits exactly
    the given categories, in order.

    This is the satisfaction condition of a path atom
    ``c_c1_..._cn`` (Definition 3) at a member of ``c``:
    ``categories`` is ``(c1, ..., cn)``.

    >>> # has_category_chain(d, "s1", ["City", "Province"]) checks
    >>> # exists city, province with s1 < city < province.
    """
    frontier: Set[Member] = {member}
    for category in categories:
        next_frontier: Set[Member] = set()
        for node in frontier:
            for parent in instance.parents_of(node):
                if instance.category_of(parent) == category:
                    next_frontier.add(parent)
        if not next_frontier:
            return False
        frontier = next_frontier
    return True


def chain_witness(
    instance: DimensionInstance, member: Member, categories: Sequence[Category]
) -> Tuple[Member, ...]:
    """One witness chain ``(x1, ..., xn)`` for a path atom, or ``()``.

    Useful in error messages and in tests that assert *why* a constraint
    holds.
    """
    path: List[Member] = []

    def walk(node: Member, index: int) -> bool:
        if index == len(categories):
            return True
        for parent in sorted(instance.parents_of(node), key=repr):
            if instance.category_of(parent) == categories[index]:
                path.append(parent)
                if walk(parent, index + 1):
                    return True
                path.pop()
        return False

    if walk(member, 0):
        return tuple(path)
    return ()


def category_paths_from(
    instance: DimensionInstance, member: Member
) -> Iterator[Tuple[Category, ...]]:
    """Yield the category sequence of every maximal direct chain from
    ``member`` (excluding the member's own category).

    In a valid instance all chains end at the top member, so each yielded
    tuple ends with ``All``.  The enumeration is the member-level analogue
    of the subhierarchies DIMSAT explores, and drives the structural
    summaries used by the heterogeneity audit example.
    """
    trail: List[Category] = []

    def walk(node: Member) -> Iterator[Tuple[Category, ...]]:
        parents = instance.parents_of(node)
        if not parents:
            if trail:
                yield tuple(trail)
            return
        for parent in sorted(parents, key=repr):
            trail.append(instance.category_of(parent))
            yield from walk(parent)
            trail.pop()

    yield from walk(member)


def reached_categories(
    instance: DimensionInstance, member: Member
) -> frozenset:
    """The set of categories ``member`` rolls up to (strictly above it)."""
    return frozenset(
        instance.category_of(a) for a in instance.ancestors_of(member)
    )
