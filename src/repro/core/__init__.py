"""Core dimension model: hierarchy schemas, instances, dimension schemas,
frozen dimensions, the DIMSAT algorithm, implication, and summarizability.
"""

from repro.core.budget import DecisionBudget, DecisionCancelled
from repro.core.builder import InstanceBuilder
from repro.core.decisioncache import (
    USE_DEFAULT_CACHE,
    DecisionCache,
    DecisionCacheStats,
    default_decision_cache,
)
from repro.core.explain import (
    MemberDiagnosis,
    SummarizabilityExplanation,
    explain_summarizability_in_instance,
    explain_summarizability_in_schema,
)
from repro.core.dimsat import (
    CircleCache,
    DimsatOptions,
    DimsatResult,
    DimsatStats,
    SearchBudgetExceeded,
    TraceEntry,
    circle,
    circle_cache,
    circle_node,
    dimsat,
    enumerate_frozen_dimensions,
    induced_frozen_dimensions,
    reduced_constraints,
    satisfying_assignments,
)
from repro.core.frozen import (
    FrozenDimension,
    Subhierarchy,
    phi,
    subhierarchy_from_edges,
)
from repro.core.hierarchy import ALL, Category, Edge, HierarchySchema
from repro.core.implication import (
    ImplicationResult,
    equivalent,
    implies,
    is_category_satisfiable,
    is_implied,
    prune_unsatisfiable,
    satisfiability_report,
    unsatisfiable_categories,
)
from repro.core.instance import TOP_MEMBER, DimensionInstance, Member
from repro.core.metrics import (
    METRICS,
    MetricsRegistry,
    emit_metrics,
    metrics_registry,
)
from repro.core.parallel import EngineStats, ParallelDecisionEngine, normalize_request
from repro.core.trace import TRACER, Tracer, tracer, tracing
from repro.core.normalize import (
    implied_into_edges,
    minimize,
    redundant_constraints,
    schemas_equivalent,
    strengthen_with_intos,
)
from repro.core.profile import (
    ReasoningProfile,
    SchemaProfile,
    profile_report,
    reasoning_profile,
    schema_profile,
)
from repro.core.schema import NK, DimensionSchema
from repro.core.summarizability import (
    is_summarizable_in_instance,
    is_summarizable_in_schema,
    summarizability_constraint,
    summarizability_constraints,
    summarizability_matrix,
    summarizable_sets,
)

__all__ = [
    "ALL",
    "Category",
    "CircleCache",
    "DecisionBudget",
    "DecisionCache",
    "DecisionCacheStats",
    "DecisionCancelled",
    "DimensionInstance",
    "DimensionSchema",
    "DimsatOptions",
    "DimsatResult",
    "DimsatStats",
    "Edge",
    "EngineStats",
    "FrozenDimension",
    "HierarchySchema",
    "ImplicationResult",
    "InstanceBuilder",
    "METRICS",
    "Member",
    "MemberDiagnosis",
    "MetricsRegistry",
    "SummarizabilityExplanation",
    "NK",
    "ParallelDecisionEngine",
    "ReasoningProfile",
    "SchemaProfile",
    "SearchBudgetExceeded",
    "Subhierarchy",
    "TOP_MEMBER",
    "TRACER",
    "TraceEntry",
    "Tracer",
    "USE_DEFAULT_CACHE",
    "circle",
    "circle_cache",
    "circle_node",
    "default_decision_cache",
    "dimsat",
    "emit_metrics",
    "enumerate_frozen_dimensions",
    "equivalent",
    "explain_summarizability_in_instance",
    "explain_summarizability_in_schema",
    "implied_into_edges",
    "implies",
    "induced_frozen_dimensions",
    "is_category_satisfiable",
    "is_implied",
    "is_summarizable_in_instance",
    "is_summarizable_in_schema",
    "metrics_registry",
    "minimize",
    "normalize_request",
    "phi",
    "redundant_constraints",
    "prune_unsatisfiable",
    "reduced_constraints",
    "satisfiability_report",
    "profile_report",
    "reasoning_profile",
    "satisfying_assignments",
    "schema_profile",
    "schemas_equivalent",
    "strengthen_with_intos",
    "subhierarchy_from_edges",
    "summarizability_constraint",
    "summarizability_constraints",
    "summarizability_matrix",
    "summarizable_sets",
    "tracer",
    "tracing",
    "unsatisfiable_categories",
]
