"""A blocking client for the decision server.

:class:`DecisionClient` speaks the :mod:`repro.core.wire` protocol over
one plain TCP connection - requests are serial per connection, so a
caller that wants concurrency opens one client per thread (each server
connection multiplexes independently).

Two calling surfaces:

* :meth:`call` - one frame out, one frame back, verbatim.  Returns the
  raw response document whatever its ``status``; the caller owns the
  typed-status discipline (a ``busy`` or ``unknown`` is data, not an
  exception, because neither is ever a wrong verdict).
* :meth:`request` - :meth:`call` plus bounded retry on ``busy`` with
  linear backoff, which is the polite reaction to typed backpressure.

Convenience wrappers (:meth:`load_schema`, :meth:`decide`, ...) shape
the request documents so callers don't hand-build protocol dicts.
``repro-olap call`` is a thin CLI skin over this class.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.schema import DimensionSchema
from repro.core.wire import WireError, read_frame, write_frame
from repro.errors import ReproError

__all__ = ["DecisionClient", "ServerClosed"]


class ServerClosed(ReproError):
    """The server hung up (cleanly or mid-frame) during a call."""


class DecisionClient:
    """One blocking connection to a :class:`~repro.core.server.DecisionServer`.

    Parameters
    ----------
    host, port:
        The server's bind address.
    timeout:
        Per-socket-operation timeout in seconds.
    busy_retries:
        How many times :meth:`request` re-sends after a ``busy``.
    busy_backoff_s:
        Sleep before busy retry ``n`` is ``busy_backoff_s * (n + 1)``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        busy_retries: int = 20,
        busy_backoff_s: float = 0.02,
    ) -> None:
        self.host = host
        self.port = port
        self.busy_retries = busy_retries
        self.busy_backoff_s = busy_backoff_s
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def __enter__(self) -> "DecisionClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The two calling surfaces
    # ------------------------------------------------------------------

    def call(self, op: str, **payload: Any) -> Dict[str, Any]:
        """One round trip; returns the response document verbatim."""
        if self._closed:
            raise ServerClosed("client already closed")
        document = {"op": op, **payload}
        try:
            write_frame(self._sock, document)
            response = read_frame(self._sock)
        except (ConnectionError, socket.timeout, OSError) as error:
            raise ServerClosed(f"server connection failed: {error}")
        if response is None:
            raise ServerClosed("server closed the connection")
        return response

    def request(self, op: str, **payload: Any) -> Dict[str, Any]:
        """:meth:`call`, retrying typed ``busy`` responses with backoff.

        A BUSY means the request was *not evaluated*, so re-sending is
        always sound.  After ``busy_retries`` exhausted attempts the
        last busy response is returned - still typed, still not a
        verdict - so callers can surface saturation instead of looping
        forever.
        """
        response = self.call(op, **payload)
        for attempt in range(self.busy_retries):
            if response.get("status") != "busy":
                return response
            time.sleep(self.busy_backoff_s * (attempt + 1))
            response = self.call(op, **payload)
        return response

    # ------------------------------------------------------------------
    # Convenience wrappers (one per wire op)
    # ------------------------------------------------------------------

    def load_schema(self, schema: Union[DimensionSchema, str]) -> str:
        """Register a schema (object or JSON text); returns its
        fingerprint, raising on a non-ok response."""
        if isinstance(schema, DimensionSchema):
            from repro.io.json_io import schema_to_json

            text = schema_to_json(schema)
        else:
            text = schema
        response = self.request("load-schema", schema_json=text)
        if response.get("status") != "ok":
            raise ReproError(
                f"load-schema failed: {response.get('error', response)}"
            )
        return response["fingerprint"]

    def decide(
        self, fingerprint: str, request: Sequence[object]
    ) -> Dict[str, Any]:
        return self.request(
            "decide",
            fingerprint=fingerprint,
            request=[
                list(part) if isinstance(part, tuple) else part
                for part in request
            ],
        )

    def implies(self, fingerprint: str, constraint: str) -> Dict[str, Any]:
        return self.request(
            "implies", fingerprint=fingerprint, constraint=constraint
        )

    def summarizable(
        self, fingerprint: str, target: str, sources: Sequence[str]
    ) -> Dict[str, Any]:
        return self.request(
            "summarizable",
            fingerprint=fingerprint,
            target=target,
            sources=list(sources),
        )

    def navigate(
        self,
        fingerprint: str,
        target: str,
        materialized: Sequence[str],
        max_sources: int = 3,
    ) -> Dict[str, Any]:
        return self.request(
            "navigate",
            fingerprint=fingerprint,
            target=target,
            materialized=list(materialized),
            max_sources=max_sources,
        )

    def edit(self, fingerprint: str, action: str, **args: Any) -> Dict[str, Any]:
        return self.request(
            "edit", fingerprint=fingerprint, action=action, **args
        )

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop gracefully; returns its ack."""
        return self.call("shutdown")
