"""Human-readable explanations for reasoning verdicts.

A bare ``False`` from a summarizability or implication test tells a
designer nothing; the minimal-model machinery knows much more.  This
module packages it:

* which bottom category's Theorem 1 constraint failed;
* whether facts would be *lost* (no source category on the rollup path)
  or *double counted* (several source categories on it);
* the concrete witness - violating members at the instance level, a
  frozen dimension (materializable to a full counterexample instance) at
  the schema level.

Rendered explanations power the ``repro-olap explain`` subcommand and the
examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro._types import Category, Member
from repro.constraints.ast import Node, ThroughAtom
from repro.constraints.semantics import satisfies_at
from repro.core.dimsat import DimsatOptions
from repro.core.frozen import FrozenDimension
from repro.core.implication import implies
from repro.core.instance import DimensionInstance
from repro.core.schema import DimensionSchema
from repro.core.summarizability import summarizability_constraints


@dataclass(frozen=True)
class MemberDiagnosis:
    """Why one base member breaks the summarizability condition."""

    member: Member
    sources_on_path: Tuple[Category, ...]

    @property
    def kind(self) -> str:
        """``"lost"`` (no source on its path) or ``"double-counted"``."""
        return "lost" if not self.sources_on_path else "double-counted"

    def render(self, target: Category) -> str:
        if not self.sources_on_path:
            return (
                f"member {self.member!r} reaches {target!r} through none of "
                f"the source categories: its facts would be LOST"
            )
        through = ", ".join(self.sources_on_path)
        return (
            f"member {self.member!r} reaches {target!r} through "
            f"{through}: its facts would be DOUBLE COUNTED"
        )


@dataclass(frozen=True)
class SummarizabilityExplanation:
    """A verdict plus its evidence."""

    target: Category
    sources: Tuple[Category, ...]
    summarizable: bool
    level: str  # "instance" or "schema"
    diagnoses: Tuple[MemberDiagnosis, ...] = ()
    counterexample: Optional[FrozenDimension] = None

    def render(self) -> str:
        head = (
            f"{self.target} is {'summarizable' if self.summarizable else 'NOT summarizable'} "
            f"from {{{', '.join(self.sources)}}} at the {self.level} level"
        )
        lines = [head]
        for diagnosis in self.diagnoses:
            lines.append(f"  - {diagnosis.render(self.target)}")
        if self.counterexample is not None:
            lines.append(
                f"  - counterexample shape: {self.counterexample.describe()}"
            )
        return "\n".join(lines)


def _diagnose_member(
    instance: DimensionInstance,
    bottom: Category,
    member: Member,
    target: Category,
    sources: Sequence[Category],
) -> Optional[MemberDiagnosis]:
    if not instance.rolls_up_to_category(member, target):
        return None  # vacuous: the constraint does not bind this member
    on_path = tuple(
        source
        for source in sorted(sources)
        if satisfies_at(instance, member, ThroughAtom(bottom, source, target))
    )
    if len(on_path) == 1:
        return None  # exactly one: this member is fine
    return MemberDiagnosis(member, on_path)


def explain_summarizability_in_instance(
    instance: DimensionInstance,
    target: Category,
    sources: Sequence[Category],
    max_diagnoses: int = 10,
) -> SummarizabilityExplanation:
    """Instance-level verdict with per-member diagnoses.

    >>> from repro.generators.location import location_instance
    >>> e = explain_summarizability_in_instance(
    ...     location_instance(), "Country", ["State", "Province"])
    >>> e.summarizable
    False
    >>> e.diagnoses[0].member
    's5'
    """
    sources = tuple(sorted(set(sources)))
    diagnoses: List[MemberDiagnosis] = []
    for bottom, _node in summarizability_constraints(
        instance.hierarchy, target, sources
    ):
        for member in sorted(instance.members(bottom), key=repr):
            diagnosis = _diagnose_member(
                instance, bottom, member, target, sources
            )
            if diagnosis is not None:
                diagnoses.append(diagnosis)
                if len(diagnoses) >= max_diagnoses:
                    break
        if len(diagnoses) >= max_diagnoses:
            break
    return SummarizabilityExplanation(
        target=target,
        sources=sources,
        summarizable=not diagnoses,
        level="instance",
        diagnoses=tuple(diagnoses),
    )


def explain_summarizability_in_schema(
    schema: DimensionSchema,
    target: Category,
    sources: Sequence[Category],
    options: Optional[DimsatOptions] = None,
) -> SummarizabilityExplanation:
    """Schema-level verdict; on failure, the counterexample frozen
    dimension is materialized and diagnosed like data."""
    sources = tuple(sorted(set(sources)))
    for bottom, node in summarizability_constraints(
        schema.hierarchy, target, sources
    ):
        if bottom == "All":
            continue
        result = implies(schema, node, options)
        if result.implied:
            continue
        witness = result.counterexample
        diagnoses: Tuple[MemberDiagnosis, ...] = ()
        if witness is not None:
            instance = witness.to_instance(schema)
            found = _diagnose_member(
                instance,
                bottom,
                next(iter(instance.members(bottom))),
                target,
                sources,
            )
            if found is not None:
                diagnoses = (found,)
        return SummarizabilityExplanation(
            target=target,
            sources=sources,
            summarizable=False,
            level="schema",
            diagnoses=diagnoses,
            counterexample=witness,
        )
    return SummarizabilityExplanation(
        target=target,
        sources=sources,
        summarizable=True,
        level="schema",
    )
