"""Metamorphic soak harness for the decision stack.

The correctness gates so far are point-in-time: one decision, one
schema, one engine.  This module drives the whole stack - the
:class:`~repro.core.resilience.ResilientDecisionEngine` over the
sequential, parallel, or compiled engine - for a configurable duration
of mixed decide/navigate/edit traffic drawn from the adversarial corpus
(:mod:`repro.generators.adversarial`), optionally under injected faults,
and checks **metamorphic invariants** on every step instead of fixed
expected values:

* **implied-constraint stability** - adding a constraint the schema
  already implies (``alpha or beta`` for ``alpha`` in SIGMA) never flips
  any dimsat/implication/summarizability verdict;
* **summarizable aggregates** (Definition 6) - when the oracle proves
  ``target`` summarizable from ``sources``, the directly-computed cube
  view equals the recombined one on a concrete fact table;
* **homogenization preserves aggregates** - after null-padding
  (:func:`~repro.baselines.homogenize.homogenize`), real-member cells
  are unchanged and the padded instance's single-source recombination
  matches its direct view (rollup functions are total in a homogeneous
  instance);
* **compiled == sequential** - the compiled tier's verdicts match the
  interpreted kernel's, cross-checked on a cadence regardless of which
  engine serves the traffic;
* **cache stays verdict-clean** - after every
  :class:`~repro.olap.maintenance.SchemaEditor` edit, the engine's
  verdict on the new schema matches a fresh uncached sequential run.

Ground truth comes from direct sequential kernel calls with
``cache=None``: those paths carry no fault-injection sites and bypass
the :class:`~repro.core.decisioncache.DecisionCache`, so the oracle is
immune to the faults being injected into the engine under test and its
calls do not pollute the audit log the soak's own traffic produces.
Engine verdicts are compared against the oracle on every decision -
**wrong is a failure, UNKNOWN is not** (the resilience contract).

Every violation is recorded with full provenance; schema-level
falsifiers are shrunk with
:func:`~repro.generators.random_schema.shrink_schema` and written as
``repro-olap`` loadable files so they can be pinned under
``tests/regressions/`` like the seed-880 homogenize bug.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro._types import Category
from repro.baselines.homogenize import homogenize, is_null_member
from repro.constraints.ast import Node
from repro.constraints.printer import unparse
from repro.core.budget import DecisionBudget
from repro.core.compile import (
    CompilationError,
    CompiledArtifactStore,
    CompiledDecisionEngine,
)
from repro.core.dimsat import dimsat
from repro.core.implication import implies as run_implies
from repro.core.instance import DimensionInstance
from repro.core.parallel import ParallelDecisionEngine
from repro.core.resilience import ResilientDecisionEngine, RetryPolicy
from repro.core.schema import DimensionSchema
from repro.core.summarizability import is_summarizable_in_schema
from repro.errors import ReproError
from repro.generators.adversarial import AdversarialCase, adversarial_corpus
from repro.generators.random_schema import shrink_schema, write_falsifier
from repro.generators.workloads import mixed_trace, random_fact_table
from repro.olap.aggregates import SUM
from repro.olap.cubeview import CubeView, cube_view, recombine, views_equal
from repro.olap.facttable import FactTable
from repro.olap.maintenance import SchemaEditor

#: The engines the soak harness can put behind the resilience ladder.
SOAK_ENGINES = ("compiled", "parallel", "sequential")


# ----------------------------------------------------------------------
# Configuration and report types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SoakConfig:
    """Knobs of one soak run.

    ``seconds`` is the wall-clock target; ``max_steps`` (when set) caps
    the run regardless of time, which is what the tests use for
    determinism.  Every case gets at least ``min_passes`` operations even
    if the clock has already expired, so short runs still exercise every
    generator family.
    """

    engine: str = "compiled"
    seconds: float = 5.0
    max_steps: Optional[int] = None
    min_passes: int = 1
    seed: int = 0
    families: Optional[Sequence[str]] = None
    per_family: int = 1
    #: Operations per mixed-trace cycle per case (traces regenerate with
    #: a bumped seed when exhausted).
    trace_ops: int = 40
    workers: int = 2
    retries: int = 3
    budget_ms: Optional[float] = None
    #: Run the compiled-vs-sequential cross-check on every Nth decision.
    check_every: int = 5
    #: Run the homogenize invariant on every Nth aggregate check (it
    #: pads the whole instance, the most expensive check of the set).
    homogenize_every: int = 4
    #: Facts per navigation fact table.
    navigate_facts: int = 40
    #: Where shrunk falsifier schemas are written (``None`` disables
    #: emission; violations are still recorded).
    falsifier_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.engine not in SOAK_ENGINES:
            raise ReproError(
                f"unknown soak engine {self.engine!r}; expected one of "
                f"{SOAK_ENGINES}"
            )
        if self.seconds < 0:
            raise ReproError("seconds must be non-negative")
        if self.check_every < 1 or self.homogenize_every < 1:
            raise ReproError("check cadences must be at least 1")


@dataclass(frozen=True)
class InvariantViolation:
    """One metamorphic invariant falsified during a soak."""

    #: ``implied-constraint-stability`` | ``summarizable-aggregates`` |
    #: ``homogenize-preserves-aggregates`` | ``compiled-vs-sequential`` |
    #: ``cache-clean`` | ``wrong-verdict``.
    invariant: str
    case: str
    step: int
    detail: str
    #: Path of the shrunk falsifier schema, when one was emitted.
    falsifier: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "case": self.case,
            "step": self.step,
            "detail": self.detail,
            "falsifier": self.falsifier,
        }


@dataclass
class SoakReport:
    """What a soak run did and what it found."""

    engine: str
    seed: int
    steps: int = 0
    decisions: int = 0
    unknown: int = 0
    wrong_verdicts: int = 0
    edits: int = 0
    skipped_edits: int = 0
    navigations: int = 0
    aggregate_checks: int = 0
    homogenize_checks: int = 0
    cross_checks: int = 0
    cross_check_skips: int = 0
    #: Rekeyed cache entries audited against the oracle after edits.
    rekey_checks: int = 0
    elapsed_s: float = 0.0
    ops_by_kind: Dict[str, int] = field(default_factory=dict)
    families: List[str] = field(default_factory=list)
    cases: List[str] = field(default_factory=list)
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Zero invariant violations and zero wrong verdicts."""
        return not self.violations

    def as_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "seed": self.seed,
            "steps": self.steps,
            "decisions": self.decisions,
            "unknown": self.unknown,
            "wrong_verdicts": self.wrong_verdicts,
            "edits": self.edits,
            "skipped_edits": self.skipped_edits,
            "navigations": self.navigations,
            "aggregate_checks": self.aggregate_checks,
            "homogenize_checks": self.homogenize_checks,
            "cross_checks": self.cross_checks,
            "cross_check_skips": self.cross_check_skips,
            "rekey_checks": self.rekey_checks,
            "elapsed_s": round(self.elapsed_s, 3),
            "ops_by_kind": dict(sorted(self.ops_by_kind.items())),
            "families": self.families,
            "cases": self.cases,
            "violations": [v.as_dict() for v in self.violations],
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = [
            f"soak: engine={self.engine} seed={self.seed} "
            f"steps={self.steps} elapsed={self.elapsed_s:.1f}s",
            f"  families: {', '.join(self.families)}",
            f"  decisions={self.decisions} unknown={self.unknown} "
            f"wrong={self.wrong_verdicts}",
            f"  edits={self.edits} (skipped {self.skipped_edits}) "
            f"navigations={self.navigations}",
            f"  aggregate checks={self.aggregate_checks} "
            f"homogenize checks={self.homogenize_checks}",
            f"  compiled cross-checks={self.cross_checks} "
            f"(skipped {self.cross_check_skips})",
            f"  rekeyed-entry audits={self.rekey_checks}",
        ]
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            for violation in self.violations:
                where = (
                    f" [falsifier: {violation.falsifier}]"
                    if violation.falsifier
                    else ""
                )
                lines.append(
                    f"    {violation.invariant} @ step {violation.step} "
                    f"({violation.case}): {violation.detail}{where}"
                )
        else:
            lines.append("  0 invariant violations, 0 wrong verdicts")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Engine construction and the ground-truth oracle
# ----------------------------------------------------------------------


def build_soak_engine(config: SoakConfig) -> ResilientDecisionEngine:
    """The resilient engine the soak drives, per ``config.engine``.

    ``sequential`` is the parallel engine pinned to one worker - the
    in-repo sequential service path behind the same retry/degradation
    ladder the other two get.
    """
    budget = (
        DecisionBudget(time_ms=config.budget_ms)
        if config.budget_ms is not None
        else None
    )
    if config.engine == "compiled":
        inner: Any = CompiledDecisionEngine(budget=budget)
    elif config.engine == "parallel":
        inner = ParallelDecisionEngine(max_workers=config.workers, budget=budget)
    else:
        inner = ParallelDecisionEngine(max_workers=1, budget=budget)
    return ResilientDecisionEngine(
        inner,
        retry=RetryPolicy(max_attempts=max(1, config.retries)),
    )


def oracle_decide(schema: DimensionSchema, request: Sequence[object]) -> bool:
    """Ground truth for one decision request.

    Direct sequential kernel calls with ``cache=None``: no
    fault-injection sites, no decision cache, no audit records - the
    reference every engine verdict is compared against.
    """
    kind = request[0]
    if kind == "dimsat":
        return dimsat(schema, request[1]).satisfiable  # type: ignore[arg-type]
    if kind == "implies":
        return run_implies(schema, request[1], cache=None).implied
    if kind == "summarizable":
        return is_summarizable_in_schema(
            schema, request[1], request[2], cache=None  # type: ignore[arg-type]
        )
    raise ReproError(f"unknown request kind {kind!r}")


def _compiled_decide(
    engine: CompiledDecisionEngine,
    schema: DimensionSchema,
    request: Sequence[object],
) -> bool:
    kind = request[0]
    if kind == "dimsat":
        return engine.dimsat(schema, request[1]).satisfiable  # type: ignore[arg-type]
    if kind == "implies":
        return engine.implies(schema, request[1]).implied
    return engine.is_summarizable(schema, request[1], request[2])  # type: ignore[arg-type]


def _request_fits(schema: DimensionSchema, request: Sequence[object]) -> bool:
    """Whether a shrunk candidate schema still supports the request."""
    categories = schema.hierarchy.categories
    kind = request[0]
    if kind == "dimsat":
        return request[1] in categories
    if kind == "summarizable":
        return request[1] in categories and all(
            source in categories for source in request[2]  # type: ignore[union-attr]
        )
    return True  # implies: constraint validity is checked by the oracle


def _describe_request(request: Sequence[object]) -> str:
    kind = request[0]
    if kind == "implies":
        return f"implies[{unparse(request[1])}]"  # type: ignore[arg-type]
    if kind == "summarizable":
        return f"summarizable[{request[1]} <= {sorted(request[2])}]"  # type: ignore[arg-type]
    return f"dimsat[{request[1]}]"


# ----------------------------------------------------------------------
# Per-case soak state
# ----------------------------------------------------------------------


class _CaseState:
    """One adversarial case's live state across the soak.

    Owns the :class:`SchemaEditor` (so edits flow through the real cache
    and compiled-artifact invalidation paths), the mixed-trace cursor,
    the stack of constraints the trace added, and lazily-built fact
    tables / padded instances for the aggregate invariants.
    """

    def __init__(self, case: AdversarialCase, config: SoakConfig) -> None:
        self.case = case
        self.config = config
        self.editor = SchemaEditor(case.schema)
        self.added: List[Node] = []
        self._trace: List[Tuple[object, ...]] = []
        self._cursor = 0
        self._cycle = 0
        self._facts: Optional[FactTable] = None
        self._padded: Optional[DimensionInstance] = None
        self._padded_facts: Optional[FactTable] = None
        # Probe requests for the edit invariants: the root's
        # satisfiability plus implication of the first original
        # constraints.  All stay well-formed across the soak because the
        # trace edits constraints only, never categories.
        self.probes: List[Tuple[object, ...]] = [("dimsat", case.root)]
        for node in sorted(case.schema.constraints, key=unparse)[:2]:
            self.probes.append(("implies", node))

    def next_op(self) -> Tuple[object, ...]:
        if self._cursor >= len(self._trace):
            self._trace = mixed_trace(
                self.case.schema,
                n_ops=max(1, self.config.trace_ops),
                seed=self.case.seed + 7919 * self._cycle,
            )
            self._cursor = 0
            self._cycle += 1
        op = self._trace[self._cursor]
        self._cursor += 1
        return op

    @property
    def schema(self) -> DimensionSchema:
        return self.editor.schema

    def fact_table(self) -> Optional[FactTable]:
        if self.case.instance is None:
            return None
        if self._facts is None:
            self._facts = random_fact_table(
                self.case.instance,
                n_facts=self.config.navigate_facts,
                seed=self.case.seed,
            )
        return self._facts

    def padded(self) -> Tuple[DimensionInstance, FactTable]:
        """The homogenized instance plus the same facts re-hosted on it."""
        assert self.case.instance is not None
        if self._padded is None:
            self._padded = homogenize(self.case.instance)
            facts = self.fact_table()
            assert facts is not None
            self._padded_facts = FactTable(
                self._padded,
                [(fact.member, fact.measures) for fact in facts],
            )
        assert self._padded_facts is not None
        return self._padded, self._padded_facts


# ----------------------------------------------------------------------
# The soak run
# ----------------------------------------------------------------------


class _SoakRun:
    def __init__(self, config: SoakConfig) -> None:
        self.config = config
        self.corpus = adversarial_corpus(
            seed=config.seed,
            families=config.families,
            per_family=config.per_family,
        )
        self.states = [_CaseState(case, config) for case in self.corpus]
        self.report = SoakReport(engine=config.engine, seed=config.seed)
        self.report.families = sorted({c.family for c in self.corpus})
        self.report.cases = [c.name for c in self.corpus]
        # The cross-check engine is deliberately cache-free and uses a
        # private artifact store: its verdicts must come from the SAT
        # artifact itself, never from a cache warmed by the engine under
        # test, and its compilations of edited schema versions must not
        # evict the process-wide store's artifacts.
        self._cross_engine = CompiledDecisionEngine(
            cache=None, store=CompiledArtifactStore()
        )

    # -- falsifier plumbing --------------------------------------------

    def _emit_falsifier(
        self,
        schema: DimensionSchema,
        predicate: Callable[[DimensionSchema], bool],
        name: str,
        note: str,
    ) -> Optional[str]:
        """Shrink a failing schema and write it; ``None`` on any trouble.

        Falsifier emission must never take the soak down - a failure to
        shrink still leaves the violation recorded with full detail.
        """
        if self.config.falsifier_dir is None:
            return None
        try:
            small = shrink_schema(schema, predicate)
            path = f"{self.config.falsifier_dir}/{name}.json"
            return write_falsifier(small, path, note=note)
        except Exception:
            return None

    def _violation(
        self,
        invariant: str,
        state: _CaseState,
        step: int,
        detail: str,
        falsifier: Optional[str] = None,
    ) -> None:
        self.report.violations.append(
            InvariantViolation(
                invariant=invariant,
                case=state.case.name,
                step=step,
                detail=detail,
                falsifier=falsifier,
            )
        )

    # -- decision traffic ----------------------------------------------

    def _decide(
        self,
        state: _CaseState,
        engine: ResilientDecisionEngine,
        request: Sequence[object],
        step: int,
    ) -> Optional[bool]:
        """One engine decision, ground-truth checked.

        Returns the oracle verdict (the sound one) when the engine
        answered, ``None`` when it degraded to UNKNOWN.
        """
        schema = state.schema
        outcome = engine.decide(schema, request)
        self.report.decisions += 1
        if outcome.unknown:
            self.report.unknown += 1
            return None
        truth = oracle_decide(schema, request)
        if outcome.verdict != truth:
            self.report.wrong_verdicts += 1
            falsifier = self._emit_falsifier(
                schema,
                self._divergence_predicate(request),
                f"wrong-verdict-{state.case.name}-step{step}",
                f"engine={self.config.engine} said {outcome.verdict}, "
                f"sequential oracle says {truth} for "
                f"{_describe_request(request)} (soak seed "
                f"{self.config.seed}, step {step})",
            )
            self._violation(
                "wrong-verdict",
                state,
                step,
                f"{_describe_request(request)}: engine={outcome.verdict} "
                f"oracle={truth} (rung={outcome.rung})",
                falsifier,
            )
        if step % self.config.check_every == 0:
            self._cross_check(state, request, truth, step)
        return truth

    def _divergence_predicate(
        self, request: Sequence[object]
    ) -> Callable[[DimensionSchema], bool]:
        """Shrink predicate: a fresh compiled engine still diverges from
        the oracle on this request (only reproducible divergences shrink;
        fault-timing-dependent ones fail the predicate and skip)."""

        def predicate(schema: DimensionSchema) -> bool:
            if not _request_fits(schema, request):
                return False
            probe = CompiledDecisionEngine(
                cache=None, store=CompiledArtifactStore()
            )
            try:
                compiled = _compiled_decide(probe, schema, request)
            except Exception:
                return False
            return compiled != oracle_decide(schema, request)

        return predicate

    def _cross_check(
        self,
        state: _CaseState,
        request: Sequence[object],
        truth: bool,
        step: int,
    ) -> None:
        """The compiled-vs-sequential invariant, any traffic engine."""
        schema = state.schema
        try:
            compiled = _compiled_decide(self._cross_engine, schema, request)
        except CompilationError:
            self.report.cross_check_skips += 1
            return
        except Exception:
            # Injected cache/pool faults can reach even a direct call;
            # a refusal to answer is the resilience layer's business,
            # not a compiled-tier divergence.
            self.report.cross_check_skips += 1
            return
        self.report.cross_checks += 1
        if compiled != truth:
            falsifier = self._emit_falsifier(
                schema,
                self._divergence_predicate(request),
                f"compiled-divergence-{state.case.name}-step{step}",
                f"compiled tier says {compiled}, sequential oracle says "
                f"{truth} for {_describe_request(request)} (soak seed "
                f"{self.config.seed}, step {step})",
            )
            self._violation(
                "compiled-vs-sequential",
                state,
                step,
                f"{_describe_request(request)}: "
                f"compiled={compiled} oracle={truth}",
                falsifier,
            )

    # -- navigation traffic --------------------------------------------

    def _navigate(
        self,
        state: _CaseState,
        engine: ResilientDecisionEngine,
        op: Tuple[object, ...],
        step: int,
    ) -> None:
        target, sources = op[1], op[2]
        request = ("summarizable", target, sources)
        truth = self._decide(state, engine, request, step)
        self.report.navigations += 1
        facts = state.fact_table()
        if facts is None or truth is not True:
            return
        instance = state.case.instance
        assert instance is not None
        measure = "amount"
        direct = cube_view(facts, target, SUM, measure)  # type: ignore[arg-type]
        source_views = [
            cube_view(facts, source, SUM, measure) for source in sources  # type: ignore[union-attr]
        ]
        recombined = recombine(instance, target, source_views, SUM)  # type: ignore[arg-type]
        self.report.aggregate_checks += 1
        if not views_equal(direct, recombined):
            self._violation(
                "summarizable-aggregates",
                state,
                step,
                f"oracle proved {target} summarizable from {sorted(sources)} "  # type: ignore[arg-type]
                f"but direct != recombined on {len(facts)} facts "
                f"(Definition 6)",
            )
            return
        if self.report.aggregate_checks % self.config.homogenize_every == 0:
            self._check_homogenize(state, target, sources, direct, step)  # type: ignore[arg-type]

    def _check_homogenize(
        self,
        state: _CaseState,
        target: Category,
        sources: Tuple[Category, ...],
        direct: CubeView,
        step: int,
    ) -> None:
        """Null-padding preserves every real-member aggregate, and makes
        single-source recombination exact (total rollup functions)."""
        try:
            padded, padded_facts = state.padded()
        except Exception as error:
            self._violation(
                "homogenize-preserves-aggregates",
                state,
                step,
                f"homogenize raised {type(error).__name__}: {error}",
            )
            return
        self.report.homogenize_checks += 1
        measure = "amount"
        padded_direct = cube_view(padded_facts, target, SUM, measure)
        for member, value in direct.cells.items():
            padded_value = padded_direct.cells.get(member)
            if padded_value is None or abs(padded_value - value) > 1e-9:
                self._violation(
                    "homogenize-preserves-aggregates",
                    state,
                    step,
                    f"padding changed cell {member!r} at {target}: "
                    f"{value} -> {padded_value}",
                )
                return
        for member in padded_direct.cells:
            if member not in direct.cells and not is_null_member(member):
                self._violation(
                    "homogenize-preserves-aggregates",
                    state,
                    step,
                    f"padding invented a non-null cell {member!r} at "
                    f"{target}",
                )
                return
        if len(sources) == 1:
            source_view = cube_view(padded_facts, sources[0], SUM, measure)
            padded_recombined = recombine(padded, target, [source_view], SUM)
            if not views_equal(padded_direct, padded_recombined):
                self._violation(
                    "homogenize-preserves-aggregates",
                    state,
                    step,
                    f"homogeneous recombination {sources[0]} -> {target} "
                    f"!= direct view",
                )

    # -- edit traffic ---------------------------------------------------

    def _edit(
        self,
        state: _CaseState,
        engine: ResilientDecisionEngine,
        op: Tuple[object, ...],
        step: int,
    ) -> None:
        if op[1] == "drop-added":
            if not state.added:
                self.report.skipped_edits += 1
                return
            node = state.added.pop()
            state.editor.drop_constraint(node)
            self.report.edits += 1
            self._check_cache_clean(state, engine, step)
            self._check_rekey_sound(state, step)
            return

        node = op[2]  # type: ignore[assignment]
        before_schema = state.schema
        if node in before_schema.constraints:
            # A weakening that textually collided with SIGMA; adding it
            # would make the later drop remove a real constraint.
            self.report.skipped_edits += 1
            return
        if not run_implies(before_schema, node, cache=None).implied:
            # Defensive: the generator only emits implied weakenings, so
            # a non-implied one is a generator bug, not an engine bug.
            self.report.skipped_edits += 1
            return
        before = {
            _describe_request(probe): oracle_decide(before_schema, probe)
            for probe in state.probes
        }
        state.editor.add_constraint(node)
        state.added.append(node)
        self.report.edits += 1
        after_schema = state.schema
        for probe in state.probes:
            described = _describe_request(probe)
            verdict = oracle_decide(after_schema, probe)
            if verdict != before[described]:
                falsifier = self._emit_falsifier(
                    before_schema,
                    self._stability_predicate(node, probe),
                    f"implied-flip-{state.case.name}-step{step}",
                    f"adding implied constraint {unparse(node)} flipped "
                    f"{described} from {before[described]} to {verdict} "
                    f"(soak seed {self.config.seed}, step {step})",
                )
                self._violation(
                    "implied-constraint-stability",
                    state,
                    step,
                    f"adding implied {unparse(node)} flipped {described}: "
                    f"{before[described]} -> {verdict}",
                    falsifier,
                )
        self._check_cache_clean(state, engine, step)
        self._check_rekey_sound(state, step)

    def _stability_predicate(
        self, node: Node, probe: Sequence[object]
    ) -> Callable[[DimensionSchema], bool]:
        def predicate(schema: DimensionSchema) -> bool:
            if not _request_fits(schema, probe):
                return False
            try:
                extended = schema.with_constraints([node])
            except Exception:
                return False
            if not run_implies(schema, node, cache=None).implied:
                return False
            return oracle_decide(schema, probe) != oracle_decide(
                extended, probe
            )

        return predicate

    def _check_rekey_sound(self, state: _CaseState, step: int) -> None:
        """Post-edit: every verdict the provenance-scoped rekey carried
        over to the new fingerprint must match a fresh sequential run
        (sampled, default-options entries only) - a mismatch means a
        dependency cone was computed too narrow."""
        from repro.core.auditlog import _verdict_of

        cache = state.editor._cache
        if cache is None:
            return
        schema = state.schema
        checked = 0
        for full_key in cache.entries_for(schema.fingerprint()):
            key = full_key[1:]
            if key[-1] != ():
                continue
            stored = cache.peek(full_key)
            if stored is None:
                continue
            request = list(key[:-1])
            truth = oracle_decide(schema, request)
            self.report.rekey_checks += 1
            if _verdict_of(stored) != truth:
                self.report.wrong_verdicts += 1
                self._violation(
                    "rekey-soundness",
                    state,
                    step,
                    f"rekeyed {_describe_request(request)}: cached="
                    f"{_verdict_of(stored)} fresh-oracle={truth} "
                    f"(fingerprint {schema.fingerprint()[:12]})",
                )
            checked += 1
            if checked >= 4:
                break

    def _check_cache_clean(
        self,
        state: _CaseState,
        engine: ResilientDecisionEngine,
        step: int,
    ) -> None:
        """Post-edit: the engine's verdict on the *new* schema version
        must match a fresh uncached sequential run - a stale verdict
        here means the editor's invalidation hygiene broke."""
        probe = state.probes[0]
        schema = state.schema
        outcome = engine.decide(schema, probe)
        self.report.decisions += 1
        if outcome.unknown:
            self.report.unknown += 1
            return
        truth = oracle_decide(schema, probe)
        if outcome.verdict != truth:
            self.report.wrong_verdicts += 1
            self._violation(
                "cache-clean",
                state,
                step,
                f"post-edit {_describe_request(probe)}: engine="
                f"{outcome.verdict} fresh-oracle={truth} "
                f"(fingerprint {schema.fingerprint()[:12]})",
            )

    # -- the loop -------------------------------------------------------

    def run(self) -> SoakReport:
        config = self.config
        engine = build_soak_engine(config)
        started = time.monotonic()
        deadline = started + config.seconds
        min_steps = max(0, config.min_passes) * len(self.states)
        step = 0
        try:
            while True:
                if config.max_steps is not None and step >= config.max_steps:
                    break
                if step >= min_steps and time.monotonic() >= deadline:
                    break
                state = self.states[step % len(self.states)]
                op = state.next_op()
                kind = op[0]
                self.report.ops_by_kind[kind] = (
                    self.report.ops_by_kind.get(kind, 0) + 1
                )
                if kind in ("dimsat", "implies", "summarizable"):
                    self._decide(state, engine, op, step)
                elif kind == "navigate":
                    self._navigate(state, engine, op, step)
                elif kind == "edit":
                    self._edit(state, engine, op, step)
                else:  # pragma: no cover - mixed_trace emits no others
                    raise ReproError(f"unknown trace op {kind!r}")
                step += 1
        finally:
            engine.shutdown()
        self.report.steps = step
        self.report.elapsed_s = time.monotonic() - started
        return self.report


def run_soak(config: SoakConfig) -> SoakReport:
    """Run one soak and return its report.

    Deterministic apart from wall-clock stopping: with ``max_steps`` set
    (and no injected faults racing real thread timing) two runs with the
    same config visit the same operations in the same order.
    """
    return _SoakRun(config).run()
