"""A process-wide metrics registry: counters, gauges, histograms.

Where :mod:`repro.core.trace` answers "where did *this* decision spend
its time", the metrics registry answers "what has this *process* been
doing": cache hit rates, decisions served, budget consumption, engine
queue waits.  Metric objects are cheap, thread-safe, and always on -
an increment is one short critical section - and the whole registry
serializes to JSON through :meth:`MetricsRegistry.snapshot` (the CLI's
``--emit-metrics PATH`` and the bench smoke's artifact).

Naming convention: dotted ``subsystem.metric`` names, e.g.
``decision_cache.hits``, ``circle_cache.misses``,
``engine.queue_wait_ms``, ``budget.exceeded``, ``resilience.retries``,
``faults.worker-crash``.  The registry creates metrics on first use, so
readers never race creators.

The per-object stats the kernel exposed before this module existed
(:class:`~repro.core.decisioncache.DecisionCacheStats`,
``CircleCache.hits``/``misses``, :class:`~repro.core.parallel.EngineStats`)
remain as per-instance compatibility views; the registry aggregates the
same signals process-wide.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, delta: int = 1) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> int:
        return self._value

    def as_json(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, delta: float = 1.0) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def as_json(self) -> float:
        return self._value


class Histogram:
    """Streaming distribution summary with a bounded reservoir.

    Exact ``count``/``total``/``min``/``max``; quantiles are computed
    from the most recent ``reservoir`` observations, which keeps memory
    constant for long-lived services while staying exact for the short
    bursts benchmarks measure.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_recent", "_lock")

    def __init__(self, name: str, reservoir: int = 1024) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._recent: Deque[float] = deque(maxlen=reservoir)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self._recent.append(value)

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile of the recent reservoir (``0 <= q <= 1``)."""
        with self._lock:
            data = sorted(self._recent)
        if not data:
            return None
        index = min(len(data) - 1, max(0, round(q * (len(data) - 1))))
        return data[index]

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    @property
    def reservoir_dropped(self) -> int:
        """Observations no longer in the quantile reservoir.

        Non-zero means the quantiles cover only the most recent
        ``len(_recent)`` observations - long-run snapshots advertise
        their reservoir bias instead of hiding it.
        """
        return self.count - len(self._recent)

    def as_json(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "reservoir_dropped": self.reservoir_dropped,
        }


class MetricsRegistry:
    """Named metrics, created on first use, snapshotted as JSON.

    One process-wide instance (:func:`metrics_registry`) backs all the
    kernel's instrumentation; tests may build private registries.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._derived: Dict[str, Callable[[], float]] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
            return metric

    def counter_value(self, name: str) -> int:
        """A counter's current value without creating it (0 when absent).

        Lets tests and reports probe e.g. ``resilience.retries`` or
        ``faults.worker-crash`` without materializing zero-valued metrics
        in every snapshot.
        """
        with self._lock:
            metric = self._counters.get(name)
        return metric.value if metric is not None else 0

    def register_derived(self, name: str, supplier: Callable[[], float]) -> None:
        """Expose an externally-maintained value as a counter at snapshot
        time.

        The hottest code paths (the circle-operator cache's per-reduction
        hit/miss counts) already maintain exact counters under their own
        lock; incrementing a registry counter there too would double the
        locking per call.  A derived metric is instead *read* from its
        owner whenever a snapshot is taken - same numbers in the JSON,
        zero cost on the hot path.
        """
        with self._lock:
            self._derived[name] = supplier

    def snapshot(self) -> Dict[str, Any]:
        """Every metric's current value as one JSON-serializable dict."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            derived = dict(self._derived)
        counter_values: Dict[str, Any] = {
            n: m.as_json() for n, m in counters.items()
        }
        for name, supplier in derived.items():
            counter_values[name] = supplier()
        return {
            "counters": dict(sorted(counter_values.items())),
            "gauges": {n: m.as_json() for n, m in sorted(gauges.items())},
            "histograms": {n: m.as_json() for n, m in sorted(histograms.items())},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop every metric (tests; production registries only grow)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry all kernel instrumentation records into.
METRICS = MetricsRegistry()


def metrics_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return METRICS


def emit_metrics(path: str) -> Dict[str, Any]:
    """Write the process-wide snapshot to ``path`` (the CLI's
    ``--emit-metrics``); returns the snapshot.

    Missing parent directories are created - an operator pointing
    ``--emit-metrics`` into a fresh run directory should get a snapshot,
    not a ``FileNotFoundError``.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    snapshot = METRICS.snapshot()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return snapshot
