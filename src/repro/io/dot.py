"""Graphviz DOT export for hierarchy schemas, instances, and frozen
dimensions.

The paper communicates every concept with a diagram (Figures 1, 3, 4, 7);
these exporters produce the same pictures from live objects, so examples
can drop ``.dot`` files a user renders with ``dot -Tpng``.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro._types import ALL
from repro.core.frozen import FrozenDimension
from repro.core.hierarchy import HierarchySchema
from repro.core.instance import DimensionInstance
from repro.core.schema import NK


def _quote(label: object) -> str:
    escaped = str(label).replace('"', '\\"')
    return f'"{escaped}"'


def hierarchy_to_dot(
    hierarchy: HierarchySchema, name: str = "hierarchy"
) -> str:
    """The hierarchy schema as a DOT digraph (Figure 1(A) style)."""
    lines = [f"digraph {name} {{", "  rankdir=BT;", "  node [shape=box];"]
    for category in sorted(hierarchy.categories):
        shape = "ellipse" if category == ALL else "box"
        lines.append(f"  {_quote(category)} [shape={shape}];")
    for child, parent in sorted(hierarchy.edges):
        lines.append(f"  {_quote(child)} -> {_quote(parent)};")
    lines.append("}")
    return "\n".join(lines)


def instance_to_dot(
    instance: DimensionInstance, name: str = "instance"
) -> str:
    """The child/parent relation as a DOT digraph (Figure 1(B) style).

    Members are clustered by category so the rendering shows the
    stratification.
    """
    lines = [f"digraph {name} {{", "  rankdir=BT;", "  node [shape=plaintext];"]
    for index, category in enumerate(sorted(instance.hierarchy.categories)):
        members = sorted(instance.members(category), key=repr)
        if not members:
            continue
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(category)};")
        for member in members:
            label = instance.name(member)
            rendered = (
                f"{member}" if label == member else f"{member}\\n({label})"
            )
            lines.append(f"    {_quote(member)} [label={_quote(rendered)}];")
        lines.append("  }")
    for child, parent in sorted(instance.member_edges(), key=repr):
        lines.append(f"  {_quote(child)} -> {_quote(parent)};")
    lines.append("}")
    return "\n".join(lines)


def frozen_to_dot(
    frozen: FrozenDimension, name: str = "frozen"
) -> str:
    """One frozen dimension as a DOT digraph (Figure 4 style): the induced
    subhierarchy with pinned names annotated."""
    lines = [f"digraph {name} {{", "  rankdir=BT;", "  node [shape=box];"]
    for category in sorted(frozen.subhierarchy.categories):
        pinned = frozen.name_of(category)
        if category != ALL and pinned != NK:
            label = f"{category}\\n= {pinned}"
        else:
            label = category
        lines.append(f"  {_quote(category)} [label={_quote(label)}];")
    for child, parent in frozen.subhierarchy.sorted_edges():
        lines.append(f"  {_quote(child)} -> {_quote(parent)};")
    lines.append("}")
    return "\n".join(lines)


def frozen_set_to_dot(
    frozen_dimensions: Iterable[FrozenDimension], name: str = "frozen_set"
) -> str:
    """All frozen dimensions of a schema in one figure (Figure 4 itself):
    each as a cluster."""
    lines = [f"digraph {name} {{", "  rankdir=BT;", "  node [shape=box];"]
    for index, frozen in enumerate(frozen_dimensions):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label=\"f{index + 1}\";")
        for category in sorted(frozen.subhierarchy.categories):
            pinned = frozen.name_of(category)
            node = f"f{index}_{category}"
            if category != ALL and pinned != NK:
                label = f"{category}\\n= {pinned}"
            else:
                label = category
            lines.append(f"    {_quote(node)} [label={_quote(label)}];")
        for child, parent in frozen.subhierarchy.sorted_edges():
            lines.append(
                f"    {_quote(f'f{index}_{child}')} -> {_quote(f'f{index}_{parent}')};"
            )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
