"""CSV loaders for dimension data and facts.

Two file shapes, both ordinary ``csv`` with a header row:

*Dimension file* - one row per child/parent link::

    member,category,parent,parent_category,name
    s1,Store,Toronto,City,
    Toronto,City,Ontario,Province,Toronto

  A member may appear in several rows (one per parent).  A row with an
  empty ``parent`` declares a parentless member (useful for categories
  directly under ``All``).  ``name`` is optional; empty means identity.

*Fact file* - one row per fact, a ``member`` column plus one column per
measure::

    member,sales,profit
    s1,10.5,2.0
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Tuple

from repro._types import Member
from repro.core.hierarchy import HierarchySchema
from repro.core.instance import DimensionInstance
from repro.errors import OlapError, SchemaError
from repro.olap.facttable import FactTable


def instance_from_csv(
    hierarchy: HierarchySchema, text: str
) -> DimensionInstance:
    """Load a dimension instance from dimension-file CSV text.

    >>> g = HierarchySchema(["Store", "City"], [("Store", "City"), ("City", "All")])
    >>> d = instance_from_csv(g, "member,category,parent,parent_category,name\\n"
    ...                          "s1,Store,Toronto,City,\\n"
    ...                          "Toronto,City,,,\\n")
    >>> d.rolls_up_to_category("s1", "City")
    True
    """
    reader = csv.DictReader(io.StringIO(text))
    required = {"member", "category"}
    if reader.fieldnames is None or not required <= set(reader.fieldnames):
        raise SchemaError(
            "dimension CSV needs at least the columns 'member' and 'category'"
        )
    members: Dict[Member, str] = {}
    names: Dict[Member, object] = {}
    edges: List[Tuple[Member, Member]] = []
    for line, row in enumerate(reader, start=2):
        member = (row.get("member") or "").strip()
        category = (row.get("category") or "").strip()
        if not member or not category:
            raise SchemaError(f"line {line}: empty member or category")
        previous = members.get(member)
        if previous is not None and previous != category:
            raise SchemaError(
                f"line {line}: member {member!r} redeclared from "
                f"{previous!r} to {category!r}"
            )
        members[member] = category
        parent = (row.get("parent") or "").strip()
        parent_category = (row.get("parent_category") or "").strip()
        if parent:
            if not parent_category:
                raise SchemaError(
                    f"line {line}: parent {parent!r} needs a parent_category"
                )
            existing = members.get(parent)
            if existing is not None and existing != parent_category:
                raise SchemaError(
                    f"line {line}: member {parent!r} redeclared from "
                    f"{existing!r} to {parent_category!r}"
                )
            members[parent] = parent_category
            edges.append((member, parent))
        elif parent_category:
            # A parentless row carrying a parent_category used to be
            # silently accepted, dropping the category declaration the
            # author plainly intended (``s1,Store,,City,``): the City link
            # simply vanished from the loaded instance.
            raise SchemaError(
                f"line {line}: row for member {member!r} declares "
                f"parent_category {parent_category!r} but no parent; "
                "either name the parent member or leave both columns empty"
            )
        name = (row.get("name") or "").strip()
        if name:
            names[member] = name
    return DimensionInstance(hierarchy, members, edges, names=names)


def facts_from_csv(instance: DimensionInstance, text: str) -> FactTable:
    """Load a fact table from fact-file CSV text."""
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None or "member" not in reader.fieldnames:
        raise OlapError("fact CSV needs a 'member' column")
    measures = [c for c in reader.fieldnames if c != "member"]
    if not measures:
        raise OlapError("fact CSV needs at least one measure column")
    rows = []
    for line, row in enumerate(reader, start=2):
        member = (row.get("member") or "").strip()
        if not member:
            raise OlapError(f"line {line}: empty member")
        try:
            values = {m: float(row[m]) for m in measures}
        except (TypeError, ValueError) as exc:
            raise OlapError(f"line {line}: bad measure value ({exc})") from None
        rows.append((member, values))
    return FactTable(instance, rows)


def facts_to_csv(facts: FactTable) -> str:
    """Serialize a fact table back to CSV text (inverse of
    :func:`facts_from_csv` up to float formatting)."""
    measures = sorted(facts.measures)
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["member", *measures])
    for fact in facts:
        writer.writerow([fact.member, *(fact.measures[m] for m in measures)])
    return out.getvalue()
