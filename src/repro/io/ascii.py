"""Plain-text rendering of hierarchies and instances.

Terminal-friendly companions to the DOT exporters: category DAGs as
indented trees (shared sub-DAGs repeat, marked with ``*``), member forests
grouped under their rollup chains.  Used by ``repro-olap show``.
"""

from __future__ import annotations

from typing import List, Set

from repro._types import ALL, Category, Member
from repro.core.hierarchy import HierarchySchema
from repro.core.instance import TOP_MEMBER, DimensionInstance


def hierarchy_tree(hierarchy: HierarchySchema) -> str:
    """The category DAG as a top-down indented tree rooted at ``All``.

    A category reachable along several paths is printed each time; repeat
    visits are marked with ``*`` and not expanded again, so cyclic schemas
    render finitely.

    >>> from repro.generators.location import location_hierarchy
    >>> print(hierarchy_tree(location_hierarchy()))  # doctest: +ELLIPSIS
    All
    └── Country
        ├── City
        ...
    """
    lines: List[str] = []

    def walk(category: Category, prefix: str, is_last: bool, seen: Set[Category]) -> None:
        connector = "" if not prefix and category == ALL else (
            "└── " if is_last else "├── "
        )
        marker = " *" if category in seen else ""
        if category == ALL and not prefix:
            lines.append(ALL)
        else:
            lines.append(f"{prefix}{connector}{category}{marker}")
        if category in seen:
            return
        seen = seen | {category}
        children = sorted(hierarchy.children(category))
        extension = "    " if is_last or not prefix and category == ALL else "│   "
        child_prefix = prefix + ("" if not prefix and category == ALL else extension)
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, seen)

    walk(ALL, "", True, set())
    return "\n".join(lines)


def instance_tree(
    instance: DimensionInstance, max_members_per_category: int = 20
) -> str:
    """The member forest, top down from ``all``.

    Members with several children render each child once; members
    reachable along several paths are marked ``*`` on repeat visits.
    Categories with more than ``max_members_per_category`` children under
    one parent are elided with a count.
    """
    lines: List[str] = []

    def label(member: Member) -> str:
        category = instance.category_of(member)
        name = instance.name(member)
        shown = f"{member}" if name == member else f"{member} (name={name})"
        return f"{shown} [{category}]"

    def walk(member: Member, prefix: str, is_last: bool, seen: Set[Member]) -> None:
        connector = "└── " if is_last else "├── "
        marker = " *" if member in seen else ""
        if member == TOP_MEMBER and not prefix:
            lines.append("all [All]")
        else:
            lines.append(f"{prefix}{connector}{label(member)}{marker}")
        if member in seen:
            return
        seen = seen | {member}
        children = sorted(instance.children_of(member), key=repr)
        shown = children[:max_members_per_category]
        extension = "    " if is_last or member == TOP_MEMBER else "│   "
        child_prefix = prefix + ("" if not prefix and member == TOP_MEMBER else extension)
        for index, child in enumerate(shown):
            last = index == len(shown) - 1 and len(shown) == len(children)
            walk(child, child_prefix, last, seen)
        if len(children) > len(shown):
            lines.append(
                f"{child_prefix}└── ... {len(children) - len(shown)} more"
            )

    walk(TOP_MEMBER, "", True, set())
    return "\n".join(lines)
