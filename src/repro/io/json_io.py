"""JSON (de)serialization of schemas, instances, and constraints.

The wire format is deliberately plain - dicts of lists of strings - so
schema files can be written by hand, diffed, and checked into a repo:

.. code-block:: json

    {
      "categories": ["Store", "City", "All"],
      "edges": [["Store", "City"], ["City", "All"]],
      "constraints": ["Store -> City"]
    }

Constraints travel in the textual syntax; the parser/printer round-trip
guarantees fidelity.  Member identifiers are coerced to strings on write
(JSON has no richer keys), so reading back an instance whose members were
not strings yields string members with the same names.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.constraints.printer import unparse
from repro.core.hierarchy import HierarchySchema
from repro.core.instance import DimensionInstance
from repro.core.schema import DimensionSchema
from repro.errors import SchemaError


# ----------------------------------------------------------------------
# Hierarchy schemas
# ----------------------------------------------------------------------


def hierarchy_to_dict(hierarchy: HierarchySchema) -> Dict[str, Any]:
    """The JSON-ready representation of a hierarchy schema."""
    return {
        "categories": sorted(hierarchy.categories),
        "edges": sorted([child, parent] for child, parent in hierarchy.edges),
    }


def hierarchy_from_dict(data: Dict[str, Any]) -> HierarchySchema:
    """Rebuild a hierarchy schema; raises :class:`SchemaError` on malformed
    input."""
    try:
        categories = list(data["categories"])
        edges = [tuple(edge) for edge in data["edges"]]
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"malformed hierarchy document: {exc}") from None
    return HierarchySchema(categories, edges)


# ----------------------------------------------------------------------
# Dimension schemas
# ----------------------------------------------------------------------


def schema_to_dict(schema: DimensionSchema) -> Dict[str, Any]:
    """The JSON-ready representation of a dimension schema."""
    document = hierarchy_to_dict(schema.hierarchy)
    document["constraints"] = [unparse(node) for node in schema.constraints]
    return document


def schema_from_dict(data: Dict[str, Any]) -> DimensionSchema:
    """Rebuild a dimension schema (constraints re-parsed and re-validated)."""
    hierarchy = hierarchy_from_dict(data)
    constraints = data.get("constraints", [])
    return DimensionSchema(hierarchy, constraints)


def schema_to_json(schema: DimensionSchema, indent: int = 2) -> str:
    """Serialize a dimension schema to a JSON string."""
    return json.dumps(schema_to_dict(schema), indent=indent, sort_keys=True)


def schema_from_json(text: str) -> DimensionSchema:
    """Parse a dimension schema from a JSON string."""
    return schema_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Dimension instances
# ----------------------------------------------------------------------


def instance_to_dict(instance: DimensionInstance) -> Dict[str, Any]:
    """The JSON-ready representation of an instance (hierarchy included)."""
    members = {
        str(member): instance.category_of(member)
        for member in instance.all_members()
    }
    edges = sorted(
        [str(child), str(parent)] for child, parent in instance.member_edges()
    )
    names = {
        str(member): instance.name(member)
        for member in instance.all_members()
        if instance.name(member) != member
    }
    return {
        "hierarchy": hierarchy_to_dict(instance.hierarchy),
        "members": members,
        "edges": edges,
        "names": names,
    }


def instance_from_dict(data: Dict[str, Any]) -> DimensionInstance:
    """Rebuild (and re-validate) an instance from its JSON form."""
    try:
        hierarchy = hierarchy_from_dict(data["hierarchy"])
        members = dict(data["members"])
        edges = [tuple(edge) for edge in data["edges"]]
        names = dict(data.get("names", {}))
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"malformed instance document: {exc}") from None
    return DimensionInstance(hierarchy, members, edges, names=names)


def instance_to_json(instance: DimensionInstance, indent: int = 2) -> str:
    """Serialize an instance to a JSON string."""
    return json.dumps(instance_to_dict(instance), indent=indent, sort_keys=True)


def instance_from_json(text: str) -> DimensionInstance:
    """Parse an instance from a JSON string."""
    return instance_from_dict(json.loads(text))
