"""Markdown schema reports.

One call produces the document a data team would check into their wiki:
the hierarchy, the constraints with plain-language glosses, the profile
metrics, the frozen-dimension inventory, and the summarizability matrix
for the levels users aggregate over.  Exposed as ``repro-olap report``.
"""

from __future__ import annotations

from typing import List, Optional

from repro._types import ALL, Category
from repro.constraints.ast import (
    ComparisonAtom,
    EqualityAtom,
    Node,
    PathAtom,
    RollsUpAtom,
)
from repro.constraints.printer import unparse
from repro.core.dimsat import DimsatOptions, enumerate_frozen_dimensions
from repro.core.profile import schema_profile
from repro.core.schema import NK, DimensionSchema
from repro.core.summarizability import is_summarizable_in_schema


def _gloss(node: Node) -> str:
    """A best-effort plain-language reading of simple constraint shapes."""
    if isinstance(node, PathAtom) and len(node.path) == 1:
        return f"every {node.root} has a parent in {node.path[0]}"
    if isinstance(node, PathAtom):
        return f"every {node.root} has the chain {' -> '.join(node.full_path)}"
    if isinstance(node, RollsUpAtom):
        return f"every {node.root} rolls up to {node.target}"
    if isinstance(node, EqualityAtom):
        return f"constrains the {node.category} name to {node.constant!r}"
    if isinstance(node, ComparisonAtom):
        return f"constrains the {node.category} value ({node.op} {node.constant})"
    return ""


def schema_report(
    schema: DimensionSchema,
    root: Optional[Category] = None,
    matrix_targets: Optional[List[Category]] = None,
    options: Optional[DimsatOptions] = None,
) -> str:
    """The full markdown report for one dimension schema.

    ``root`` defaults to the first bottom category; ``matrix_targets``
    defaults to every category the root reaches (except ``All``).
    """
    hierarchy = schema.hierarchy
    if root is None:
        bottoms = sorted(hierarchy.bottom_categories())
        root = bottoms[0] if bottoms else ALL
    profile = schema_profile(schema)

    lines: List[str] = ["# Dimension schema report", ""]

    lines.append("## Hierarchy")
    lines.append("")
    lines.append("| child | parents |")
    lines.append("|---|---|")
    for category in sorted(hierarchy.categories - {ALL}):
        parents = ", ".join(sorted(hierarchy.parents(category)))
        lines.append(f"| {category} | {parents} |")
    lines.append("")

    lines.append("## Constraints")
    lines.append("")
    if not schema.constraints:
        lines.append("*(none - the hierarchy schema alone)*")
    for node in schema.constraints:
        gloss = _gloss(node)
        suffix = f" — {gloss}" if gloss else ""
        lines.append(f"- `{unparse(node)}`{suffix}")
    lines.append("")

    lines.append("## Profile")
    lines.append("")
    lines.append("```")
    lines.append(profile.render())
    lines.append("```")
    lines.append("")

    lines.append(f"## Frozen dimensions (root: {root})")
    lines.append("")
    frozen = enumerate_frozen_dimensions(schema, root, options)
    if not frozen:
        lines.append(f"**{root} is unsatisfiable** — no data can ever live there.")
    for index, frozen_dim in enumerate(frozen, start=1):
        pinned = ", ".join(
            f"{category}={frozen_dim.name_of(category)}"
            for category in sorted(frozen_dim.categories)
            if category != ALL and frozen_dim.name_of(category) != NK
        )
        chain = ", ".join(
            f"{a}->{b}" for a, b in frozen_dim.subhierarchy.sorted_edges()
        )
        suffix = f" (pinned: {pinned})" if pinned else ""
        lines.append(f"{index}. `{chain}`{suffix}")
    lines.append("")

    lines.append("## Safe aggregation (single-source summarizability)")
    lines.append("")
    if matrix_targets is None:
        matrix_targets = sorted(
            c
            for c in hierarchy.categories
            if c != ALL and c != root and hierarchy.reaches(root, c)
        )
    sources = sorted(
        c for c in hierarchy.categories if c not in (ALL,)
    )
    lines.append("| target \\ source | " + " | ".join(sources) + " |")
    lines.append("|---|" + "---|" * len(sources))
    for target in matrix_targets:
        cells = []
        for source in sources:
            if source == target or not hierarchy.reaches(source, target):
                cells.append("·")
            elif is_summarizable_in_schema(schema, target, [source], options):
                cells.append("yes")
            else:
                cells.append("**NO**")
        lines.append(f"| {target} | " + " | ".join(cells) + " |")
    lines.append("")
    lines.append(
        "`yes` = the target view may be derived from that source view for "
        "any data under this schema; `**NO**` = a rewriting can lose or "
        "double-count facts; `·` = not applicable."
    )
    return "\n".join(lines)
