"""Serialization: JSON schemas/instances, DOT diagrams, CSV loading."""

from repro.io.ascii import hierarchy_tree, instance_tree
from repro.io.csvload import facts_from_csv, facts_to_csv, instance_from_csv
from repro.io.dot import (
    frozen_set_to_dot,
    frozen_to_dot,
    hierarchy_to_dot,
    instance_to_dot,
)
from repro.io.markdown import schema_report
from repro.io.json_io import (
    hierarchy_from_dict,
    hierarchy_to_dict,
    instance_from_dict,
    instance_from_json,
    instance_to_dict,
    instance_to_json,
    schema_from_dict,
    schema_from_json,
    schema_to_dict,
    schema_to_json,
)

__all__ = [
    "facts_from_csv",
    "facts_to_csv",
    "frozen_set_to_dot",
    "frozen_to_dot",
    "hierarchy_from_dict",
    "hierarchy_to_dict",
    "hierarchy_to_dot",
    "hierarchy_tree",
    "instance_from_csv",
    "instance_from_dict",
    "instance_from_json",
    "instance_to_dict",
    "instance_to_json",
    "instance_to_dot",
    "instance_tree",
    "schema_from_dict",
    "schema_from_json",
    "schema_report",
    "schema_to_dict",
    "schema_to_json",
]
