"""Fact tables (Section 3.3).

A fact table ``F`` holds facts at the *base* granularity of a dimension:
each row references a member of a bottom category and carries one or more
numeric measures.  The paper's cube views are single-dimension aggregates,
so the fact table is keyed by one dimension; multi-dimensional cubes are a
cartesian composition the engine does not need for any experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro._types import Member
from repro.core.instance import DimensionInstance
from repro.errors import OlapError


@dataclass(frozen=True)
class Fact:
    """One row: a base member plus its measures."""

    member: Member
    measures: Mapping[str, float]

    def value(self, measure: str) -> float:
        try:
            return self.measures[measure]
        except KeyError:
            raise OlapError(f"fact has no measure {measure!r}") from None


class FactTable:
    """An immutable collection of facts over one dimension instance.

    Construction verifies that every fact references a member of a bottom
    category (the paper requires facts at the base granularity) and that
    all rows carry the same measure names.

    Examples
    --------
    >>> from repro.generators.location import location_instance
    >>> d = location_instance()
    >>> facts = FactTable(d, [("s1", {"sales": 10.0}), ("s3", {"sales": 5.0})])
    >>> len(facts)
    2
    """

    __slots__ = ("instance", "_facts", "_measures")

    def __init__(
        self,
        instance: DimensionInstance,
        rows: Iterable[Tuple[Member, Mapping[str, float]]],
    ) -> None:
        self.instance = instance
        base = instance.base_members()
        facts: List[Fact] = []
        measures: set = set()
        for member, values in rows:
            if member not in base:
                raise OlapError(
                    f"fact references {member!r}, which is not a member of a "
                    f"bottom category"
                )
            fact = Fact(member, dict(values))
            if facts and set(fact.measures) != measures:
                raise OlapError(
                    f"fact for {member!r} has measures {sorted(fact.measures)}, "
                    f"expected {sorted(measures)}"
                )
            measures = set(fact.measures)
            facts.append(fact)
        self._facts: Tuple[Fact, ...] = tuple(facts)
        self._measures = frozenset(measures)

    @property
    def measures(self) -> frozenset:
        """The measure names all rows carry."""
        return self._measures

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def members(self) -> List[Member]:
        """The base members referenced, with multiplicity."""
        return [fact.member for fact in self._facts]

    def values(self, measure: str) -> List[float]:
        """All values of one measure, in row order."""
        return [fact.value(measure) for fact in self._facts]

    def group_by_member(self, measure: str) -> Dict[Member, List[float]]:
        """Measure values grouped by base member."""
        grouped: Dict[Member, List[float]] = {}
        for fact in self._facts:
            grouped.setdefault(fact.member, []).append(fact.value(measure))
        return grouped

    def restrict(self, members: Sequence[Member]) -> "FactTable":
        """A new fact table with only the rows of the given members."""
        wanted = set(members)
        return FactTable(
            self.instance,
            (
                (fact.member, fact.measures)
                for fact in self._facts
                if fact.member in wanted
            ),
        )

    def __repr__(self) -> str:
        return f"FactTable({len(self._facts)} facts, measures={sorted(self._measures)})"
