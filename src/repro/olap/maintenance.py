"""Incremental maintenance of materialized cube views and schemas.

Distributivity (the paper's footnote 1) is exactly the property that
makes materialized aggregate views maintainable under fact *appends*: the
delta batch is aggregated on its own with ``af`` and merged into existing
cells with ``af^c``, never touching the already-aggregated history.  This
module adds that capability on top of the navigator:

* :func:`apply_delta` - merge a batch of new facts into one view;
* :class:`MaintainedNavigator` - an
  :class:`~repro.olap.navigator.AggregateNavigator` whose materialized
  views follow fact appends incrementally, with the usual cost advantage
  (delta-sized work instead of full rebuilds).

Deletions are *not* supported for SUM/COUNT/MIN/MAX - inverting MIN/MAX
needs the full history - which mirrors real OLAP engines' append-only
aggregate logs.

The module also owns *schema* maintenance: :class:`SchemaEditor` applies
the mutations a dimension administrator performs over time - adding and
dropping edges, categories, and constraints - producing a fresh immutable
:class:`~repro.core.schema.DimensionSchema` per edit and evicting the
replaced version's verdicts from the shared
:class:`~repro.core.decisioncache.DecisionCache`.  Correctness never
rests on the eviction (an edited schema has a new fingerprint, so stale
verdicts are unreachable); the hooks keep dead versions from occupying
cache space across long edit sessions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro._types import Category, Member
from repro.constraints.parser import parse
from repro.constraints.printer import unparse
from repro.core.decisioncache import USE_DEFAULT_CACHE, resolve_cache
from repro.core.instance import DimensionInstance
from repro.core.invalidation import invalidate_everywhere
from repro.core.provenance import mentioned_categories, schema_delta
from repro.core.schema import DimensionSchema
from repro.errors import OlapError, SchemaError
from repro.olap.aggregates import AggregateFunction
from repro.olap.cubeview import CubeView, cube_view
from repro.olap.facttable import FactTable
from repro.olap.navigator import AggregateNavigator


def apply_delta(
    instance: DimensionInstance,
    view: CubeView,
    delta: FactTable,
) -> CubeView:
    """A new view equal to rebuilding over ``facts + delta``.

    The delta is aggregated at the view's category with the base function
    and merged cell-wise with ``af^c``; cells only ever grow in number.
    """
    if delta.instance is not instance:
        # Same-object check is too strict for rebuilt instances; fall back
        # to a structural guard.  Comparing hierarchies alone is not
        # enough: a delta whose instance rolls a shared member up
        # *differently* would merge that member's cells under the wrong
        # ancestors, silently corrupting the view.  Every fact member must
        # exist in the target instance with the same category and the same
        # rollup.
        if delta.instance.hierarchy != instance.hierarchy:
            raise OlapError("delta facts belong to a different dimension")
        for fact in delta:
            member = fact.member
            if member not in instance:
                raise OlapError(
                    f"delta fact member {member!r} does not exist in the "
                    "view's dimension instance"
                )
            if instance.category_of(member) != delta.instance.category_of(member):
                raise OlapError(
                    f"delta fact member {member!r} has category "
                    f"{delta.instance.category_of(member)!r} in the delta "
                    f"but {instance.category_of(member)!r} in the view's "
                    "dimension instance"
                )
            if instance.ancestors_of(member) != delta.instance.ancestors_of(
                member
            ):
                raise OlapError(
                    f"delta fact member {member!r} rolls up differently in "
                    "the delta than in the view's dimension instance"
                )
    partial = cube_view(delta, view.category, view.aggregate, view.measure)
    cells: Dict[Member, float] = dict(view.cells)
    for member, value in partial.cells.items():
        if member in cells:
            cells[member] = view.aggregate.recombine([cells[member], value])
        else:
            cells[member] = value
    return CubeView(
        category=view.category,
        aggregate=view.aggregate,
        measure=view.measure,
        cells=cells,
        rows_scanned=view.rows_scanned + partial.rows_scanned,
    )


class SchemaEditor:
    """Applies schema mutations with decision-cache hygiene.

    Each operation derives a new immutable schema from the current one,
    *rekeys* the replaced version's surviving verdicts to the new
    fingerprint (provenance-scoped invalidation,
    :meth:`~repro.core.decisioncache.DecisionCache.rekey`), sweeps every
    other registered fingerprint store
    (:func:`~repro.core.invalidation.invalidate_everywhere`), and makes
    the new version current.  ``editor.schema`` always holds the latest
    version; every operation also returns it, so one-off edits can stay
    expression-shaped.

    An edit that would leave an existing constraint invalid (e.g. dropping
    an edge a path atom rides on) raises and leaves the current schema
    untouched - except :meth:`drop_category`, which removes the doomed
    category's constraints along with it, mirroring
    :func:`~repro.core.implication.prune_unsatisfiable`.
    """

    def __init__(
        self, schema: DimensionSchema, cache: object = USE_DEFAULT_CACHE
    ) -> None:
        self.schema = schema
        self._cache = resolve_cache(cache)
        #: Fingerprints of every version this editor produced, newest last.
        self.history: List[str] = [schema.fingerprint()]

    def _commit(self, new_schema: DimensionSchema) -> DimensionSchema:
        replaced = self.schema
        self.schema = new_schema
        self.history.append(new_schema.fingerprint())
        if replaced.fingerprint() != new_schema.fingerprint():
            if self._cache is not None:
                # Verdicts whose dependency cone the edit never touched
                # move to the new fingerprint (byte-identical by the
                # soundness argument in ``repro.core.provenance``); the
                # rest are dropped.
                delta = schema_delta(replaced, new_schema)
                self._cache.rekey(replaced, new_schema, delta)
            # Every other fingerprint-keyed store (the compiled decision
            # tier, anything registered later) is swept in one call, so a
            # long edit session cannot pin dead entries in memory and a
            # future store cannot be forgotten.
            invalidate_everywhere(
                replaced.fingerprint(),
                exclude=() if self._cache is None else (self._cache,),
            )
        return new_schema

    # ------------------------------------------------------------------
    # Hierarchy edits
    # ------------------------------------------------------------------

    def add_edge(self, child: Category, parent: Category) -> DimensionSchema:
        """Add the edge ``child -> parent`` to the hierarchy."""
        hierarchy = self.schema.hierarchy
        if (child, parent) in hierarchy.edges:
            raise SchemaError(f"edge {child!r} -> {parent!r} already exists")
        return self._commit(
            DimensionSchema(
                hierarchy.with_edges([(child, parent)]), self.schema.constraints
            )
        )

    def drop_edge(self, child: Category, parent: Category) -> DimensionSchema:
        """Remove the edge ``child -> parent`` from the hierarchy."""
        return self._commit(
            DimensionSchema(
                self.schema.hierarchy.without_edge(child, parent),
                self.schema.constraints,
            )
        )

    def add_category(
        self,
        category: Category,
        parents: Iterable[Category] = (),
        children: Iterable[Category] = (),
    ) -> DimensionSchema:
        """Add a category (default parent: ``All``, per Definition 1a)."""
        return self._commit(
            DimensionSchema(
                self.schema.hierarchy.with_category(category, parents, children),
                self.schema.constraints,
            )
        )

    def drop_category(self, category: Category) -> DimensionSchema:
        """Remove a category, its incident edges, and every constraint
        mentioning it."""
        hierarchy = self.schema.hierarchy.without_category(category)
        kept = [
            node
            for node in self.schema.constraints
            if category not in mentioned_categories(node)
        ]
        return self._commit(DimensionSchema(hierarchy, kept))

    # ------------------------------------------------------------------
    # Constraint edits
    # ------------------------------------------------------------------

    def add_constraint(self, constraint: object) -> DimensionSchema:
        """Append one constraint to SIGMA (AST node or textual syntax)."""
        return self._commit(self.schema.with_constraints([constraint]))

    def drop_constraint(self, constraint: object) -> DimensionSchema:
        """Remove one constraint from SIGMA, matched by canonical text.

        Raises :class:`SchemaError` when no constraint matches.
        """
        node = parse(constraint) if isinstance(constraint, str) else constraint
        doomed = unparse(node)  # type: ignore[arg-type]
        kept = [n for n in self.schema.constraints if unparse(n) != doomed]
        if len(kept) == len(self.schema.constraints):
            raise SchemaError(f"no constraint matches {doomed!r}")
        return self._commit(DimensionSchema(self.schema.hierarchy, kept))


class MaintainedNavigator(AggregateNavigator):
    """An aggregate navigator whose views track fact appends.

    ``append(rows)`` extends the fact table and patches every materialized
    view with the delta - each view pays O(|delta|) instead of a full
    rebuild.  Query answering is inherited unchanged, so rewrites keep
    their correctness guarantees over the grown data.

    Constraint maintenance rides along: :meth:`add_constraint` and
    :meth:`drop_constraint` swap in an edited schema (via
    :class:`SchemaEditor`, so the decision cache is invalidated) and flush
    the navigator's own verdict memo - rewritings proven under the old
    SIGMA are re-proven under the new one.
    """

    def append(
        self, rows: Iterable[Tuple[Member, Mapping[str, float]]]
    ) -> int:
        """Load new facts; returns the number of rows appended."""
        delta = FactTable(self.instance, rows)
        if len(delta) == 0:
            return 0
        merged_rows: List[Tuple[Member, Mapping[str, float]]] = [
            (fact.member, fact.measures) for fact in self.facts
        ]
        merged_rows.extend((fact.member, fact.measures) for fact in delta)
        self.facts = FactTable(self.instance, merged_rows)
        for key, view in list(self._views.items()):
            self._views[key] = apply_delta(self.instance, view, delta)
        return len(delta)

    # ------------------------------------------------------------------
    # Schema maintenance
    # ------------------------------------------------------------------

    def _swap_schema(self, new_schema: DimensionSchema) -> None:
        self.schema = new_schema
        # Fingerprint keying already makes old verdicts unreachable; the
        # flush keeps the per-navigator memo from accumulating dead
        # versions over a long maintenance session.
        self._summarizable_cache.clear()
        self._proven_sources.clear()

    def add_constraint(self, constraint: object) -> DimensionSchema:
        """Extend SIGMA; future rewrites are proven under the new schema."""
        if self.schema is None:
            raise OlapError("navigator has no schema to edit")
        editor = SchemaEditor(self.schema, self.cache)
        self._swap_schema(editor.add_constraint(constraint))
        return self.schema

    def drop_constraint(self, constraint: object) -> DimensionSchema:
        """Retract a constraint of SIGMA; rewrites its proof licensed are
        re-examined on the next query."""
        if self.schema is None:
            raise OlapError("navigator has no schema to edit")
        editor = SchemaEditor(self.schema, self.cache)
        self._swap_schema(editor.drop_constraint(constraint))
        return self.schema
