"""Incremental maintenance of materialized cube views.

Distributivity (the paper's footnote 1) is exactly the property that
makes materialized aggregate views maintainable under fact *appends*: the
delta batch is aggregated on its own with ``af`` and merged into existing
cells with ``af^c``, never touching the already-aggregated history.  This
module adds that capability on top of the navigator:

* :func:`apply_delta` - merge a batch of new facts into one view;
* :class:`MaintainedNavigator` - an
  :class:`~repro.olap.navigator.AggregateNavigator` whose materialized
  views follow fact appends incrementally, with the usual cost advantage
  (delta-sized work instead of full rebuilds).

Deletions are *not* supported for SUM/COUNT/MIN/MAX - inverting MIN/MAX
needs the full history - which mirrors real OLAP engines' append-only
aggregate logs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro._types import Category, Member
from repro.core.instance import DimensionInstance
from repro.errors import OlapError
from repro.olap.aggregates import AggregateFunction
from repro.olap.cubeview import CubeView, cube_view
from repro.olap.facttable import FactTable
from repro.olap.navigator import AggregateNavigator


def apply_delta(
    instance: DimensionInstance,
    view: CubeView,
    delta: FactTable,
) -> CubeView:
    """A new view equal to rebuilding over ``facts + delta``.

    The delta is aggregated at the view's category with the base function
    and merged cell-wise with ``af^c``; cells only ever grow in number.
    """
    if delta.instance is not instance:
        # Same-object check is too strict for rebuilt instances; fall back
        # to a structural guard.
        if delta.instance.hierarchy != instance.hierarchy:
            raise OlapError("delta facts belong to a different dimension")
    partial = cube_view(delta, view.category, view.aggregate, view.measure)
    cells: Dict[Member, float] = dict(view.cells)
    for member, value in partial.cells.items():
        if member in cells:
            cells[member] = view.aggregate.recombine([cells[member], value])
        else:
            cells[member] = value
    return CubeView(
        category=view.category,
        aggregate=view.aggregate,
        measure=view.measure,
        cells=cells,
        rows_scanned=view.rows_scanned + partial.rows_scanned,
    )


class MaintainedNavigator(AggregateNavigator):
    """An aggregate navigator whose views track fact appends.

    ``append(rows)`` extends the fact table and patches every materialized
    view with the delta - each view pays O(|delta|) instead of a full
    rebuild.  Query answering is inherited unchanged, so rewrites keep
    their correctness guarantees over the grown data.
    """

    def append(
        self, rows: Iterable[Tuple[Member, Mapping[str, float]]]
    ) -> int:
        """Load new facts; returns the number of rows appended."""
        delta = FactTable(self.instance, rows)
        if len(delta) == 0:
            return 0
        merged_rows: List[Tuple[Member, Mapping[str, float]]] = [
            (fact.member, fact.measures) for fact in self.facts
        ]
        merged_rows.extend((fact.member, fact.measures) for fact in delta)
        self.facts = FactTable(self.instance, merged_rows)
        for key, view in list(self._views.items()):
            self._views[key] = apply_delta(self.instance, view, delta)
        return len(delta)
