"""Multi-dimensional cubes: several dimensions, one fact table.

The paper works with single-dimension cube views (Definition 6); a real
data cube crosses several dimensions (the introduction's example: items x
stores x time).  This module provides the natural generalization, with
the key property that makes it sound: rollups are performed one dimension
at a time, and a rollup along dimension ``d`` from level ``c_1`` to level
``c_2`` is exactly a single-dimension recombination with source set
``{c_1}`` - so the Theorem 1 test applies per dimension, and a
multi-dimensional rewrite is correct iff *every* per-dimension step is
summarizable.

Vocabulary: a *level assignment* maps each dimension name to a category;
the cube view at a level assignment groups facts by the tuple of rollup
targets (facts whose member does not reach the level on some dimension
drop out, exactly as in the one-dimensional case).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro._types import Category, Member
from repro.core.instance import DimensionInstance
from repro.core.schema import DimensionSchema
from repro.core.summarizability import (
    is_summarizable_in_instance,
    is_summarizable_in_schema,
)
from repro.errors import NavigationError, OlapError
from repro.olap.aggregates import AggregateFunction

#: A level assignment: one category per dimension name.
Levels = Mapping[str, Category]
#: A cell key: one member per dimension, in the cube's dimension order.
CellKey = Tuple[Member, ...]


@dataclass(frozen=True)
class MultiFact:
    """One row: a member per dimension plus measures."""

    coordinates: Mapping[str, Member]
    measures: Mapping[str, float]


class Cube:
    """A star schema: named dimensions plus a shared fact table.

    Parameters
    ----------
    dimensions:
        Mapping from dimension name to its instance.
    schemas:
        Optional mapping from dimension name to its dimension schema;
        when present, navigation uses schema-level summarizability.
    """

    def __init__(
        self,
        dimensions: Mapping[str, DimensionInstance],
        schemas: Optional[Mapping[str, DimensionSchema]] = None,
    ) -> None:
        if not dimensions:
            raise OlapError("a cube needs at least one dimension")
        self.dimensions: Dict[str, DimensionInstance] = dict(dimensions)
        self.schemas: Dict[str, DimensionSchema] = dict(schemas or {})
        for name, schema in self.schemas.items():
            if name not in self.dimensions:
                raise OlapError(f"schema for unknown dimension {name!r}")
            if schema.hierarchy != self.dimensions[name].hierarchy:
                raise OlapError(
                    f"dimension {name!r}: instance and schema hierarchies differ"
                )
        self.dimension_order: Tuple[str, ...] = tuple(sorted(self.dimensions))
        self._facts: List[MultiFact] = []

    # ------------------------------------------------------------------
    # Facts
    # ------------------------------------------------------------------

    def load(
        self, rows: Iterable[Tuple[Mapping[str, Member], Mapping[str, float]]]
    ) -> "Cube":
        """Append fact rows; each row names a base member per dimension."""
        for coordinates, measures in rows:
            if set(coordinates) != set(self.dimensions):
                raise OlapError(
                    f"fact coordinates {sorted(coordinates)} do not match "
                    f"dimensions {sorted(self.dimensions)}"
                )
            for name, member in coordinates.items():
                instance = self.dimensions[name]
                if member not in instance.base_members():
                    raise OlapError(
                        f"dimension {name!r}: {member!r} is not a base member"
                    )
            self._facts.append(MultiFact(dict(coordinates), dict(measures)))
        return self

    def __len__(self) -> int:
        return len(self._facts)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def _check_levels(self, levels: Levels) -> None:
        if set(levels) != set(self.dimensions):
            raise OlapError(
                f"level assignment {sorted(levels)} does not match "
                f"dimensions {sorted(self.dimensions)}"
            )
        for name, category in levels.items():
            if not self.dimensions[name].hierarchy.has_category(category):
                raise OlapError(
                    f"dimension {name!r} has no category {category!r}"
                )

    def view(
        self, levels: Levels, aggregate: AggregateFunction, measure: str
    ) -> "MultiCubeView":
        """The cube view at a level assignment, straight from the facts."""
        self._check_levels(levels)
        groups: Dict[CellKey, List[float]] = {}
        scanned = 0
        for fact in self._facts:
            scanned += 1
            key: List[Member] = []
            dropped = False
            for name in self.dimension_order:
                instance = self.dimensions[name]
                target = instance.ancestor_in(
                    fact.coordinates[name], levels[name]
                )
                if target is None:
                    dropped = True
                    break
                key.append(target)
            if dropped:
                continue
            try:
                value = fact.measures[measure]
            except KeyError:
                raise OlapError(f"fact has no measure {measure!r}") from None
            groups.setdefault(tuple(key), []).append(value)
        cells = {
            key: aggregate.aggregate(values) for key, values in groups.items()
        }
        return MultiCubeView(
            levels=dict(levels),
            aggregate=aggregate,
            measure=measure,
            cells=cells,
            dimension_order=self.dimension_order,
            rows_scanned=scanned,
        )

    # ------------------------------------------------------------------
    # Safe rollups
    # ------------------------------------------------------------------

    def _step_summarizable(
        self, name: str, lower: Category, upper: Category
    ) -> bool:
        """Whether rolling dimension ``name`` up from ``lower`` to
        ``upper`` is proven correct (single-source Theorem 1)."""
        if lower == upper:
            return True
        schema = self.schemas.get(name)
        if schema is not None:
            return is_summarizable_in_schema(schema, upper, [lower])
        return is_summarizable_in_instance(self.dimensions[name], upper, [lower])

    def rollup_is_safe(self, stored: Levels, requested: Levels) -> bool:
        """Whether a stored view at ``stored`` may answer ``requested``."""
        self._check_levels(stored)
        self._check_levels(requested)
        for name in self.dimension_order:
            lower, upper = stored[name], requested[name]
            if lower == upper:
                continue
            if not self.dimensions[name].hierarchy.reaches(lower, upper):
                return False
            if not self._step_summarizable(name, lower, upper):
                return False
        return True

    def rollup(self, view: "MultiCubeView", requested: Levels) -> "MultiCubeView":
        """Derive a coarser view from a finer one, dimension by dimension.

        Raises :class:`NavigationError` when some per-dimension step is
        not summarizable - the caller should fall back to :meth:`view`.
        """
        self._check_levels(requested)
        if not self.rollup_is_safe(view.levels, requested):
            raise NavigationError(
                f"rolling up from {dict(view.levels)} to {dict(requested)} "
                f"is not proven correct"
            )
        current = view
        for name in self.dimension_order:
            if current.levels[name] != requested[name]:
                current = self._rollup_one(current, name, requested[name])
        return current

    def _rollup_one(
        self, view: "MultiCubeView", name: str, upper: Category
    ) -> "MultiCubeView":
        axis = self.dimension_order.index(name)
        instance = self.dimensions[name]
        mapping = instance.rollup_mapping(view.levels[name], upper)
        partials: Dict[CellKey, List[float]] = {}
        scanned = 0
        for key, value in view.cells.items():
            scanned += 1
            target = mapping.get(key[axis])
            if target is None:
                continue
            new_key = key[:axis] + (target,) + key[axis + 1 :]
            partials.setdefault(new_key, []).append(value)
        cells = {
            key: view.aggregate.recombine(values)
            for key, values in partials.items()
        }
        levels = dict(view.levels)
        levels[name] = upper
        return MultiCubeView(
            levels=levels,
            aggregate=view.aggregate,
            measure=view.measure,
            cells=cells,
            dimension_order=self.dimension_order,
            rows_scanned=view.rows_scanned + scanned,
        )


@dataclass(frozen=True)
class MultiCubeView:
    """A materialized multi-dimensional view.

    ``cells`` maps member tuples (in ``dimension_order``) to aggregates.
    """

    levels: Mapping[str, Category]
    aggregate: AggregateFunction
    measure: str
    cells: Mapping[CellKey, float]
    dimension_order: Tuple[str, ...]
    rows_scanned: int = 0

    def value(self, **members: Member) -> float:
        """Cell lookup by dimension name, e.g. ``view.value(location="Canada",
        time="2021")``."""
        key = tuple(members[name] for name in self.dimension_order)
        try:
            return self.cells[key]
        except KeyError:
            raise OlapError(f"no cell for {key!r}") from None

    def __len__(self) -> int:
        return len(self.cells)


def multi_views_equal(
    left: MultiCubeView, right: MultiCubeView, tolerance: float = 1e-9
) -> bool:
    """Cell-by-cell equality within floating tolerance."""
    if set(left.cells) != set(right.cells):
        return False
    return all(
        abs(left.cells[key] - right.cells[key]) <= tolerance
        for key in left.cells
    )


class MultiNavigator:
    """Aggregate navigation over a cube: answer level assignments from the
    cheapest materialized view whose per-dimension rollups are all proven
    correct, else scan the facts."""

    def __init__(self, cube: Cube) -> None:
        self.cube = cube
        self._views: Dict[Tuple[Tuple[str, Category], ...], MultiCubeView] = {}

    @staticmethod
    def _key(levels: Levels, aggregate: AggregateFunction, measure: str):
        return (tuple(sorted(levels.items())), aggregate.name, measure)

    def materialize(
        self, levels: Levels, aggregate: AggregateFunction, measure: str
    ) -> MultiCubeView:
        view = self.cube.view(levels, aggregate, measure)
        self._views[self._key(levels, aggregate, measure)] = view
        return view

    def answer(
        self, levels: Levels, aggregate: AggregateFunction, measure: str
    ) -> Tuple[MultiCubeView, str]:
        """The view plus the plan kind (``materialized`` / ``rolled-up`` /
        ``base-scan``)."""
        exact = self._views.get(self._key(levels, aggregate, measure))
        if exact is not None:
            return exact, "materialized"
        candidates = [
            view
            for (stored_levels, agg_name, m), view in self._views.items()
            if agg_name == aggregate.name
            and m == measure
            and self.cube.rollup_is_safe(dict(stored_levels), levels)
        ]
        if candidates:
            best = min(candidates, key=len)
            return self.cube.rollup(best, levels), "rolled-up"
        return self.cube.view(levels, aggregate, measure), "base-scan"
