"""Cube views and their recombination (Definition 6).

A single-category cube view ``CubeView(d, F, c, af(m))`` aggregates the
fact table to the granularity of category ``c``::

    PI_{c, af(m)} ( F  JOIN  GAMMA_{c_b}^{c} d )

In heterogeneous dimensions the rollup mapping is partial - facts whose
base member does not reach ``c`` silently drop out of the view, which is
exactly why summarizability is subtle: recombining from an intermediate
category loses (or double counts) those facts unless Theorem 1's condition
holds.  :func:`recombine` implements the right-hand side of Definition 6
so the cross-validation experiment (E12) can compare both sides on real
data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro._types import Category, Member
from repro.core.instance import DimensionInstance
from repro.errors import OlapError
from repro.olap.aggregates import AggregateFunction
from repro.olap.facttable import FactTable


@dataclass(frozen=True)
class CubeView:
    """A materialized single-category cube view.

    ``cells`` maps each member of ``category`` that received at least one
    fact to its aggregate value.  ``rows_scanned`` records the work done
    to build the view, which the navigator benchmarks use as the cost
    model (row count is the standard I/O proxy for aggregate views).
    """

    category: Category
    aggregate: AggregateFunction
    measure: str
    cells: Mapping[Member, float]
    rows_scanned: int = 0

    def value(self, member: Member) -> float:
        try:
            return self.cells[member]
        except KeyError:
            raise OlapError(
                f"cube view at {self.category!r} has no cell for {member!r}"
            ) from None

    def __len__(self) -> int:
        return len(self.cells)


def cube_view(
    facts: FactTable,
    category: Category,
    aggregate: AggregateFunction,
    measure: str,
) -> CubeView:
    """Compute a cube view directly from the fact table (Definition 6 LHS).

    >>> from repro.generators.location import location_instance
    >>> from repro.olap.aggregates import SUM
    >>> d = location_instance()
    >>> f = FactTable(d, [("s1", {"sales": 10.0}), ("s2", {"sales": 7.0})])
    >>> cube_view(f, "Country", SUM, "sales").cells
    {'Canada': 17.0}
    """
    instance = facts.instance
    groups: Dict[Member, List[float]] = {}
    scanned = 0
    for fact in facts:
        scanned += 1
        target = instance.ancestor_in(fact.member, category)
        if target is None:
            continue  # the rollup mapping is partial in heterogeneous dims
        groups.setdefault(target, []).append(fact.value(measure))
    cells = {member: aggregate.aggregate(values) for member, values in groups.items()}
    return CubeView(category, aggregate, measure, cells, rows_scanned=scanned)


def recombine(
    instance: DimensionInstance,
    target: Category,
    source_views: Iterable[CubeView],
    aggregate: AggregateFunction,
) -> CubeView:
    """Definition 6 RHS: derive the cube view at ``target`` from views at
    source categories.

    For each source view at ``c_i``, every cell is mapped up through
    ``GAMMA_{c_i}^{target}`` and the mapped partials are merged with the
    combiner ``af^c``.  The result equals the direct
    :func:`cube_view` for *every* fact table exactly when ``target`` is
    summarizable from the source categories (Theorem 1); otherwise facts
    can be lost (no source on their path) or double counted (two sources
    on their path).
    """
    views = tuple(source_views)
    if not views:
        raise OlapError("recombination needs at least one source view")
    measures = {view.measure for view in views}
    if len(measures) > 1:
        raise OlapError(f"source views mix measures: {sorted(measures)}")

    partials: Dict[Member, List[float]] = {}
    scanned = 0
    for view in views:
        if view.aggregate.name != aggregate.name:
            raise OlapError(
                f"source view at {view.category!r} was built with "
                f"{view.aggregate.name}, cannot recombine with {aggregate.name}"
            )
        mapping = instance.rollup_mapping(view.category, target)
        for member, value in view.cells.items():
            scanned += 1
            up = mapping.get(member)
            if up is None:
                continue
            partials.setdefault(up, []).append(value)
    cells = {
        member: aggregate.recombine(values) for member, values in partials.items()
    }
    return CubeView(target, aggregate, views[0].measure, cells, rows_scanned=scanned)


def views_equal(left: CubeView, right: CubeView, tolerance: float = 1e-9) -> bool:
    """Whether two views agree cell by cell (within floating tolerance)."""
    if set(left.cells) != set(right.cells):
        return False
    return all(
        abs(left.cells[member] - right.cells[member]) <= tolerance
        for member in left.cells
    )
