"""Distributive aggregate functions (Section 1.2, footnote 1).

A distributive aggregate function ``af`` can be computed on a set by
partitioning it, aggregating each part, and combining the partial results
with a (possibly different) aggregate ``af^c``.  Among the SQL aggregates,
``COUNT``, ``SUM``, ``MIN``, ``MAX`` are distributive with::

    COUNT^c = SUM        SUM^c = SUM        MIN^c = MIN        MAX^c = MAX

The cube-view recombination of Definition 6 applies ``af`` at the base
level and ``af^c`` when merging pre-aggregated cube views, so both halves
live on one object here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Tuple

from repro.errors import OlapError

Number = float


@dataclass(frozen=True)
class AggregateFunction:
    """A distributive aggregate: the base function and its combiner.

    ``base`` folds raw measure values; ``combine`` folds partial
    aggregates (the paper's ``af^c``).  ``on_empty_error`` mirrors SQL:
    MIN/MAX over nothing is undefined, COUNT/SUM of nothing is 0.
    """

    name: str
    base: Callable[[Iterable[Number]], Number]
    combine: Callable[[Iterable[Number]], Number]
    combine_name: str
    empty_value: Number | None = None

    def aggregate(self, values: Iterable[Number]) -> Number:
        """Apply the base aggregate to raw values."""
        values = list(values)
        if not values:
            if self.empty_value is None:
                raise OlapError(f"{self.name} over an empty group is undefined")
            return self.empty_value
        return self.base(values)

    def recombine(self, partials: Iterable[Number]) -> Number:
        """Apply ``af^c`` to partial aggregates."""
        partials = list(partials)
        if not partials:
            if self.empty_value is None:
                raise OlapError(f"{self.combine_name} over an empty group is undefined")
            return self.empty_value
        return self.combine(partials)


def _count(values: Iterable[Number]) -> Number:
    return float(sum(1 for _ in values))


SUM = AggregateFunction("SUM", base=sum, combine=sum, combine_name="SUM", empty_value=0.0)
COUNT = AggregateFunction(
    "COUNT", base=_count, combine=sum, combine_name="SUM", empty_value=0.0
)
MIN = AggregateFunction("MIN", base=min, combine=min, combine_name="MIN")
MAX = AggregateFunction("MAX", base=max, combine=max, combine_name="MAX")

#: Every distributive aggregate the engine ships, by SQL name.
DISTRIBUTIVE: Dict[str, AggregateFunction] = {
    "SUM": SUM,
    "COUNT": COUNT,
    "MIN": MIN,
    "MAX": MAX,
}


def by_name(name: str) -> AggregateFunction:
    """Look up a distributive aggregate by (case-insensitive) SQL name.

    ``AVG`` is rejected with a pointer to the workaround the paper's
    footnote implies: maintain SUM and COUNT and divide at the end.
    """
    key = name.upper()
    if key == "AVG":
        raise OlapError(
            "AVG is not distributive; materialize SUM and COUNT instead "
            "and divide on read"
        )
    try:
        return DISTRIBUTIVE[key]
    except KeyError:
        raise OlapError(f"unknown aggregate function {name!r}") from None


def all_aggregates() -> Tuple[AggregateFunction, ...]:
    """The four distributive aggregates, in a stable order."""
    return (SUM, COUNT, MIN, MAX)
