"""The aggregate navigator (Sections 1.2 and 6).

Kimball's *aggregate navigator* rewrites an incoming aggregate query to
use precomputed aggregate views instead of the base fact table.  The
paper's point is that in heterogeneous dimensions the rewriting is only
correct when the target category is *summarizable* from the materialized
categories - and that dimension constraints let the system decide this.

:class:`AggregateNavigator` implements that loop:

1. queries for a materialized category are answered directly;
2. otherwise it searches subsets of the materialized categories for one
   the target is summarizable from (Theorem 1) and recombines
   (Definition 6 RHS);
3. otherwise it falls back to a base-table scan (or raises when
   ``rewrites_only`` is set).

Summarizability can be checked at the *instance* level (valid for the
current data) or the *schema* level (valid for every instance of the
dimension schema - the safe choice when data evolves under the same
constraints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro._types import Category
from repro.core.compile import resolve_engine
from repro.core.decisioncache import USE_DEFAULT_CACHE
from repro.core.instance import DimensionInstance
from repro.core.metrics import METRICS
from repro.core.trace import TRACER
from repro.core.parallel import ParallelDecisionEngine
from repro.core.schema import DimensionSchema
from repro.core.summarizability import (
    is_summarizable_in_instance,
    is_summarizable_in_schema,
)
from repro.errors import NavigationError, OlapError
from repro.olap.aggregates import AggregateFunction
from repro.olap.cubeview import CubeView, cube_view, recombine
from repro.olap.facttable import FactTable

_M_QUERIES = METRICS.counter("navigator.queries")
#: Checks a resilient engine answered UNKNOWN (treated as not-proven;
#: process-wide so the telemetry report can surface degraded navigation).
_M_UNKNOWN = METRICS.counter("navigator.unknown_verdicts")


@dataclass(frozen=True)
class QueryPlan:
    """How a cube-view query was (or would be) answered.

    ``kind`` is ``"materialized"``, ``"rewritten"``, or ``"base-scan"``;
    ``sources`` lists the views a rewriting reads; ``cost`` counts the
    rows read under the standard row-count cost model.
    """

    kind: str
    target: Category
    sources: Tuple[Category, ...]
    cost: int


@dataclass
class NavigatorStats:
    """Cumulative counters across a navigator's lifetime."""

    queries: int = 0
    materialized_hits: int = 0
    rewrites: int = 0
    base_scans: int = 0
    rows_read: int = 0
    summarizability_checks: int = 0
    supersets_skipped: int = 0
    #: Batched checks a resilient engine answered UNKNOWN.  The navigator
    #: treats those as not-proven (a base scan is always correct) and
    #: never caches them, so a later healthy check can still prove them.
    unknown_verdicts: int = 0


class AggregateNavigator:
    """Answers single-category cube views from materialized aggregates.

    Parameters
    ----------
    facts:
        The base fact table.
    schema:
        Optional dimension schema.  When given, summarizability is decided
        at the schema level (sound for any future instance); otherwise the
        current instance decides.
    max_rewrite_sources:
        Upper bound on how many views a rewriting may combine.
    rewrites_only:
        When true, a query with no correct rewriting raises
        :class:`NavigationError` instead of scanning the base table.
    cache:
        A :class:`~repro.core.decisioncache.DecisionCache` for schema-level
        summarizability verdicts (default: the process-wide one); pass
        ``None`` to disable it.
    engine:
        Optional :class:`~repro.core.parallel.ParallelDecisionEngine`,
        or the string ``"compiled"`` to decide through a
        :class:`~repro.core.compile.CompiledDecisionEngine` over the
        same cache.  When set (and ``schema`` is given), the rewriting
        search batches its candidate summarizability checks through
        :meth:`~repro.core.parallel.ParallelDecisionEngine.decide_many`
        instead of deciding them one by one.
    """

    def __init__(
        self,
        facts: FactTable,
        schema: Optional[DimensionSchema] = None,
        max_rewrite_sources: int = 3,
        rewrites_only: bool = False,
        cache: object = USE_DEFAULT_CACHE,
        engine: Optional[ParallelDecisionEngine] = None,
    ) -> None:
        self.facts = facts
        self.instance: DimensionInstance = facts.instance
        self.schema = schema
        self.max_rewrite_sources = max_rewrite_sources
        self.rewrites_only = rewrites_only
        self.cache = cache
        self.engine = resolve_engine(engine, cache)
        self.stats = NavigatorStats()
        self._views: Dict[Tuple[Category, str, str], CubeView] = {}
        # Verdicts are keyed by a *context* - the schema fingerprint for
        # schema-level checks, an instance-identity marker otherwise - so
        # schema-level entries survive fact-table reloads while
        # instance-level entries die with the instance they judged.
        self._summarizable_cache: Dict[
            Tuple[object, Category, FrozenSet[Category]], bool
        ] = {}
        # Source sets proven summarizable per target, for the superset
        # short-circuit in the rewriting search.
        self._proven_sources: Dict[
            Tuple[object, Category], List[FrozenSet[Category]]
        ] = {}

    def _verdict_context(self) -> object:
        """The cache context current verdicts belong to."""
        if self.schema is not None:
            return self.schema.fingerprint()
        return ("instance", id(self.instance))

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def materialize(
        self, category: Category, aggregate: AggregateFunction, measure: str
    ) -> CubeView:
        """Build and cache the cube view at ``category``."""
        key = (category, aggregate.name, measure)
        view = cube_view(self.facts, category, aggregate, measure)
        self._views[key] = view
        return view

    def materialized_categories(
        self, aggregate: AggregateFunction, measure: str
    ) -> List[Category]:
        """Categories with a stored view for this aggregate and measure."""
        return sorted(
            category
            for (category, agg_name, m) in self._views
            if agg_name == aggregate.name and m == measure
        )

    def drop(self, category: Category, aggregate: AggregateFunction, measure: str) -> None:
        """Discard a materialized view (no-op when absent)."""
        self._views.pop((category, aggregate.name, measure), None)

    def reload_facts(self, facts: FactTable) -> None:
        """Swap in a new fact table (e.g. a nightly reload) and rebuild
        every materialized view over it.

        Schema-level summarizability verdicts are keyed by schema
        fingerprint, so they survive the reload even when the new fact
        table carries a *rebuilt* (structurally equal) instance;
        instance-level verdicts are dropped with the instance that
        produced them.
        """
        if facts.instance.hierarchy != self.instance.hierarchy:
            raise OlapError("reloaded facts belong to a different dimension")
        old_context = ("instance", id(self.instance))
        self.facts = facts
        self.instance = facts.instance
        for key in [k for k in self._summarizable_cache if k[0] == old_context]:
            del self._summarizable_cache[key]
        for proven_key in [k for k in self._proven_sources if k[0] == old_context]:
            del self._proven_sources[proven_key]
        for category, agg_name, measure in list(self._views):
            view_key = (category, agg_name, measure)
            aggregate = self._views[view_key].aggregate
            self._views[view_key] = cube_view(
                self.facts, category, aggregate, measure
            )

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------

    def answer(
        self, category: Category, aggregate: AggregateFunction, measure: str
    ) -> Tuple[CubeView, QueryPlan]:
        """Answer ``CubeView(d, F, category, aggregate(measure))``.

        Returns the view together with the plan that produced it.
        """
        # Per-query span: which plan answered, at what row cost, and (via
        # the nested summarizability/implication/dimsat spans) where a
        # slow rewriting search spent its time.
        with TRACER.span(
            "navigator.answer", category=category, aggregate=aggregate.name
        ) as span:
            view, plan = self._answer(category, aggregate, measure)
            span.set(plan=plan.kind, cost=plan.cost)
        _M_QUERIES.inc()
        METRICS.counter(f"navigator.plan.{plan.kind}").inc()
        return view, plan

    def _answer(
        self, category: Category, aggregate: AggregateFunction, measure: str
    ) -> Tuple[CubeView, QueryPlan]:
        self.stats.queries += 1
        key = (category, aggregate.name, measure)
        stored = self._views.get(key)
        if stored is not None:
            self.stats.materialized_hits += 1
            plan = QueryPlan("materialized", category, (category,), cost=0)
            return stored, plan

        rewrite = self._find_rewriting(category, aggregate, measure)
        if rewrite is not None:
            sources, views = rewrite
            result = recombine(self.instance, category, views, aggregate)
            self.stats.rewrites += 1
            self.stats.rows_read += result.rows_scanned
            plan = QueryPlan("rewritten", category, sources, cost=result.rows_scanned)
            return result, plan

        if self.rewrites_only:
            raise NavigationError(
                f"no correct rewriting for category {category!r} from "
                f"{self.materialized_categories(aggregate, measure)}"
            )
        result = cube_view(self.facts, category, aggregate, measure)
        self.stats.base_scans += 1
        self.stats.rows_read += result.rows_scanned
        plan = QueryPlan("base-scan", category, (), cost=result.rows_scanned)
        return result, plan

    # ------------------------------------------------------------------
    # Rewriting search
    # ------------------------------------------------------------------

    def summarizable_many(
        self, queries: Iterable[Tuple[Category, Iterable[Category]]]
    ) -> List[bool]:
        """Batch-decide summarizability for many ``(target, sources)`` pairs.

        With a schema and an engine attached, the uncached pairs go out as
        one ``decide_many`` batch (deduped, concurrent); otherwise they are
        decided one by one.  Either way every verdict lands in the
        navigator's local caches, so a subsequent rewriting search finds
        them for free.  Returns verdicts aligned with the input order.
        """
        pairs = [(target, frozenset(sources)) for target, sources in queries]
        if self.schema is None or self.engine is None:
            return [self._is_summarizable(target, s) for target, s in pairs]
        context = self._verdict_context()
        missing: List[Tuple[Category, FrozenSet[Category]]] = []
        seen = set()
        for target, sources in pairs:
            key = (context, target, sources)
            if key not in self._summarizable_cache and (target, sources) not in seen:
                seen.add((target, sources))
                missing.append((target, sources))
        if missing:
            requests = [
                (self.schema, ("summarizable", target, tuple(sorted(sources))))
                for target, sources in missing
            ]
            if hasattr(self.engine, "decide_many_outcomes"):
                # Resilient engine: an UNKNOWN check is conservatively
                # treated as not-proven *for this batch only* - nothing is
                # cached for it, so no degraded verdict can ever stick.
                outcomes = self.engine.decide_many_outcomes(requests)
                for (target, sources), outcome in zip(missing, outcomes):
                    self.stats.summarizability_checks += 1
                    if outcome.unknown:
                        self.stats.unknown_verdicts += 1
                        _M_UNKNOWN.inc()
                        if TRACER.enabled:
                            TRACER.event(
                                "navigator.unknown",
                                target=target,
                                sources=sorted(sources),
                                attempts=outcome.attempts,
                            )
                        continue
                    self._summarizable_cache[(context, target, sources)] = (
                        outcome.verdict
                    )
                    if outcome.verdict:
                        self._proven_sources.setdefault(
                            (context, target), []
                        ).append(sources)
            else:
                verdicts = self.engine.decide_many(requests)
                for (target, sources), verdict in zip(missing, verdicts):
                    self.stats.summarizability_checks += 1
                    self._summarizable_cache[(context, target, sources)] = verdict
                    if verdict:
                        self._proven_sources.setdefault(
                            (context, target), []
                        ).append(sources)
        # ``.get(..., False)``: an UNKNOWN verdict has no cache entry and
        # reads as "not proven summarizable" - sound, because every caller
        # uses a positive verdict only to *replace* a base scan.
        return [
            self._summarizable_cache.get((context, target, sources), False)
            for target, sources in pairs
        ]

    def _is_summarizable(self, target: Category, sources: FrozenSet[Category]) -> bool:
        context = self._verdict_context()
        key = (context, target, sources)
        cached = self._summarizable_cache.get(key)
        if cached is not None:
            return cached
        self.stats.summarizability_checks += 1
        if self.schema is not None:
            verdict = is_summarizable_in_schema(
                self.schema, target, sources, cache=self.cache
            )
        else:
            verdict = is_summarizable_in_instance(self.instance, target, sources)
        self._summarizable_cache[key] = verdict
        if verdict:
            self._proven_sources.setdefault((context, target), []).append(sources)
        return verdict

    def _find_rewriting(
        self, target: Category, aggregate: AggregateFunction, measure: str
    ) -> Optional[Tuple[Tuple[Category, ...], List[CubeView]]]:
        """The cheapest proven-correct rewriting, if any.

        Candidate source sets are subsets of the materialized categories
        below the target, tried in order of increasing total view size so
        the first hit is also the cheapest under the row-count model.

        Strict supersets of an already-proven source set are skipped
        without a summarizability check: when the proven subset is itself
        available, its plan reads no more rows and sorts no later in the
        candidate order, so the superset's plan is never the answer.  This
        is plan-redundancy pruning, not verdict inference - summarizability
        is not monotone under adding sources, so a superset's *verdict*
        cannot be inferred and is simply never needed here.
        """
        available = [
            category
            for category in self.materialized_categories(aggregate, measure)
            if category != target
            and self.instance.hierarchy.reaches(category, target)
        ]
        available_set = frozenset(available)
        proven = [
            sources
            for sources in self._proven_sources.get(
                (self._verdict_context(), target), []
            )
            if sources <= available_set
        ]
        candidates: List[Tuple[int, Tuple[Category, ...]]] = []
        for size in range(1, min(self.max_rewrite_sources, len(available)) + 1):
            for combo in combinations(available, size):
                total = sum(
                    len(self._views[(c, aggregate.name, measure)]) for c in combo
                )
                candidates.append((total, combo))
        candidates.sort()
        batch_verdicts: Dict[FrozenSet[Category], bool] = {}
        if self.engine is not None and self.schema is not None and candidates:
            # Batch every candidate check through the engine up front: the
            # verdicts land in the local cache, so the cost-ordered loop
            # below only does lookups.  (This trades the sequential path's
            # first-hit early exit for one deduped concurrent batch.)
            todo = [
                combo
                for _total, combo in candidates
                if not any(subset < frozenset(combo) for subset in proven)
            ]
            verdicts = self.summarizable_many((target, combo) for combo in todo)
            batch_verdicts = {
                frozenset(combo): verdict
                for combo, verdict in zip(todo, verdicts)
            }
        for _total, combo in candidates:
            combo_set = frozenset(combo)
            if any(subset < combo_set for subset in proven):
                self.stats.supersets_skipped += 1
                continue
            # Read the batch result directly rather than through
            # ``_is_summarizable``: an UNKNOWN verdict left no cache entry,
            # and re-deciding it sequentially here would re-expose this
            # query to the very fault the ladder already degraded around.
            verdict = (
                batch_verdicts[combo_set]
                if combo_set in batch_verdicts
                else self._is_summarizable(target, combo_set)
            )
            if verdict:
                views = [self._views[(c, aggregate.name, measure)] for c in combo]
                return combo, views
        return None
