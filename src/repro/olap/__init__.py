"""OLAP substrate: distributive aggregates, fact tables, cube views
(Definition 6), and the summarizability-driven aggregate navigator.
"""

from repro.olap.aggregates import (
    COUNT,
    DISTRIBUTIVE,
    MAX,
    MIN,
    SUM,
    AggregateFunction,
    all_aggregates,
    by_name,
)
from repro.olap.cubeview import CubeView, cube_view, recombine, views_equal
from repro.olap.engine import OlapEngine
from repro.olap.facttable import Fact, FactTable
from repro.olap.maintenance import MaintainedNavigator, SchemaEditor, apply_delta
from repro.olap.multidim import (
    Cube,
    MultiCubeView,
    MultiFact,
    MultiNavigator,
    multi_views_equal,
)
from repro.olap.navigator import AggregateNavigator, NavigatorStats, QueryPlan
from repro.olap.viewselect import (
    Selection,
    ViewSelectionProblem,
    coverage,
    evaluate_selection,
    exhaustive_select,
    greedy_select,
    is_sufficient,
    naive_lattice_coverage,
)

__all__ = [
    "AggregateFunction",
    "AggregateNavigator",
    "COUNT",
    "CubeView",
    "DISTRIBUTIVE",
    "Fact",
    "FactTable",
    "Cube",
    "MAX",
    "MIN",
    "MaintainedNavigator",
    "MultiCubeView",
    "MultiFact",
    "MultiNavigator",
    "NavigatorStats",
    "OlapEngine",
    "QueryPlan",
    "SUM",
    "SchemaEditor",
    "Selection",
    "ViewSelectionProblem",
    "all_aggregates",
    "apply_delta",
    "by_name",
    "coverage",
    "cube_view",
    "evaluate_selection",
    "exhaustive_select",
    "greedy_select",
    "is_sufficient",
    "multi_views_equal",
    "naive_lattice_coverage",
    "recombine",
    "views_equal",
]
