"""Materialized-view selection driven by dimension constraints.

Section 6: "dimension constraints may play an important role in the
problem of selecting views to materialize in data cubes by supplying
meta-data to support the test of whether a selected set of views is
sufficient to compute all the required queries."

The module implements exactly that test plus two selectors on top of it:

* :func:`is_sufficient` / :func:`coverage` - can a set of materialized
  category views answer every target level, using only rewritings that
  schema-level summarizability *proves* correct?
* :func:`greedy_select` - the classical benefit-per-byte greedy of
  Harinarayan-Rajaraman-Ullman style lattice selection, with the lattice's
  naive "every ancestor is derivable" assumption replaced by the
  constraint-based summarizability test;
* :func:`exhaustive_select` - optimal selection by enumeration, for small
  problems and for validating the greedy.

The cost model is the standard row-count proxy: answering a target from a
view set costs the summed view sizes; answering from the base table costs
the fact-table size; materializing costs storage equal to view size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro._types import ALL, Category
from repro.core.compile import resolve_engine
from repro.core.decisioncache import USE_DEFAULT_CACHE
from repro.core.dimsat import DimsatOptions
from repro.core.parallel import ParallelDecisionEngine
from repro.core.schema import DimensionSchema
from repro.core.summarizability import is_summarizable_in_schema
from repro.core.trace import TRACER
from repro.errors import OlapError


@dataclass(frozen=True)
class ViewSelectionProblem:
    """One selection instance.

    ``targets`` maps each queried category to its query frequency (any
    positive weight); ``view_sizes`` estimates the cell count of each
    category's view; ``base_size`` is the fact-table row count.
    """

    schema: DimensionSchema
    targets: Mapping[Category, float]
    view_sizes: Mapping[Category, int]
    base_size: int
    max_rewrite_sources: int = 2

    def __post_init__(self) -> None:
        hierarchy = self.schema.hierarchy
        for category in list(self.targets) + list(self.view_sizes):
            if not hierarchy.has_category(category):
                raise OlapError(f"unknown category {category!r}")
        if self.base_size <= 0:
            raise OlapError("base_size must be positive")
        for category, weight in self.targets.items():
            if weight <= 0:
                raise OlapError(f"target {category!r} needs a positive weight")

    def size_of(self, category: Category) -> int:
        try:
            return int(self.view_sizes[category])
        except KeyError:
            raise OlapError(f"no size estimate for category {category!r}") from None

    def candidates(self) -> Tuple[Category, ...]:
        """Categories eligible for materialization (those with sizes)."""
        return tuple(sorted(self.view_sizes))


@dataclass
class Selection:
    """A chosen view set with its evaluation."""

    categories: FrozenSet[Category]
    storage: int
    query_cost: float
    answerable: Dict[Category, Tuple[Category, ...]] = field(default_factory=dict)

    @property
    def covered(self) -> FrozenSet[Category]:
        """Targets answerable without touching the base table."""
        return frozenset(t for t, plan in self.answerable.items() if plan)


class _SummarizabilityCache:
    """Memoized schema-level summarizability over one problem.

    A thin lock-free layer over the shared
    :class:`~repro.core.decisioncache.DecisionCache`: the local dict
    avoids fingerprint hashing inside the selection loops, while the
    decision cache makes verdicts carry over between problems (the greedy
    re-evaluates the same ``(target, sources)`` pairs for every candidate
    it trials).
    """

    def __init__(
        self,
        schema: DimensionSchema,
        options: Optional[DimsatOptions],
        cache: object = USE_DEFAULT_CACHE,
        engine: Optional[ParallelDecisionEngine] = None,
    ):
        self.schema = schema
        self.options = options
        self.cache = cache
        # ``"compiled"`` selects the compiled decision tier; anything
        # else (engine object or None) is used as given.
        self.engine = resolve_engine(engine, cache)
        self._cache: Dict[Tuple[Category, FrozenSet[Category]], bool] = {}

    def prefetch(self, pairs: Iterable[Tuple[Category, FrozenSet[Category]]]) -> None:
        """Batch-decide ``(target, sources)`` pairs through the engine.

        No-op without an engine.  Every verdict lands in the local dict, so
        the selection loops afterwards only do lookups.
        """
        if self.engine is None:
            return
        missing: List[Tuple[Category, FrozenSet[Category]]] = []
        seen = set()
        for target, sources in pairs:
            key = (target, sources)
            if key not in self._cache and key not in seen:
                seen.add(key)
                missing.append(key)
        if not missing:
            return
        requests = [
            (self.schema, ("summarizable", target, tuple(sorted(sources))))
            for target, sources in missing
        ]
        if hasattr(self.engine, "decide_many_outcomes"):
            # Resilient engine: an UNKNOWN check stays out of the local
            # dict, so :meth:`check` recomputes it sequentially on demand
            # instead of ever trusting a degraded verdict.
            for key, outcome in zip(
                missing, self.engine.decide_many_outcomes(requests)
            ):
                if not outcome.unknown:
                    self._cache[key] = outcome.verdict
        else:
            for key, verdict in zip(missing, self.engine.decide_many(requests)):
                self._cache[key] = verdict

    def check(self, target: Category, sources: FrozenSet[Category]) -> bool:
        key = (target, sources)
        cached = self._cache.get(key)
        if cached is None:
            cached = is_summarizable_in_schema(
                self.schema, target, sources, self.options, self.cache
            )
            self._cache[key] = cached
        return cached


def _cheapest_plan(
    problem: ViewSelectionProblem,
    cache: _SummarizabilityCache,
    target: Category,
    selected: FrozenSet[Category],
) -> Optional[Tuple[Tuple[Category, ...], int]]:
    """The cheapest proven plan for one target, or ``None`` (base scan).

    Returns the source tuple and its row cost; a materialized target
    answers from its own view.
    """
    if target in selected:
        return (target,), problem.size_of(target)
    hierarchy = problem.schema.hierarchy
    below = sorted(
        c for c in selected if c != target and hierarchy.reaches(c, target)
    )
    best: Optional[Tuple[Tuple[Category, ...], int]] = None
    limit = min(problem.max_rewrite_sources, len(below))
    for size in range(1, limit + 1):
        for combo in combinations(below, size):
            cost = sum(problem.size_of(c) for c in combo)
            if best is not None and cost >= best[1]:
                continue
            if cache.check(target, frozenset(combo)):
                best = (combo, cost)
    return best


def evaluate_selection(
    problem: ViewSelectionProblem,
    selected: Iterable[Category],
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
    engine: Optional[ParallelDecisionEngine] = None,
) -> Selection:
    """Storage and weighted query cost of a concrete view set.

    With an ``engine``, every summarizability check the per-target plan
    search may need goes out as one deduped ``decide_many`` batch first.
    """
    chosen = frozenset(selected)
    # Per-evaluation span: one trial of the greedy/exhaustive selectors,
    # with the nested summarizability spans attributing its cost.
    with TRACER.span(
        "viewselect.evaluate", views=sorted(chosen), targets=len(problem.targets)
    ) as span:
        cache = _SummarizabilityCache(problem.schema, options, cache, engine)
        if engine is not None:
            hierarchy = problem.schema.hierarchy
            pairs: List[Tuple[Category, FrozenSet[Category]]] = []
            for target in problem.targets:
                if target in chosen:
                    continue
                below = sorted(
                    c for c in chosen if c != target and hierarchy.reaches(c, target)
                )
                limit = min(problem.max_rewrite_sources, len(below))
                for size in range(1, limit + 1):
                    for combo in combinations(below, size):
                        pairs.append((target, frozenset(combo)))
            cache.prefetch(pairs)
        answerable: Dict[Category, Tuple[Category, ...]] = {}
        total = 0.0
        for target, weight in problem.targets.items():
            plan = _cheapest_plan(problem, cache, target, chosen)
            if plan is None:
                answerable[target] = ()
                total += weight * problem.base_size
            else:
                answerable[target] = plan[0]
                total += weight * plan[1]
        storage = sum(problem.size_of(c) for c in chosen)
        span.set(query_cost=total, storage=storage)
    return Selection(chosen, storage, total, answerable)


def coverage(
    problem: ViewSelectionProblem,
    selected: Iterable[Category],
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
    engine: Optional[ParallelDecisionEngine] = None,
) -> Dict[Category, bool]:
    """Per-target verdict: answerable from the views without a base scan."""
    evaluation = evaluate_selection(problem, selected, options, cache, engine)
    return {
        target: bool(plan) for target, plan in evaluation.answerable.items()
    }


def is_sufficient(
    problem: ViewSelectionProblem,
    selected: Iterable[Category],
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
    engine: Optional[ParallelDecisionEngine] = None,
) -> bool:
    """Section 6's test: do the selected views suffice for all targets?"""
    return all(coverage(problem, selected, options, cache, engine).values())


def greedy_select(
    problem: ViewSelectionProblem,
    storage_budget: int,
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
    engine: Optional[ParallelDecisionEngine] = None,
) -> Selection:
    """Benefit-per-cell greedy selection under a storage budget.

    Starts from the empty set (every query scans the base table) and
    repeatedly materializes the candidate with the highest query-cost
    reduction per stored cell, while it fits the budget and helps.
    """
    with TRACER.span(
        "viewselect.greedy",
        candidates=len(problem.candidates()),
        budget=storage_budget,
    ) as span:
        chosen: FrozenSet[Category] = frozenset()
        current = evaluate_selection(problem, chosen, options, cache, engine)
        rounds = 0
        while True:
            best_gain = 0.0
            best_candidate: Optional[Category] = None
            best_eval: Optional[Selection] = None
            for candidate in problem.candidates():
                if candidate in chosen:
                    continue
                size = problem.size_of(candidate)
                if current.storage + size > storage_budget:
                    continue
                trial = evaluate_selection(
                    problem, chosen | {candidate}, options, cache, engine
                )
                gain = (current.query_cost - trial.query_cost) / max(1, size)
                if gain > best_gain:
                    best_gain = gain
                    best_candidate = candidate
                    best_eval = trial
            if best_candidate is None or best_eval is None:
                span.set(rounds=rounds, selected=sorted(current.categories))
                return current
            rounds += 1
            chosen = chosen | {best_candidate}
            current = best_eval


def exhaustive_select(
    problem: ViewSelectionProblem,
    storage_budget: int,
    options: Optional[DimsatOptions] = None,
    cache: object = USE_DEFAULT_CACHE,
    engine: Optional[ParallelDecisionEngine] = None,
) -> Selection:
    """Optimal selection by subset enumeration (small candidate sets).

    Ties break toward smaller storage, then lexicographic category order,
    so the result is deterministic.
    """
    candidates = problem.candidates()
    if len(candidates) > 16:
        raise OlapError(
            "exhaustive selection is limited to 16 candidates; "
            "use greedy_select for larger problems"
        )
    best: Optional[Selection] = None
    for size in range(len(candidates) + 1):
        for combo in combinations(candidates, size):
            storage = sum(problem.size_of(c) for c in combo)
            if storage > storage_budget:
                continue
            trial = evaluate_selection(problem, combo, options, cache, engine)
            key = (trial.query_cost, trial.storage, tuple(sorted(trial.categories)))
            if best is None or key < (
                best.query_cost,
                best.storage,
                tuple(sorted(best.categories)),
            ):
                best = trial
    assert best is not None  # the empty set always fits
    return best


def naive_lattice_coverage(
    problem: ViewSelectionProblem, selected: Iterable[Category]
) -> Dict[Category, bool]:
    """The classical (constraint-blind) lattice assumption, for the E16
    comparison: a target is considered answerable whenever *some* selected
    category lies below it in the hierarchy.

    In heterogeneous dimensions this over-promises: the rewriting it
    licenses can silently drop or double-count facts.
    """
    chosen = frozenset(selected)
    hierarchy = problem.schema.hierarchy
    result: Dict[Category, bool] = {}
    for target in problem.targets:
        result[target] = target in chosen or any(
            hierarchy.reaches(c, target) for c in chosen if c != target
        )
    return result
