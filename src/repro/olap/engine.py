"""A small star-schema engine tying dimensions, facts, and navigation.

:class:`OlapEngine` is the highest-level entry point of the OLAP
substrate: it owns a dimension schema, a dimension instance over it, a
fact table, and an aggregate navigator, and exposes the operations the
examples and benchmarks script against:

* validate the instance against the schema (conditions (C1)-(C7) plus the
  dimension constraints);
* materialize aggregate views;
* answer cube-view queries, with plans and cost accounting;
* report which categories are safe aggregation levels for which others
  (the design-stage use of dimension constraints from Section 6).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro._types import Category, Member
from repro.constraints.semantics import failures
from repro.core.instance import DimensionInstance
from repro.core.schema import DimensionSchema
from repro.core.summarizability import summarizable_sets
from repro.errors import OlapError
from repro.olap.aggregates import AggregateFunction, by_name
from repro.olap.cubeview import CubeView
from repro.olap.facttable import FactTable
from repro.olap.navigator import AggregateNavigator, QueryPlan


class OlapEngine:
    """One dimension's worth of OLAP: schema + instance + facts + views.

    Examples
    --------
    >>> from repro.generators.location import location_instance, location_schema
    >>> d = location_instance()
    >>> engine = OlapEngine(location_schema(), d, [("s1", {"sales": 3.0})])
    >>> engine.materialize("City", "SUM", "sales").cells
    {'Toronto': 3.0}
    """

    def __init__(
        self,
        schema: DimensionSchema,
        instance: DimensionInstance,
        rows: Iterable[Tuple[Member, Mapping[str, float]]],
        schema_level_navigation: bool = True,
        rewrites_only: bool = False,
    ) -> None:
        if instance.hierarchy != schema.hierarchy:
            raise OlapError(
                "the instance and the schema are over different hierarchies"
            )
        self.schema = schema
        self.instance = instance
        self.facts = FactTable(instance, rows)
        self.navigator = AggregateNavigator(
            self.facts,
            schema=schema if schema_level_navigation else None,
            rewrites_only=rewrites_only,
        )

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def check_integrity(self) -> List[str]:
        """Every violated condition and constraint, as messages.

        Empty exactly when the instance is an element of ``I(ds)``: it
        satisfies (C1)-(C7) and every dimension constraint of the schema.
        """
        problems = [str(v) for v in self.instance.violations()]
        for node, members in failures(self.instance, self.schema.constraints):
            rendered = ", ".join(repr(m) for m in members[:5])
            problems.append(f"constraint {node!r} violated at members: {rendered}")
        return problems

    # ------------------------------------------------------------------
    # Views and queries
    # ------------------------------------------------------------------

    def materialize(
        self, category: Category, aggregate: str | AggregateFunction, measure: str
    ) -> CubeView:
        """Materialize the cube view at ``category``."""
        agg = by_name(aggregate) if isinstance(aggregate, str) else aggregate
        return self.navigator.materialize(category, agg, measure)

    def query(
        self, category: Category, aggregate: str | AggregateFunction, measure: str
    ) -> Tuple[CubeView, QueryPlan]:
        """Answer a cube view, preferring materialized or rewritten plans."""
        agg = by_name(aggregate) if isinstance(aggregate, str) else aggregate
        return self.navigator.answer(category, agg, measure)

    def query_cells(
        self, category: Category, aggregate: str | AggregateFunction, measure: str
    ) -> Dict[Member, float]:
        """Convenience: just the cells of :meth:`query`."""
        view, _plan = self.query(category, aggregate, measure)
        return dict(view.cells)

    # ------------------------------------------------------------------
    # Design-stage reasoning
    # ------------------------------------------------------------------

    def safe_aggregation_sources(
        self, target: Category, max_size: int = 2
    ) -> List[frozenset]:
        """Minimal category sets the target is schema-summarizable from.

        This is the metadata Section 6 proposes for view selection: any of
        these sets, materialized, can answer the target level forever,
        whatever data arrives under the schema's constraints.
        """
        return summarizable_sets(self.schema, target, max_size=max_size)
