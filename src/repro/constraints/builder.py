"""Terse programmatic constructors for constraint expressions.

The parser (:mod:`repro.constraints.parser`) is the friendliest way to
write constraints, but generators and tests build thousands of them, so
this module provides short, positional constructors::

    from repro.constraints.builder import path, rollsup, through, eq, one

    path("Store", "City", "Province")        # Store -> City -> Province
    rollsup("Store", "SaleRegion")           # Store.SaleRegion
    through("Store", "City", "Country")      # Store.City.Country
    eq("Store", "Country", "Canada")         # Store.Country = 'Canada'
    name_is("City", "Washington")            # City = 'Washington'
    one(a, b, c)                             # one(a, b, c)
    into("Store", "City")                    # the into constraint Store -> City
"""

from __future__ import annotations

from repro.constraints.ast import (
    ComparisonAtom,
    EqualityAtom,
    ExactlyOne,
    Node,
    PathAtom,
    RollsUpAtom,
    ThroughAtom,
)
from repro._types import Category


def path(root: Category, *steps: Category) -> PathAtom:
    """The path atom ``root_step1_..._stepn``."""
    return PathAtom(root, tuple(steps))


def into(child: Category, parent: Category) -> PathAtom:
    """The *into* constraint ``child_parent``: every member of ``child``
    has a parent in ``parent`` (Section 5)."""
    return PathAtom(child, (parent,))


def rollsup(root: Category, target: Category) -> RollsUpAtom:
    """The composed atom ``root.target``."""
    return RollsUpAtom(root, target)


def through(root: Category, via: Category, target: Category) -> ThroughAtom:
    """The composed atom ``root.via.target``."""
    return ThroughAtom(root, via, target)


def eq(root: Category, category: Category, constant: str) -> EqualityAtom:
    """The equality atom ``root.category = 'constant'``."""
    return EqualityAtom(root, category, constant)


def name_is(category: Category, constant: str) -> EqualityAtom:
    """The self equality atom ``category = 'constant'`` (``c ~ k``)."""
    return EqualityAtom(category, category, constant)


def one(*operands: Node) -> ExactlyOne:
    """The paper's exactly-one operator over the given operands."""
    return ExactlyOne(tuple(operands))


def compare(
    root: Category, category: Category, op: str, constant: object
) -> ComparisonAtom:
    """The order-predicate atom ``root.category OP constant``
    (Section 6 extension), e.g. ``compare("SKU", "Price", "<", 100)``."""
    return ComparisonAtom(root, category, op, str(constant))
