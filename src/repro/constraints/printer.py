"""Textual rendering of constraint expressions.

The concrete syntax round-trips through :mod:`repro.constraints.parser`:
``parse(unparse(node))`` is structurally equal to ``node`` (a property the
test suite checks with hypothesis).  The syntax mirrors the paper:

=====================  =================================
paper                  text
=====================  =================================
``Store_City_Prov``    ``Store -> City -> Prov``
``Store.SaleRegion``   ``Store.SaleRegion``
``Store.City.Country`` ``Store.City.Country``
``City ~ Washington``  ``City = 'Washington'``
``a AND b``            ``a and b``
``a OR b``             ``a or b``
``NOT a``              ``not a``
``a IMPLIES b``        ``a implies b``
``a IFF b``            ``a iff b``
``a XOR b``            ``a xor b``
``(.)  {a, b}``        ``one(a, b)``
``TOP / BOTTOM``       ``true`` / ``false``
=====================  =================================
"""

from __future__ import annotations

from repro.constraints.ast import (
    And,
    ComparisonAtom,
    EqualityAtom,
    ExactlyOne,
    FalseConst,
    Iff,
    Implies,
    Node,
    Not,
    Or,
    PathAtom,
    RollsUpAtom,
    ThroughAtom,
    TrueConst,
    Xor,
)

# Binding strength; higher binds tighter.  ``implies`` is lowest and right
# associative, matching the usual logical convention.
_PRECEDENCE = {
    Implies: 1,
    Iff: 2,
    Xor: 3,
    Or: 4,
    And: 5,
    Not: 6,
}
_ATOM_LEVEL = 7


def _level(node: Node) -> int:
    return _PRECEDENCE.get(type(node), _ATOM_LEVEL)


def _quote(constant: str) -> str:
    escaped = str(constant).replace("'", "''")
    return f"'{escaped}'"


def unparse(node: Node) -> str:
    """Render ``node`` in the concrete syntax."""
    return _render(node, 0)


def _render(node: Node, parent_level: int) -> str:
    level = _level(node)
    text = _render_bare(node)
    if level < parent_level:
        return f"({text})"
    return text


def _render_bare(node: Node) -> str:
    if isinstance(node, TrueConst):
        return "true"
    if isinstance(node, FalseConst):
        return "false"
    if isinstance(node, PathAtom):
        return " -> ".join(node.full_path)
    if isinstance(node, EqualityAtom):
        if node.category == node.root:
            return f"{node.root} = {_quote(node.constant)}"
        return f"{node.root}.{node.category} = {_quote(node.constant)}"
    if isinstance(node, ComparisonAtom):
        if node.category == node.root:
            return f"{node.root} {node.op} {node.constant}"
        return f"{node.root}.{node.category} {node.op} {node.constant}"
    if isinstance(node, RollsUpAtom):
        return f"{node.root}.{node.target}"
    if isinstance(node, ThroughAtom):
        return f"{node.root}.{node.via}.{node.target}"
    if isinstance(node, Not):
        return f"not {_render(node.child, _PRECEDENCE[Not])}"
    if isinstance(node, And):
        return " and ".join(_render(op, _PRECEDENCE[And]) for op in node.operands)
    if isinstance(node, Or):
        return " or ".join(_render(op, _PRECEDENCE[Or]) for op in node.operands)
    if isinstance(node, Xor):
        # Render left operand one level tighter to keep chains left
        # associative on re-parse.
        left = _render(node.left, _PRECEDENCE[Xor])
        right = _render(node.right, _PRECEDENCE[Xor] + 1)
        return f"{left} xor {right}"
    if isinstance(node, Iff):
        left = _render(node.left, _PRECEDENCE[Iff])
        right = _render(node.right, _PRECEDENCE[Iff] + 1)
        return f"{left} iff {right}"
    if isinstance(node, Implies):
        # Right associative: the right side may sit at the same level.
        left = _render(node.antecedent, _PRECEDENCE[Implies] + 1)
        right = _render(node.consequent, _PRECEDENCE[Implies])
        return f"{left} implies {right}"
    if isinstance(node, ExactlyOne):
        inner = ", ".join(_render(op, 0) for op in node.operands)
        return f"one({inner})"
    raise TypeError(f"cannot render node of type {type(node).__name__}")
