"""The dimension constraint language (Section 3 of the paper).

Public surface:

* AST node types (:mod:`repro.constraints.ast`);
* :func:`parse` / :func:`unparse` for the textual syntax;
* :func:`satisfies` and friends for Definition 4 semantics;
* :func:`expand` for composed-atom elimination;
* builders (:mod:`repro.constraints.builder`) for programmatic use.
"""

from repro.constraints.ast import (
    COMPARISON_OPS,
    FALSE,
    TRUE,
    And,
    Atom,
    ComparisonAtom,
    EqualityAtom,
    ExactlyOne,
    FalseConst,
    Iff,
    Implies,
    Node,
    Not,
    Or,
    PathAtom,
    RollsUpAtom,
    ThroughAtom,
    TrueConst,
    Xor,
    constraint_root,
    hash_cons,
    walk,
)
from repro.constraints.atoms import (
    PathCache,
    expand,
    shared_path_cache,
    validate_constraint,
)
from repro.constraints.builder import compare, eq, into, name_is, one, path, rollsup, through
from repro.constraints.parser import parse, parse_many
from repro.constraints.printer import unparse
from repro.constraints.semantics import (
    failures,
    satisfies,
    satisfies_all,
    satisfies_at,
    violating_members,
)
from repro.constraints.simplify import evaluate, nnf, simplify, substitute

__all__ = [
    "COMPARISON_OPS",
    "ComparisonAtom",
    "FALSE",
    "TRUE",
    "And",
    "Atom",
    "EqualityAtom",
    "ExactlyOne",
    "FalseConst",
    "Iff",
    "Implies",
    "Node",
    "Not",
    "Or",
    "PathAtom",
    "PathCache",
    "RollsUpAtom",
    "ThroughAtom",
    "TrueConst",
    "Xor",
    "compare",
    "constraint_root",
    "eq",
    "evaluate",
    "expand",
    "failures",
    "hash_cons",
    "into",
    "name_is",
    "nnf",
    "one",
    "parse",
    "parse_many",
    "path",
    "rollsup",
    "satisfies",
    "satisfies_all",
    "satisfies_at",
    "shared_path_cache",
    "simplify",
    "substitute",
    "through",
    "unparse",
    "validate_constraint",
    "violating_members",
    "walk",
]
