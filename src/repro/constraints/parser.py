"""Parser for the textual constraint syntax.

Grammar (see :mod:`repro.constraints.printer` for the correspondence with
the paper's notation)::

    constraint := implies
    implies    := iff ("implies" implies)?           # right associative
    iff        := xor ("iff" xor)*                   # left associative
    xor        := or_ ("xor" or_)*                   # left associative
    or_        := and_ ("or" and_)*
    and_       := unary ("and" unary)*
    unary      := "not" unary | primary
    primary    := "true" | "false"
                | "one" "(" constraint ("," constraint)* ")"
                | "(" constraint ")"
                | atom
    atom       := IDENT "->" IDENT ("->" IDENT)*     # path atom
                | IDENT "." IDENT "." IDENT          # through atom
                | IDENT "." IDENT "=" constant      # equality atom
                | IDENT "." IDENT CMP NUMBER         # comparison atom
                | IDENT "." IDENT                    # rolls-up atom
                | IDENT "=" constant                 # self equality atom
                | IDENT CMP NUMBER                   # self comparison atom
    constant   := "'" chars "'" | IDENT | NUMBER
    CMP        := "<" | "<=" | ">" | ">=" | "!="     # Section 6 extension

Keywords (``and or not implies iff xor one true false``) are reserved and
may not be used as category names in the textual syntax.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.constraints.ast import (
    FALSE,
    TRUE,
    And,
    ComparisonAtom,
    EqualityAtom,
    ExactlyOne,
    Iff,
    Implies,
    Node,
    Not,
    Or,
    PathAtom,
    RollsUpAtom,
    ThroughAtom,
    Xor,
)
from repro.errors import ConstraintSyntaxError

_KEYWORDS = {"and", "or", "not", "implies", "iff", "xor", "one", "true", "false"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<dot>\.)
  | (?P<cmp><=|>=|!=|<|>)
  | (?P<eq>=)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ConstraintSyntaxError(
                f"unexpected character {text[position]!r}", text, position
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing -------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.peek()
        if token.kind != kind:
            raise ConstraintSyntaxError(
                f"expected {kind}, found {token.text or 'end of input'!r}",
                self.text,
                token.position,
            )
        return self.advance()

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == "ident" and token.text == word

    def eat_keyword(self, word: str) -> bool:
        if self.at_keyword(word):
            self.advance()
            return True
        return False

    # -- grammar --------------------------------------------------------

    def parse(self) -> Node:
        node = self.parse_implies()
        token = self.peek()
        if token.kind != "eof":
            raise ConstraintSyntaxError(
                f"trailing input starting at {token.text!r}", self.text, token.position
            )
        return node

    def parse_implies(self) -> Node:
        left = self.parse_iff()
        if self.eat_keyword("implies"):
            right = self.parse_implies()
            return Implies(left, right)
        return left

    def parse_iff(self) -> Node:
        node = self.parse_xor()
        while self.eat_keyword("iff"):
            node = Iff(node, self.parse_xor())
        return node

    def parse_xor(self) -> Node:
        node = self.parse_or()
        while self.eat_keyword("xor"):
            node = Xor(node, self.parse_or())
        return node

    def parse_or(self) -> Node:
        operands = [self.parse_and()]
        while self.eat_keyword("or"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def parse_and(self) -> Node:
        operands = [self.parse_unary()]
        while self.eat_keyword("and"):
            operands.append(self.parse_unary())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def parse_unary(self) -> Node:
        if self.eat_keyword("not"):
            return Not(self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Node:
        token = self.peek()
        if token.kind == "lparen":
            self.advance()
            node = self.parse_implies()
            self.expect("rparen")
            return node
        if token.kind == "ident":
            if token.text == "true":
                self.advance()
                return TRUE
            if token.text == "false":
                self.advance()
                return FALSE
            if token.text == "one":
                return self.parse_exactly_one()
            return self.parse_atom()
        raise ConstraintSyntaxError(
            f"expected an atom, found {token.text or 'end of input'!r}",
            self.text,
            token.position,
        )

    def parse_exactly_one(self) -> Node:
        self.expect("ident")  # the keyword 'one'
        self.expect("lparen")
        operands = [self.parse_implies()]
        while self.peek().kind == "comma":
            self.advance()
            operands.append(self.parse_implies())
        self.expect("rparen")
        return ExactlyOne(tuple(operands))

    def parse_atom(self) -> Node:
        root = self.parse_category_name()
        token = self.peek()
        if token.kind == "arrow":
            path: List[str] = []
            while self.peek().kind == "arrow":
                self.advance()
                path.append(self.parse_category_name())
            return PathAtom(root, tuple(path))
        if token.kind == "eq":
            self.advance()
            constant = self.parse_constant()
            return EqualityAtom(root, root, constant)
        if token.kind == "cmp":
            op = self.advance().text
            constant = self.parse_numeric_constant()
            return ComparisonAtom(root, root, op, constant)
        if token.kind == "dot":
            self.advance()
            second = self.parse_category_name()
            token = self.peek()
            if token.kind == "dot":
                self.advance()
                third = self.parse_category_name()
                if self.peek().kind == "eq":
                    raise ConstraintSyntaxError(
                        "equality atoms take a single category "
                        "(write root.category = 'constant')",
                        self.text,
                        self.peek().position,
                    )
                return ThroughAtom(root, second, third)
            if token.kind == "eq":
                self.advance()
                constant = self.parse_constant()
                return EqualityAtom(root, second, constant)
            if token.kind == "cmp":
                op = self.advance().text
                constant = self.parse_numeric_constant()
                return ComparisonAtom(root, second, op, constant)
            return RollsUpAtom(root, second)
        raise ConstraintSyntaxError(
            f"expected '->', '.', or '=' after category {root!r}",
            self.text,
            token.position,
        )

    def parse_category_name(self) -> str:
        token = self.expect("ident")
        if token.text in _KEYWORDS:
            raise ConstraintSyntaxError(
                f"keyword {token.text!r} cannot be used as a category name",
                self.text,
                token.position,
            )
        return token.text

    def parse_numeric_constant(self) -> str:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return token.text
        raise ConstraintSyntaxError(
            "comparison atoms need a numeric constant",
            self.text,
            token.position,
        )

    def parse_constant(self) -> str:
        token = self.peek()
        if token.kind == "string":
            self.advance()
            return token.text[1:-1].replace("''", "'")
        if token.kind == "ident" and token.text not in _KEYWORDS:
            self.advance()
            return token.text
        if token.kind == "number":
            self.advance()
            return token.text
        raise ConstraintSyntaxError(
            "expected a constant (quoted string, identifier, or number)",
            self.text,
            token.position,
        )


def parse(text: str) -> Node:
    """Parse a constraint expression.

    >>> parse("Store -> City")
    Store -> City
    >>> parse("City = 'Washington' iff City.Country")
    City = 'Washington' iff City.Country
    """
    return _Parser(text).parse()


def parse_many(text: str) -> List[Node]:
    """Parse a whole constraint set: one constraint per non-blank line,
    ``#`` comments allowed."""
    constraints: List[Node] = []
    for line in text.splitlines():
        stripped = line.split("#", 1)[0].strip()
        if stripped:
            constraints.append(parse(stripped))
    return constraints
