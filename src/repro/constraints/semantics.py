"""Satisfaction of dimension constraints over dimension instances.

Definition 4 of the paper: an instance ``d`` satisfies a constraint with
root ``c`` when the translated FOL formula ``S(alpha)`` holds for *every*
member of ``MembSet_c``.  This module evaluates ``S`` directly over
:class:`~repro.core.instance.DimensionInstance` without building formulas:

* a path atom holds at ``x`` when a direct child/parent chain through the
  atom's categories exists (:func:`repro.core.rollup.has_category_chain`);
* an equality atom ``c.ci ~ k`` holds when ``x`` rolls up to (or is) a
  member of ``ci`` named ``k``;
* composed atoms are evaluated through rollup reachability, which in valid
  instances coincides with their disjunction-of-path-atoms expansion (a
  property the test suite verifies).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Tuple

from repro.constraints.ast import (
    And,
    ComparisonAtom,
    EqualityAtom,
    ExactlyOne,
    FalseConst,
    Iff,
    Implies,
    Node,
    Not,
    Or,
    PathAtom,
    RollsUpAtom,
    ThroughAtom,
    TrueConst,
    Xor,
    constraint_root,
)
from repro._types import Category, Member
from repro.errors import ConstraintError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.instance import DimensionInstance


def _has_category_chain(instance, member, categories):
    # Late import keeps the constraint package independent of the core
    # package's initializer (core imports constraints at load time).
    from repro.core.rollup import has_category_chain

    return has_category_chain(instance, member, categories)


def satisfies_at(instance: DimensionInstance, member: Member, node: Node) -> bool:
    """Evaluate ``S(node)`` at a single member (the free variable ``x``)."""
    if isinstance(node, TrueConst):
        return True
    if isinstance(node, FalseConst):
        return False
    if isinstance(node, PathAtom):
        return _has_category_chain(instance, member, node.path)
    if isinstance(node, EqualityAtom):
        return _equality_holds(instance, member, node)
    if isinstance(node, ComparisonAtom):
        return _comparison_holds(instance, member, node)
    if isinstance(node, RollsUpAtom):
        return instance.rolls_up_to_category(member, node.target)
    if isinstance(node, ThroughAtom):
        return _through_holds(instance, member, node)
    if isinstance(node, Not):
        return not satisfies_at(instance, member, node.child)
    if isinstance(node, And):
        return all(satisfies_at(instance, member, op) for op in node.operands)
    if isinstance(node, Or):
        return any(satisfies_at(instance, member, op) for op in node.operands)
    if isinstance(node, Implies):
        if not satisfies_at(instance, member, node.antecedent):
            return True
        return satisfies_at(instance, member, node.consequent)
    if isinstance(node, Iff):
        return satisfies_at(instance, member, node.left) == satisfies_at(
            instance, member, node.right
        )
    if isinstance(node, ExactlyOne):
        count = 0
        for operand in node.operands:
            if satisfies_at(instance, member, operand):
                count += 1
                if count > 1:
                    return False
        return count == 1
    if isinstance(node, Xor):
        return satisfies_at(instance, member, node.left) != satisfies_at(
            instance, member, node.right
        )
    raise ConstraintError(f"cannot evaluate node of type {type(node).__name__}")


def _names_equal(name: object, constant: object) -> bool:
    """Name comparison for equality atoms.

    Raw equality, with a numeric fallback: when both sides parse as
    floats they compare numerically, so ``= 100`` matches a member whose
    name the order-predicate machinery stored as ``100.0``.
    """
    if name == constant:
        return True
    try:
        return float(name) == float(constant)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return False


def _equality_holds(
    instance: DimensionInstance, member: Member, atom: EqualityAtom
) -> bool:
    # S(c.ci ~ k): exists xi in MembSet_ci with x <= xi and Name(xi) = k.
    if instance.category_of(member) == atom.category:
        if _names_equal(instance.name(member), atom.constant):
            return True
    target = instance.ancestor_in(member, atom.category)
    if target is None or target == member:
        return False
    return _names_equal(instance.name(target), atom.constant)


def _comparison_holds(
    instance: DimensionInstance, member: Member, atom: ComparisonAtom
) -> bool:
    # Section 6 extension: exists xi in MembSet_ci with x <= xi and
    # Name(xi) OP k.  Members with non-numeric names never satisfy a
    # comparison.
    target = instance.ancestor_in(member, atom.category)
    if target is None:
        return False
    try:
        value = float(instance.name(target))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return False
    return atom.compare(value)


def _through_holds(
    instance: DimensionInstance, member: Member, atom: ThroughAtom
) -> bool:
    c, ci, cj = atom.root, atom.via, atom.target
    if c == ci == cj:
        return True
    if c == cj and c != ci:
        return False
    if c == ci and c != cj:
        return instance.rolls_up_to_category(member, cj)
    if ci == cj and c != ci:
        return instance.rolls_up_to_category(member, ci)
    via_member = instance.ancestor_in(member, ci)
    if via_member is None:
        return False
    return instance.rolls_up_to_category(via_member, cj)


def satisfies(
    instance: DimensionInstance, node: Node, root: Optional[Category] = None
) -> bool:
    """Whether ``instance`` satisfies the constraint (Definition 4).

    The constraint must be satisfied by every member of its root category;
    an empty root category satisfies any constraint vacuously.  Constant
    expressions (no atoms) need an explicit ``root`` only if they are
    ``FALSE`` - ``TRUE`` holds regardless.
    """
    found = constraint_root(node)
    if found is None:
        found = root
    if found is None:
        # A constant constraint with no declared root: evaluate directly.
        return satisfies_at(instance, next(iter(instance.all_members())), node)
    return all(
        satisfies_at(instance, member, node) for member in instance.members(found)
    )


def violating_members(
    instance: DimensionInstance, node: Node, root: Optional[Category] = None
) -> List[Member]:
    """The members of the root category at which the constraint fails.

    Empty exactly when :func:`satisfies` is true; used by the audit tooling
    to point designers at the offending data.
    """
    found = constraint_root(node) or root
    if found is None:
        raise ConstraintError("constant constraint needs an explicit root category")
    return [
        member
        for member in instance.members(found)
        if not satisfies_at(instance, member, node)
    ]


def satisfies_all(
    instance: DimensionInstance, constraints: Iterable[Node]
) -> bool:
    """Whether the instance satisfies every constraint in the set."""
    return all(satisfies(instance, node) for node in constraints)


def failures(
    instance: DimensionInstance, constraints: Iterable[Node]
) -> Iterator[Tuple[Node, List[Member]]]:
    """Yield ``(constraint, violating members)`` for each failed constraint."""
    for node in constraints:
        bad = violating_members(instance, node) if constraint_root(node) else []
        if not constraint_root(node) and not satisfies(instance, node):
            bad = ["<constant>"]
        if bad:
            yield (node, bad)
