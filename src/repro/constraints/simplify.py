"""Boolean manipulation of constraint expressions.

Three operations the rest of the system builds on:

* :func:`substitute` - replace atoms by other expressions (the circle
  operator of Definition 8 is a substitution of truth constants for path
  atoms);
* :func:`simplify` - constant folding and structural cleanup, so that after
  a substitution the expression shrinks to the fragment that still matters;
* :func:`evaluate` - truth-table evaluation under an atom assignment, the
  engine of DIMSAT's CHECK procedure;
* :func:`nnf` - negation normal form over ``and``/``or``/``not``, used by
  the brute-force baseline and the tests.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional

from repro.constraints.ast import (
    FALSE,
    TRUE,
    And,
    Atom,
    ComparisonAtom,
    EqualityAtom,
    ExactlyOne,
    FalseConst,
    Iff,
    Implies,
    Node,
    Not,
    Or,
    PathAtom,
    RollsUpAtom,
    ThroughAtom,
    TrueConst,
    Xor,
)
from repro.errors import ConstraintError

_ATOM_TYPES = (PathAtom, EqualityAtom, ComparisonAtom, RollsUpAtom, ThroughAtom)


def substitute(node: Node, mapping: Callable[[Atom], Optional[Node]]) -> Node:
    """Replace atoms in ``node``.

    ``mapping`` receives each atom and returns a replacement expression or
    ``None`` to keep the atom unchanged.  The result is not simplified;
    compose with :func:`simplify` when constants were introduced.
    """
    if isinstance(node, _ATOM_TYPES):
        replacement = mapping(node)
        return node if replacement is None else replacement
    if isinstance(node, (TrueConst, FalseConst)):
        return node
    if isinstance(node, Not):
        return Not(substitute(node.child, mapping))
    if isinstance(node, And):
        return And(tuple(substitute(op, mapping) for op in node.operands))
    if isinstance(node, Or):
        return Or(tuple(substitute(op, mapping) for op in node.operands))
    if isinstance(node, Implies):
        return Implies(
            substitute(node.antecedent, mapping), substitute(node.consequent, mapping)
        )
    if isinstance(node, Iff):
        return Iff(substitute(node.left, mapping), substitute(node.right, mapping))
    if isinstance(node, Xor):
        return Xor(substitute(node.left, mapping), substitute(node.right, mapping))
    if isinstance(node, ExactlyOne):
        return ExactlyOne(tuple(substitute(op, mapping) for op in node.operands))
    raise ConstraintError(f"unknown node type {type(node).__name__}")


#: Bounded memo table for :func:`simplify`.  Simplification is a pure
#: function of node structure and nodes cache their hashes (see
#: :mod:`repro.constraints.ast`), so a lookup is a cheap dict probe; the
#: cap bounds memory across long-lived processes (FIFO eviction).
_SIMPLIFY_MEMO: Dict[Node, Node] = {}
_SIMPLIFY_MEMO_MAX = 65536


def clear_simplify_memo() -> None:
    """Drop the :func:`simplify` memo table (tests, memory pressure)."""
    _SIMPLIFY_MEMO.clear()


def simplify(node: Node) -> Node:
    """Constant-fold and flatten ``node``.

    The result is logically equivalent and contains ``TRUE``/``FALSE`` only
    if the whole expression is constant.  Simplification is syntactic (no
    SAT reasoning): it exists to shrink circle-operator results, not to
    decide them.  Results are memoized on node structure, so re-simplifying
    a shared subexpression costs one dictionary lookup.
    """
    if isinstance(node, _ATOM_TYPES) or isinstance(node, (TrueConst, FalseConst)):
        return node
    cached = _SIMPLIFY_MEMO.get(node)
    if cached is not None:
        return cached
    folded = _simplify_uncached(node)
    if len(_SIMPLIFY_MEMO) >= _SIMPLIFY_MEMO_MAX:
        _SIMPLIFY_MEMO.pop(next(iter(_SIMPLIFY_MEMO)))
    _SIMPLIFY_MEMO[node] = folded
    return folded


def _simplify_uncached(node: Node) -> Node:
    if isinstance(node, _ATOM_TYPES) or isinstance(node, (TrueConst, FalseConst)):
        return node
    if isinstance(node, Not):
        child = simplify(node.child)
        if isinstance(child, TrueConst):
            return FALSE
        if isinstance(child, FalseConst):
            return TRUE
        if isinstance(child, Not):
            return child.child
        return Not(child)
    if isinstance(node, And):
        operands: List[Node] = []
        for operand in node.operands:
            folded = simplify(operand)
            if isinstance(folded, FalseConst):
                return FALSE
            if isinstance(folded, TrueConst):
                continue
            operands.append(folded)
        if not operands:
            return TRUE
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))
    if isinstance(node, Or):
        operands = []
        for operand in node.operands:
            folded = simplify(operand)
            if isinstance(folded, TrueConst):
                return TRUE
            if isinstance(folded, FalseConst):
                continue
            operands.append(folded)
        if not operands:
            return FALSE
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))
    if isinstance(node, Implies):
        antecedent = simplify(node.antecedent)
        consequent = simplify(node.consequent)
        if isinstance(antecedent, FalseConst) or isinstance(consequent, TrueConst):
            return TRUE
        if isinstance(antecedent, TrueConst):
            return consequent
        if isinstance(consequent, FalseConst):
            return simplify(Not(antecedent))
        return Implies(antecedent, consequent)
    if isinstance(node, Iff):
        left = simplify(node.left)
        right = simplify(node.right)
        if isinstance(left, TrueConst):
            return right
        if isinstance(right, TrueConst):
            return left
        if isinstance(left, FalseConst):
            return simplify(Not(right))
        if isinstance(right, FalseConst):
            return simplify(Not(left))
        return Iff(left, right)
    if isinstance(node, Xor):
        left = simplify(node.left)
        right = simplify(node.right)
        if isinstance(left, FalseConst):
            return right
        if isinstance(right, FalseConst):
            return left
        if isinstance(left, TrueConst):
            return simplify(Not(right))
        if isinstance(right, TrueConst):
            return simplify(Not(left))
        return Xor(left, right)
    if isinstance(node, ExactlyOne):
        operands = []
        true_count = 0
        for operand in node.operands:
            folded = simplify(operand)
            if isinstance(folded, TrueConst):
                true_count += 1
                if true_count > 1:
                    return FALSE
            elif isinstance(folded, FalseConst):
                continue
            else:
                operands.append(folded)
        if true_count == 1:
            # Exactly one operand is already true: all others must be false.
            if not operands:
                return TRUE
            negated = [simplify(Not(op)) for op in operands]
            if len(negated) == 1:
                return negated[0]
            return And(tuple(negated))
        if not operands:
            return FALSE
        if len(operands) == 1:
            return operands[0]
        return ExactlyOne(tuple(operands))
    raise ConstraintError(f"unknown node type {type(node).__name__}")


def evaluate(node: Node, assignment: Callable[[Atom], bool]) -> bool:
    """Truth-table evaluation under an atom-level assignment.

    ``assignment`` must return the truth value of every atom the expression
    mentions; this is how CHECK tests a c-assignment against the reduced
    constraint set.
    """
    if isinstance(node, TrueConst):
        return True
    if isinstance(node, FalseConst):
        return False
    if isinstance(node, _ATOM_TYPES):
        return assignment(node)
    if isinstance(node, Not):
        return not evaluate(node.child, assignment)
    if isinstance(node, And):
        return all(evaluate(op, assignment) for op in node.operands)
    if isinstance(node, Or):
        return any(evaluate(op, assignment) for op in node.operands)
    if isinstance(node, Implies):
        return (not evaluate(node.antecedent, assignment)) or evaluate(
            node.consequent, assignment
        )
    if isinstance(node, Iff):
        return evaluate(node.left, assignment) == evaluate(node.right, assignment)
    if isinstance(node, Xor):
        return evaluate(node.left, assignment) != evaluate(node.right, assignment)
    if isinstance(node, ExactlyOne):
        return sum(1 for op in node.operands if evaluate(op, assignment)) == 1
    raise ConstraintError(f"unknown node type {type(node).__name__}")


def nnf(node: Node, negate: bool = False) -> Node:
    """Negation normal form over ``and``/``or``/``not``/atoms.

    ``Implies``, ``Iff``, ``Xor``, and ``ExactlyOne`` are expanded away.
    Negations end up directly above atoms.
    """
    if isinstance(node, TrueConst):
        return FALSE if negate else TRUE
    if isinstance(node, FalseConst):
        return TRUE if negate else FALSE
    if isinstance(node, _ATOM_TYPES):
        return Not(node) if negate else node
    if isinstance(node, Not):
        return nnf(node.child, not negate)
    if isinstance(node, And):
        parts = tuple(nnf(op, negate) for op in node.operands)
        return Or(parts) if negate else And(parts)
    if isinstance(node, Or):
        parts = tuple(nnf(op, negate) for op in node.operands)
        return And(parts) if negate else Or(parts)
    if isinstance(node, Implies):
        return nnf(Or((Not(node.antecedent), node.consequent)), negate)
    if isinstance(node, Iff):
        both = And((node.left, node.right))
        neither = And((Not(node.left), Not(node.right)))
        return nnf(Or((both, neither)), negate)
    if isinstance(node, Xor):
        return nnf(Not(Iff(node.left, node.right)), negate)
    if isinstance(node, ExactlyOne):
        return nnf(_exactly_one_expansion(node.operands), negate)
    raise ConstraintError(f"unknown node type {type(node).__name__}")


def _exactly_one_expansion(operands: Iterable[Node]) -> Node:
    """``one(a1..an)`` as a plain disjunction of 'ai and no other' terms."""
    ops = tuple(operands)
    terms: List[Node] = []
    for index, chosen in enumerate(ops):
        others = [Not(other) for j, other in enumerate(ops) if j != index]
        if others:
            terms.append(And((chosen, *others)))
        else:
            terms.append(chosen)
    if len(terms) == 1:
        return terms[0]
    return Or(tuple(terms))


def distinct_atoms(nodes: Iterable[Node]) -> FrozenSet[Atom]:
    """The set of distinct atoms mentioned across a constraint set."""
    found: set = set()
    for node in nodes:
        found.update(node.atoms())
    return frozenset(found)


def constant_substitution(truth: Mapping[Atom, bool]) -> Callable[[Atom], Optional[Node]]:
    """A :func:`substitute` mapping that pins atoms to given truth values."""

    def mapper(atom: Atom) -> Optional[Node]:
        if atom in truth:
            return TRUE if truth[atom] else FALSE
        return None

    return mapper
