"""Abstract syntax of dimension constraints (Definition 3).

A dimension constraint over a hierarchy schema ``G`` with root category
``c`` is a Boolean combination of atoms rooted at ``c``:

* **path atoms** ``c_c1_..._cn`` - there is a direct child/parent chain from
  the member through categories ``c1 ... cn``;
* **equality atoms** ``c.ci ~ k`` - the member rolls up to a member of
  ``ci`` named ``k``;
* **composed path atoms** ``c.ci`` (rolls up to ``ci``) and ``c.ci.cj``
  (rolls up to ``cj`` passing through ``ci``), which the paper defines as
  shorthands for disjunctions of path atoms; we keep them as first-class
  nodes and expand them on demand (:mod:`repro.constraints.atoms`).

Connectives: negation, conjunction, disjunction, implication, equivalence,
exclusive disjunction, the constants ``TRUE``/``FALSE``, and the paper's
``(.)A`` operator :class:`ExactlyOne` ("there is exactly one true atom in
A").

All nodes are immutable and hashable; structural equality is definitional.
Structural hashes are computed once per node and cached, and
:func:`hash_cons` interns nodes so structurally equal expressions become
the *same* object - the satisfiability kernel keys its memo tables on
nodes, so repeated reductions of a shared constraint set cost dictionary
lookups instead of tree walks.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, fields
from typing import Dict, Iterator, Optional, Tuple

from repro._types import Category


class Node:
    """Base class of constraint expression nodes."""

    __slots__ = ()

    def atoms(self) -> Iterator["Atom"]:
        """Yield every atom occurring in the expression, left to right."""
        raise NotImplementedError

    def children(self) -> Tuple["Node", ...]:
        """Direct sub-expressions."""
        raise NotImplementedError

    # Operator sugar so tests and examples can write ``a & b | ~c``.
    def __and__(self, other: "Node") -> "And":
        return And((self, other))

    def __or__(self, other: "Node") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)

    def implies(self, other: "Node") -> "Implies":
        """``self IMPLIES other`` (the paper's horseshoe)."""
        return Implies(self, other)

    def iff(self, other: "Node") -> "Iff":
        """``self IFF other`` (the paper's triple bar)."""
        return Iff(self, other)

    def xor(self, other: "Node") -> "Xor":
        """``self XOR other`` (the paper's circled plus)."""
        return Xor(self, other)

    def __repr__(self) -> str:  # pragma: no cover - delegated to printer
        from repro.constraints.printer import unparse

        return unparse(self)


class Atom(Node):
    """Base class of atoms.  Every atom has a root category."""

    __slots__ = ()
    root: Category

    def atoms(self) -> Iterator["Atom"]:
        yield self

    def children(self) -> Tuple[Node, ...]:
        return ()


@dataclass(frozen=True, repr=False)
class PathAtom(Atom):
    """``root_c1_..._cn``: a direct chain through ``path`` exists.

    ``path`` excludes the root; the full category sequence is
    ``(root,) + path`` and must be a simple path of the hierarchy schema.
    """

    root: Category
    path: Tuple[Category, ...]

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("a path atom needs at least one category after the root")
        object.__setattr__(self, "path", tuple(self.path))

    @property
    def full_path(self) -> Tuple[Category, ...]:
        """The category sequence including the root."""
        return (self.root,) + self.path

    @property
    def target(self) -> Category:
        """The last category of the path."""
        return self.path[-1]


@dataclass(frozen=True, repr=False)
class EqualityAtom(Atom):
    """``root.category ~ constant``: the member rolls up to a member of
    ``category`` whose ``Name`` is ``constant``.

    When ``category == root`` the atom constrains the member's own name
    (the paper abbreviates this as ``c ~ k``).
    """

    root: Category
    category: Category
    constant: str


#: Operators allowed in comparison atoms (Section 6 extension).
COMPARISON_OPS = ("<", "<=", ">", ">=", "!=")


@dataclass(frozen=True, repr=False)
class ComparisonAtom(Atom):
    """``root.category OP constant`` with an order predicate.

    The Section 6 extension: "We could consider further built-in
    predicates over attributes, such as an order relation, to extend
    equality atoms."  The atom holds at a member ``x`` when ``x`` rolls up
    to a member of ``category`` whose (numeric) name satisfies the
    comparison.  ``constant`` is kept as written (a numeric literal);
    members with non-numeric names never satisfy a comparison.
    """

    root: Category
    category: Category
    op: str
    constant: str

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")
        try:
            float(self.constant)
        except (TypeError, ValueError):
            raise ValueError(
                f"comparison atoms need a numeric constant, got {self.constant!r}"
            ) from None

    @property
    def threshold(self) -> float:
        """The numeric value of the constant."""
        return float(self.constant)

    def compare(self, value: float) -> bool:
        """Apply the operator to a concrete numeric value."""
        if self.op == "<":
            return value < self.threshold
        if self.op == "<=":
            return value <= self.threshold
        if self.op == ">":
            return value > self.threshold
        if self.op == ">=":
            return value >= self.threshold
        return value != self.threshold


@dataclass(frozen=True, repr=False)
class RollsUpAtom(Atom):
    """Composed path atom ``root.target``: the member rolls up to
    ``target``.  Shorthand for the disjunction of all simple path atoms
    from ``root`` ending at ``target`` (or ``TRUE`` when
    ``root == target``)."""

    root: Category
    target: Category


@dataclass(frozen=True, repr=False)
class ThroughAtom(Atom):
    """Composed path atom ``root.via.target``: the member rolls up to
    ``target`` passing through ``via`` (Section 3.3)."""

    root: Category
    via: Category
    target: Category


@dataclass(frozen=True, repr=False)
class TrueConst(Node):
    """The true proposition."""

    def atoms(self) -> Iterator[Atom]:
        return iter(())

    def children(self) -> Tuple[Node, ...]:
        return ()


@dataclass(frozen=True, repr=False)
class FalseConst(Node):
    """The false proposition."""

    def atoms(self) -> Iterator[Atom]:
        return iter(())

    def children(self) -> Tuple[Node, ...]:
        return ()


TRUE = TrueConst()
FALSE = FalseConst()


@dataclass(frozen=True, repr=False)
class Not(Node):
    """Negation."""

    child: Node

    def atoms(self) -> Iterator[Atom]:
        return self.child.atoms()

    def children(self) -> Tuple[Node, ...]:
        return (self.child,)


class _NaryNode(Node):
    """Shared behaviour of n-ary connectives."""

    __slots__ = ()
    operands: Tuple[Node, ...]

    def atoms(self) -> Iterator[Atom]:
        for operand in self.operands:
            yield from operand.atoms()

    def children(self) -> Tuple[Node, ...]:
        return self.operands


@dataclass(frozen=True, repr=False)
class And(_NaryNode):
    """Conjunction of two or more operands.

    Nested conjunctions are flattened (conjunction is associative), which
    gives a canonical shape: an ``And`` never directly contains an ``And``.
    """

    operands: Tuple[Node, ...]

    def __post_init__(self) -> None:
        flat: list = []
        for operand in self.operands:
            if isinstance(operand, And):
                flat.extend(operand.operands)
            else:
                flat.append(operand)
        object.__setattr__(self, "operands", tuple(flat))
        if len(self.operands) < 2:
            raise ValueError("And needs at least two operands")


@dataclass(frozen=True, repr=False)
class Or(_NaryNode):
    """Disjunction of two or more operands, flattened like :class:`And`."""

    operands: Tuple[Node, ...]

    def __post_init__(self) -> None:
        flat: list = []
        for operand in self.operands:
            if isinstance(operand, Or):
                flat.extend(operand.operands)
            else:
                flat.append(operand)
        object.__setattr__(self, "operands", tuple(flat))
        if len(self.operands) < 2:
            raise ValueError("Or needs at least two operands")


@dataclass(frozen=True, repr=False)
class Implies(Node):
    """Material implication ``antecedent IMPLIES consequent``."""

    antecedent: Node
    consequent: Node

    def atoms(self) -> Iterator[Atom]:
        yield from self.antecedent.atoms()
        yield from self.consequent.atoms()

    def children(self) -> Tuple[Node, ...]:
        return (self.antecedent, self.consequent)


@dataclass(frozen=True, repr=False)
class Iff(Node):
    """Equivalence."""

    left: Node
    right: Node

    def atoms(self) -> Iterator[Atom]:
        yield from self.left.atoms()
        yield from self.right.atoms()

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, repr=False)
class Xor(Node):
    """Exclusive disjunction."""

    left: Node
    right: Node

    def atoms(self) -> Iterator[Atom]:
        yield from self.left.atoms()
        yield from self.right.atoms()

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, repr=False)
class ExactlyOne(_NaryNode):
    """The paper's ``(.)A`` operator: exactly one operand is true.

    With a single operand it degenerates to that operand; with none it is
    unsatisfiable.  We require at least one operand and keep the node n-ary
    because Theorem 1 produces it over arbitrary category sets.
    """

    operands: Tuple[Node, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))
        if not self.operands:
            raise ValueError("ExactlyOne needs at least one operand")


def constraint_root(node: Node) -> Optional[Category]:
    """The shared root category of the atoms in ``node``.

    Returns ``None`` for constant expressions (no atoms).  Raises
    ``ValueError`` if atoms with different roots are mixed, which
    Definition 3 forbids.
    """
    root: Optional[Category] = None
    for atom in node.atoms():
        if root is None:
            root = atom.root
        elif atom.root != root:
            raise ValueError(
                f"atoms with different roots in one constraint: "
                f"{root!r} and {atom.root!r}"
            )
    return root


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and every sub-expression, pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)


# ----------------------------------------------------------------------
# Hash caching and hash-consing
# ----------------------------------------------------------------------
#
# The decision procedures (DIMSAT's circle operator, simplification, the
# schema-level decision cache) all use constraint nodes as dictionary
# keys.  The dataclass-generated ``__hash__`` rehashes the whole subtree
# on every lookup; here every node caches its structural hash after the
# first computation, and ``__eq__`` gets an identity fast path plus a
# cached-hash early exit, so interned nodes compare in O(1).

_NODE_CLASSES = (
    PathAtom,
    EqualityAtom,
    ComparisonAtom,
    RollsUpAtom,
    ThroughAtom,
    TrueConst,
    FalseConst,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Xor,
    ExactlyOne,
)


def _field_values(node: Node) -> Tuple[object, ...]:
    """The dataclass field values of a node, in declaration order."""
    return tuple(getattr(node, f.name) for f in fields(node))


def _install_fast_identity(cls: type) -> None:
    base_hash = cls.__hash__
    base_eq = cls.__eq__

    def cached_hash(self) -> int:
        try:
            return self._hash_cache
        except AttributeError:
            value = base_hash(self)
            object.__setattr__(self, "_hash_cache", value)
            return value

    def fast_eq(self, other: object):
        if self is other:
            return True
        if self.__class__ is not other.__class__:
            return NotImplemented
        if cached_hash(self) != cached_hash(other):
            return False
        return base_eq(self, other)

    cls.__hash__ = cached_hash  # type: ignore[assignment]
    cls.__eq__ = fast_eq  # type: ignore[assignment]


for _cls in _NODE_CLASSES:
    _install_fast_identity(_cls)
del _cls


#: Intern table for :func:`hash_cons`.  Keys are ``(class, *fields)``
#: tuples; values are the canonical nodes, held weakly so expressions of
#: discarded schemas can be collected.
_INTERN_TABLE: "weakref.WeakValueDictionary[Tuple[object, ...], Node]" = (
    weakref.WeakValueDictionary()
)

#: Guards the check-then-insert in :func:`_intern`.  Without it, two
#: threads interning equal nodes could each insert their own copy and
#: hand out *different* canonical objects, breaking every identity-keyed
#: memo downstream (circle cache, decision cache).
_INTERN_LOCK = threading.Lock()


def _intern(node: Node) -> Node:
    key = (node.__class__,) + _field_values(node)
    with _INTERN_LOCK:
        canonical = _INTERN_TABLE.get(key)
        if canonical is not None:
            return canonical
        _INTERN_TABLE[key] = node
        return node


def hash_cons(node: Node) -> Node:
    """Return the canonical representative of ``node``.

    Structurally equal expressions map to the identical object (bottom-up
    interning), so ``hash_cons(a) is hash_cons(b)`` exactly when
    ``a == b``.  :class:`~repro.core.schema.DimensionSchema` interns its
    constraint set at construction, which makes the circle-operator memo
    and the decision cache hit by object identity.
    """
    if isinstance(node, TrueConst):
        return TRUE
    if isinstance(node, FalseConst):
        return FALSE
    if isinstance(node, Atom):
        return _intern(node)
    if isinstance(node, Not):
        child = hash_cons(node.child)
        return _intern(node if child is node.child else Not(child))
    if isinstance(node, (And, Or, ExactlyOne)):
        operands = tuple(hash_cons(op) for op in node.operands)
        if all(a is b for a, b in zip(operands, node.operands)):
            return _intern(node)
        return _intern(node.__class__(operands))
    if isinstance(node, Implies):
        antecedent = hash_cons(node.antecedent)
        consequent = hash_cons(node.consequent)
        if antecedent is node.antecedent and consequent is node.consequent:
            return _intern(node)
        return _intern(Implies(antecedent, consequent))
    if isinstance(node, (Iff, Xor)):
        left = hash_cons(node.left)
        right = hash_cons(node.right)
        if left is node.left and right is node.right:
            return _intern(node)
        return _intern(node.__class__(left, right))
    raise TypeError(f"cannot intern node of type {type(node).__name__}")


def intern_table_size() -> int:
    """Number of live interned nodes (diagnostics / cache-stats report)."""
    return len(_INTERN_TABLE)
