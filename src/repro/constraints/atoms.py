"""Composed path atom expansion and constraint validation.

Section 3.1 defines the composed path atom ``c.ci`` and Section 3.3 the
triple form ``c.ci.cj`` as shorthands over the path atoms of a hierarchy
schema.  :func:`expand` rewrites an arbitrary constraint expression into one
mentioning only plain :class:`~repro.constraints.ast.PathAtom` and
:class:`~repro.constraints.ast.EqualityAtom` nodes, which is the form the
DIMSAT circle operator works on.

:func:`validate_constraint` enforces Definition 3: a single root distinct
from ``All``, categories drawn from the schema, and path atoms naming
simple paths of the schema.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.constraints.ast import (
    FALSE,
    TRUE,
    And,
    Atom,
    ComparisonAtom,
    EqualityAtom,
    ExactlyOne,
    FalseConst,
    Iff,
    Implies,
    Node,
    Not,
    Or,
    PathAtom,
    RollsUpAtom,
    ThroughAtom,
    TrueConst,
    Xor,
    constraint_root,
)
from repro._types import ALL, Category
from repro.errors import ConstraintError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hierarchy import HierarchySchema


class PathCache:
    """Memoized simple-path enumeration for one hierarchy schema.

    Composed-atom expansion and Theorem 1 both enumerate the simple paths
    between category pairs repeatedly; sharing a cache makes schema-level
    reasoning over large schemas practical.
    """

    def __init__(self, hierarchy: HierarchySchema) -> None:
        self.hierarchy = hierarchy
        self._paths: Dict[Tuple[Category, Category], Tuple[Tuple[Category, ...], ...]] = {}

    def paths(self, start: Category, end: Category) -> Tuple[Tuple[Category, ...], ...]:
        """All simple paths from ``start`` to ``end``, cached."""
        key = (start, end)
        cached = self._paths.get(key)
        if cached is None:
            cached = tuple(self.hierarchy.simple_paths(start, end))
            self._paths[key] = cached
        return cached


#: One shared :class:`PathCache` per live hierarchy schema.  Implication
#: and summarizability derive many transient schemas over the *same*
#: hierarchy (one per tested constraint); routing them all through this
#: registry means the simple-path enumeration for a hierarchy runs at
#: most once per category pair, process-wide.
_SHARED_PATH_CACHES: "weakref.WeakKeyDictionary[HierarchySchema, PathCache]" = (
    weakref.WeakKeyDictionary()
)


def shared_path_cache(hierarchy: HierarchySchema) -> PathCache:
    """The process-wide :class:`PathCache` for ``hierarchy``.

    Hierarchies compare structurally, so equal schema objects share one
    cache entry; the registry holds its keys weakly and follows the
    hierarchy's lifetime.
    """
    cache = _SHARED_PATH_CACHES.get(hierarchy)
    if cache is None:
        cache = PathCache(hierarchy)
        _SHARED_PATH_CACHES[hierarchy] = cache
    return cache


def expand_rolls_up(
    atom: RollsUpAtom, cache: PathCache
) -> Node:
    """Expand ``c.ci`` per Section 3.1.

    ``c.c`` is ``TRUE``; otherwise the disjunction of all path atoms from
    ``c`` ending at ``ci`` (``FALSE`` when the schema has no such path).
    """
    if atom.root == atom.target:
        return TRUE
    options: List[Node] = [
        PathAtom(atom.root, path[1:]) for path in cache.paths(atom.root, atom.target)
    ]
    return _disjoin(options)


def expand_through(atom: ThroughAtom, cache: PathCache) -> Node:
    """Expand ``c.ci.cj`` per the five cases of Section 3.3."""
    c, ci, cj = atom.root, atom.via, atom.target
    if c == ci == cj:
        return TRUE
    if c == cj and c != ci:
        # Rolling up to one's own category through another category would
        # need an ancestor in the member's category, forbidden by (C6).
        return FALSE
    if c == ci and c != cj:
        return expand_rolls_up(RollsUpAtom(c, cj), cache)
    if ci == cj and c != ci:
        return expand_rolls_up(RollsUpAtom(c, ci), cache)
    # All three categories distinct: simple paths from c to cj through ci.
    options: List[Node] = [
        PathAtom(c, path[1:]) for path in cache.paths(c, cj) if ci in path[1:-1]
    ]
    return _disjoin(options)


def _disjoin(options: List[Node]) -> Node:
    if not options:
        return FALSE
    if len(options) == 1:
        return options[0]
    return Or(tuple(options))


def expand(node: Node, hierarchy: HierarchySchema, cache: Optional[PathCache] = None) -> Node:
    """Rewrite ``node`` so it mentions only plain path and equality atoms.

    The result is logically equivalent over every instance of the schema
    (the disjunction semantics of composed atoms coincides with rollup
    reachability in valid instances; see DESIGN.md and the property tests).
    """
    cache = cache or shared_path_cache(hierarchy)

    def rewrite(n: Node) -> Node:
        if isinstance(n, RollsUpAtom):
            return expand_rolls_up(n, cache)
        if isinstance(n, ThroughAtom):
            return expand_through(n, cache)
        if isinstance(n, (PathAtom, EqualityAtom, ComparisonAtom, TrueConst, FalseConst)):
            return n
        if isinstance(n, Not):
            return Not(rewrite(n.child))
        if isinstance(n, And):
            return And(tuple(rewrite(op) for op in n.operands))
        if isinstance(n, Or):
            return Or(tuple(rewrite(op) for op in n.operands))
        if isinstance(n, Implies):
            return Implies(rewrite(n.antecedent), rewrite(n.consequent))
        if isinstance(n, Iff):
            return Iff(rewrite(n.left), rewrite(n.right))
        if isinstance(n, Xor):
            return Xor(rewrite(n.left), rewrite(n.right))
        if isinstance(n, ExactlyOne):
            return ExactlyOne(tuple(rewrite(op) for op in n.operands))
        raise ConstraintError(f"unknown constraint node {type(n).__name__}")

    return rewrite(node)


def validate_constraint(
    hierarchy: HierarchySchema, node: Node, root: Optional[Category] = None
) -> Category:
    """Check Definition 3 and return the constraint's root category.

    Parameters
    ----------
    hierarchy:
        The schema the constraint is declared over.
    node:
        The constraint expression.
    root:
        Optional expected root.  Constant expressions (no atoms) take this
        as their root; it is then required.

    Raises
    ------
    ConstraintError
        On mixed roots, a root of ``All``, unknown categories, or a path
        atom that is not a simple path of the schema.
    """
    try:
        found = constraint_root(node)
    except ValueError as exc:
        raise ConstraintError(str(exc)) from None
    if found is None:
        if root is None:
            raise ConstraintError(
                "constant constraint needs an explicit root category"
            )
        found = root
    elif root is not None and root != found:
        raise ConstraintError(
            f"constraint root is {found!r}, expected {root!r}"
        )
    if found == ALL:
        raise ConstraintError("constraints rooted at All are not allowed (Definition 3)")
    if not hierarchy.has_category(found):
        raise ConstraintError(f"root category {found!r} is not in the schema")

    for atom in node.atoms():
        _validate_atom(hierarchy, atom)
    return found


def _validate_atom(hierarchy: HierarchySchema, atom: Atom) -> None:
    if isinstance(atom, PathAtom):
        for category in atom.full_path:
            if not hierarchy.has_category(category):
                raise ConstraintError(
                    f"path atom mentions unknown category {category!r}"
                )
        if not hierarchy.is_simple_path(atom.full_path):
            raise ConstraintError(
                f"path atom {'_'.join(atom.full_path)} is not a simple path "
                f"of the hierarchy schema"
            )
    elif isinstance(atom, (EqualityAtom, ComparisonAtom)):
        for category in (atom.root, atom.category):
            if not hierarchy.has_category(category):
                raise ConstraintError(
                    f"equality atom mentions unknown category {category!r}"
                )
    elif isinstance(atom, RollsUpAtom):
        for category in (atom.root, atom.target):
            if not hierarchy.has_category(category):
                raise ConstraintError(
                    f"composed atom mentions unknown category {category!r}"
                )
    elif isinstance(atom, ThroughAtom):
        for category in (atom.root, atom.via, atom.target):
            if not hierarchy.has_category(category):
                raise ConstraintError(
                    f"composed atom mentions unknown category {category!r}"
                )
    else:  # pragma: no cover - defensive
        raise ConstraintError(f"unknown atom type {type(atom).__name__}")
