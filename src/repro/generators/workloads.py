"""Workload generators: instances from schemas, fact tables, and query
mixes for the benchmarks.

The key tool is :func:`instance_from_frozen`: a schema's frozen dimensions
(Theorem 3's minimal models) are exactly the structural "templates" its
data can exhibit, so stamping out ``k`` copies of each and sharing the
members whose names the constraints pin down yields realistic instances of
any size that are guaranteed to satisfy the schema - no rejection
sampling needed.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro._types import ALL, Category, Member
from repro.constraints.ast import Node, Not
from repro.constraints.printer import unparse
from repro.core.dimsat import enumerate_frozen_dimensions
from repro.core.frozen import FrozenDimension
from repro.core.instance import TOP_MEMBER, DimensionInstance
from repro.core.schema import NK, DimensionSchema
from repro.errors import SchemaError
from repro.olap.facttable import FactTable


def instance_from_frozen(
    schema: DimensionSchema,
    root: Category,
    copies: int = 3,
    seed: int = 0,
    fan_out: int = 2,
) -> DimensionInstance:
    """Build a populated instance by stamping out frozen dimensions.

    For each frozen dimension of ``schema`` with the given root, ``copies``
    chains are instantiated.  Members of categories whose name the frozen
    dimension pins to a constant are *shared* across copies (all Canadian
    chains meet in the one member named ``Canada``), members with free
    (``nk``) names are distinct per copy, and each bottom member is
    replicated ``fan_out`` times to give fact tables something to
    aggregate.

    The result satisfies every constraint of the schema by construction
    (each chain is a materialized frozen dimension), which the integration
    tests verify.
    """
    frozen = enumerate_frozen_dimensions(schema, root)
    if not frozen:
        raise SchemaError(f"category {root!r} is unsatisfiable; no instance exists")

    rng = random.Random(seed)
    members: Dict[Member, Category] = {}
    names: Dict[Member, object] = {}
    edges: List[Tuple[Member, Member]] = []

    def shareable_categories(frozen_dim: FrozenDimension) -> frozenset:
        """Categories safe to share across copies: their name is pinned
        and so is every category above them in the template, so the whole
        shared chain coincides and partitioning (C2) is preserved."""
        sub = frozen_dim.subhierarchy
        safe = set()
        for category in sub.categories:
            if category == ALL:
                continue
            if frozen_dim.name_of(category) == NK:
                continue
            above = [
                c
                for c in sub.categories
                if c not in (category, ALL) and sub.reaches(category, c)
            ]
            if all(frozen_dim.name_of(c) != NK for c in above):
                safe.add(category)
        return frozenset(safe)

    shareable: Dict[int, frozenset] = {}

    def member_for(
        template_index: int,
        copy_index: int,
        leaf_index: int,
        frozen_dim: FrozenDimension,
        category: Category,
    ) -> Member:
        if category == ALL:
            return TOP_MEMBER
        pinned = frozen_dim.name_of(category)
        if pinned != NK and category in shareable[template_index]:
            # Shared member: one per (category, constant) across the
            # whole instance.
            member = f"{category}:{pinned}"
            members[member] = category
            names[member] = pinned
            return member
        if category == root:
            member = f"{category}:{template_index}.{copy_index}.{leaf_index}"
        else:
            member = f"{category}:{template_index}.{copy_index}"
        members[member] = category
        names[member] = pinned if pinned != NK else f"{member}-name"
        return member

    for template_index, frozen_dim in enumerate(frozen):
        sub = frozen_dim.subhierarchy
        shareable[template_index] = shareable_categories(frozen_dim)
        for copy_index in range(copies):
            leaves = fan_out if fan_out > 0 else 1
            for child_cat, parent_cat in sorted(sub.edges):
                if child_cat == root:
                    for leaf_index in range(leaves):
                        child = member_for(
                            template_index, copy_index, leaf_index, frozen_dim, child_cat
                        )
                        parent = member_for(
                            template_index, copy_index, 0, frozen_dim, parent_cat
                        )
                        edges.append((child, parent))
                else:
                    child = member_for(
                        template_index, copy_index, 0, frozen_dim, child_cat
                    )
                    parent = member_for(
                        template_index, copy_index, 0, frozen_dim, parent_cat
                    )
                    edges.append((child, parent))

    unique_edges = sorted(set(edges))
    rng.shuffle(unique_edges)
    return DimensionInstance(schema.hierarchy, members, unique_edges, names=names)


def random_fact_table(
    instance: DimensionInstance,
    n_facts: int,
    measures: Sequence[str] = ("amount",),
    seed: int = 0,
    low: float = 1.0,
    high: float = 100.0,
) -> FactTable:
    """A fact table with ``n_facts`` rows over random base members."""
    rng = random.Random(seed)
    base = sorted(instance.base_members(), key=repr)
    if not base:
        raise SchemaError("the instance has no base members to attach facts to")
    rows = []
    for _ in range(n_facts):
        member = rng.choice(base)
        values = {m: round(rng.uniform(low, high), 2) for m in measures}
        rows.append((member, values))
    return FactTable(instance, rows)


def implication_workload(
    schema: DimensionSchema,
    n_queries: int = 20,
    seed: int = 0,
) -> List[Node]:
    """A mix of constraints to feed the implication tester.

    Half the queries are constraints already in SIGMA (trivially implied,
    answered fast), half are negations of SIGMA members or random path
    atoms (usually not implied, requiring search).  The mix mirrors what
    an aggregate navigator generates: mostly positive checks with some
    refutations.
    """
    rng = random.Random(seed)
    pool = list(schema.constraints)
    if not pool:
        raise SchemaError("the schema has no constraints to build a workload from")
    queries: List[Node] = []
    for index in range(n_queries):
        template = rng.choice(pool)
        if index % 2 == 0:
            queries.append(template)
        else:
            queries.append(Not(template))
    return queries


def summarizability_workload(
    schema: DimensionSchema,
    n_queries: int = 20,
    seed: int = 0,
    max_sources: int = 2,
) -> List[Tuple[Category, Tuple[Category, ...]]]:
    """Random ``(target, sources)`` summarizability questions.

    Sources are drawn from the categories strictly below the target, the
    situation an aggregate navigator actually queries.
    """
    rng = random.Random(seed)
    hierarchy = schema.hierarchy
    targets = sorted(
        c
        for c in hierarchy.categories
        if c != ALL and hierarchy.descendants(c)
    )
    if not targets:
        raise SchemaError("the hierarchy has no aggregable categories")
    queries: List[Tuple[Category, Tuple[Category, ...]]] = []
    for _ in range(n_queries):
        target = rng.choice(targets)
        below = sorted(hierarchy.descendants(target) - {ALL})
        size = rng.randint(1, min(max_sources, len(below)))
        sources = tuple(sorted(rng.sample(below, size)))
        queries.append((target, sources))
    return queries


#: The operation kinds a mixed trace may contain, with their default
#: frequency weights.  ``decide`` traffic dominates (as it does for a
#: navigator under load), edits are rare but regular - the realistic
#: shape of a dimension under continuous administration.
DEFAULT_TRACE_WEIGHTS: Mapping[str, float] = {
    "dimsat": 0.30,
    "implies": 0.25,
    "summarizable": 0.20,
    "navigate": 0.15,
    "edit": 0.10,
}


def _implied_weakening(schema: DimensionSchema, rng: random.Random) -> Node:
    """A constraint implied by SIGMA but (usually) not textually in it.

    ``alpha or beta`` for ``alpha`` in SIGMA and a random path atom
    ``beta`` is implied by ``alpha`` alone, so adding it must never flip
    any verdict - the core metamorphic edit of the soak harness.  All
    atoms of one constraint must share a root (Definition 4), so ``beta``
    is a path atom rooted at ``alpha``'s own root category.
    """
    from repro.constraints.ast import Or
    from repro.constraints.builder import path

    alpha = rng.choice(sorted(schema.constraints, key=unparse))
    root = next(alpha.atoms()).root
    parents = sorted(schema.hierarchy.parents(root))
    if not parents:
        return alpha
    beta = path(root, rng.choice(parents))
    return Or((alpha, beta))


def mixed_trace(
    schema: DimensionSchema,
    n_ops: int = 50,
    seed: int = 0,
    weights: Optional[Mapping[str, float]] = None,
) -> List[Tuple[object, ...]]:
    """A seeded mixed decide/navigate/edit operation trace.

    Returns a list of tagged tuples ready for a service loop to replay:

    * ``("dimsat", category)``
    * ``("implies", node)`` - half from SIGMA (implied), half negations
      or weakenings;
    * ``("summarizable", target, sources)``
    * ``("navigate", target, sources)`` - an aggregate-navigation query
      (the consumer aggregates facts at ``target`` and cross-checks the
      Definition 6 recombination from ``sources``);
    * ``("edit", "add-implied", node)`` - add a constraint SIGMA already
      implies (a metamorphic no-op for every verdict);
    * ``("edit", "drop-added",)`` - retract the most recently added
      constraint (the trace keeps adds/drops balanced, never dropping
      below the original SIGMA).

    Edits are constraint-level only, so instances valid for ``schema``
    stay valid across the whole trace.  Identical arguments produce
    identical traces - the soak harness leans on this for replay.
    """
    if n_ops < 0:
        raise SchemaError("n_ops must be non-negative")
    rng = random.Random(seed)
    table = dict(DEFAULT_TRACE_WEIGHTS if weights is None else weights)
    unknown = set(table) - set(DEFAULT_TRACE_WEIGHTS)
    if unknown:
        raise SchemaError(
            f"unknown trace ops {sorted(unknown)}; expected a subset of "
            f"{sorted(DEFAULT_TRACE_WEIGHTS)}"
        )
    hierarchy = schema.hierarchy
    categories = sorted(hierarchy.categories - {ALL})
    targets = [c for c in categories if hierarchy.descendants(c) - {c}]
    has_constraints = bool(schema.constraints)
    ops = sorted(op for op, w in table.items() if w > 0)
    if not ops:
        raise SchemaError("the trace weights enable no operations")
    cumulative: List[Tuple[float, str]] = []
    total = 0.0
    for op in ops:
        total += table[op]
        cumulative.append((total, op))

    def pick_op() -> str:
        draw = rng.random() * total
        for bound, op in cumulative:
            if draw < bound:
                return op
        return cumulative[-1][1]

    trace: List[Tuple[object, ...]] = []
    pending_adds = 0
    for _ in range(n_ops):
        op = pick_op()
        if op in ("implies", "edit") and not has_constraints:
            op = "dimsat"
        if op in ("summarizable", "navigate") and not targets:
            op = "dimsat"
        if op == "dimsat":
            trace.append(("dimsat", rng.choice(categories)))
        elif op == "implies":
            template = rng.choice(sorted(schema.constraints, key=unparse))
            kind = rng.randrange(3)
            if kind == 0:
                trace.append(("implies", template))
            elif kind == 1:
                trace.append(("implies", Not(template)))
            else:
                trace.append(("implies", _implied_weakening(schema, rng)))
        elif op in ("summarizable", "navigate"):
            target = rng.choice(targets)
            below = sorted(hierarchy.descendants(target) - {ALL, target})
            size = rng.randint(1, min(2, len(below)))
            sources = tuple(sorted(rng.sample(below, size)))
            trace.append((op, target, sources))
        else:  # edit
            if pending_adds and rng.random() < 0.5:
                trace.append(("edit", "drop-added"))
                pending_adds -= 1
            else:
                trace.append(
                    ("edit", "add-implied", _implied_weakening(schema, rng))
                )
                pending_adds += 1
    return trace


def replicated_instance(
    instance: DimensionInstance, copies: int, separator: str = "#"
) -> DimensionInstance:
    """``copies`` disjoint replicas of an instance, sharing only ``all``.

    Member identifiers gain a ``#i`` suffix while *names* are preserved,
    so name-based constraints (``City = 'Washington'``) keep holding in
    every replica.  Useful for scaling studies that need bigger data with
    the exact structural mix of a reference instance.
    """
    if copies < 1:
        raise SchemaError("need at least one copy")

    def clone(member: Member, index: int) -> Member:
        if member == TOP_MEMBER:
            return TOP_MEMBER
        return f"{member}{separator}{index}"

    members: Dict[Member, Category] = {}
    names: Dict[Member, object] = {}
    edges: List[Tuple[Member, Member]] = []
    for index in range(copies):
        for member in instance.all_members():
            if member == TOP_MEMBER:
                continue
            members[clone(member, index)] = instance.category_of(member)
            names[clone(member, index)] = instance.name(member)
        for child, parent in instance.member_edges():
            edges.append((clone(child, index), clone(parent, index)))
    return DimensionInstance(instance.hierarchy, members, edges, names=names)
