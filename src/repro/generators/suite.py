"""A realistic schema suite (experiment E11).

Section 6 conjectures that "in most practical situations DIMSAT should
yield execution times of the order of a few seconds".  These five schemas
model the heterogeneity patterns practitioners actually hit - each is
documented with the real-world situation it encodes - and the E11
benchmark runs satisfiability and implication over all of them.

========  ==========================================================
schema    heterogeneity it models
========  ==========================================================
retail    the paper's running example (three countries, Washington)
time      ISO weeks cutting across month/quarter/year chains
product   branded items vs. generic items with different rollups
personnel staff in teams vs. external consultants skipping Team
geography independent cities that are not part of any county
========  ==========================================================
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro._types import ALL
from repro.core.hierarchy import HierarchySchema
from repro.core.instance import DimensionInstance
from repro.core.schema import DimensionSchema
from repro.generators.location import location_schema


def time_schema() -> DimensionSchema:
    """Calendar dimension with the ISO-week split.

    Days always roll up both the civil chain (Month/Quarter/Year) and the
    week chain.  A week lying entirely inside one civil year rolls up to
    that Year; a *boundary* week (days in two civil years) cannot - the
    strictness condition (C2) would force its days to reach two different
    Year members - so boundary weeks roll up directly to All and are
    marked with the name ``boundary``.  Consequently Year is summarizable
    from Month but not from Week, which the E11/E12 benchmarks exercise.
    """
    g = HierarchySchema(
        ["Day", "Week", "Month", "Quarter", "Year"],
        [
            ("Day", "Week"),
            ("Day", "Month"),
            ("Week", "Year"),
            ("Week", ALL),  # boundary weeks skip Year
            ("Month", "Quarter"),
            ("Quarter", "Year"),
            ("Year", ALL),
        ],
    )
    return DimensionSchema(
        g,
        [
            "Day -> Week",
            "Day -> Month",
            "Week = 'boundary' iff not (Week -> Year)",
            "Month -> Quarter",
            "Quarter -> Year",
        ],
    )


def product_schema() -> DimensionSchema:
    """Branded vs. generic products.

    Every SKU is either branded (rolls up Brand -> Company) or generic
    (rolls up GenericClass -> Department), never both; branded pharmacy
    items additionally carry a regulatory class.
    """
    g = HierarchySchema(
        ["SKU", "Brand", "GenericClass", "Company", "Department", "RegClass"],
        [
            ("SKU", "Brand"),
            ("SKU", "GenericClass"),
            ("Brand", "Company"),
            ("Brand", "RegClass"),
            ("GenericClass", "Department"),
            ("Company", ALL),
            ("Department", ALL),
            ("RegClass", ALL),
        ],
    )
    return DimensionSchema(
        g,
        [
            "one(SKU -> Brand, SKU -> GenericClass)",
            "Brand -> Company",
            "GenericClass -> Department",
            "SKU.Department = 'Pharmacy' implies SKU -> GenericClass",
            "Brand.RegClass = 'OTC' or Brand.RegClass = 'Rx' or not Brand -> RegClass",
        ],
    )


def personnel_schema() -> DimensionSchema:
    """Employees in teams vs. external consultants.

    Regular employees roll up Team -> Department -> Division; consultants
    skip Team and report directly to a Department; exactly the Washington
    pattern of the paper, driven by an attribute.
    """
    g = HierarchySchema(
        ["Employee", "Team", "Department", "Division"],
        [
            ("Employee", "Team"),
            ("Employee", "Department"),  # the consultant shortcut
            ("Team", "Department"),
            ("Department", "Division"),
            ("Division", ALL),
        ],
    )
    return DimensionSchema(
        g,
        [
            "one(Employee -> Team, Employee -> Department)",
            "Employee = 'consultant' iff Employee -> Department",
            "Team -> Department",
            "Department -> Division",
        ],
    )


def geography_schema() -> DimensionSchema:
    """Cities inside counties vs. independent cities.

    Most cities roll up City -> County -> State; independent cities roll
    up directly to State (a shortcut), and every state is in a country.
    """
    g = HierarchySchema(
        ["Address", "City", "County", "State", "Country"],
        [
            ("Address", "City"),
            ("City", "County"),
            ("City", "State"),  # independent cities
            ("County", "State"),
            ("State", "Country"),
            ("Country", ALL),
        ],
    )
    return DimensionSchema(
        g,
        [
            "Address -> City",
            "one(City -> County, City -> State)",
            "County -> State",
            "State -> Country",
        ],
    )


def suite_schemas() -> Dict[str, DimensionSchema]:
    """Every schema of the suite, keyed by short name."""
    return {
        "retail": location_schema(),
        "time": time_schema(),
        "product": product_schema(),
        "personnel": personnel_schema(),
        "geography": geography_schema(),
    }


def personnel_instance() -> DimensionInstance:
    """A small personnel instance matching :func:`personnel_schema`."""
    g = personnel_schema().hierarchy
    members = {
        "alice": "Employee",
        "bob": "Employee",
        "consultant": "Employee",
        "team-db": "Team",
        "team-ui": "Team",
        "dept-eng": "Department",
        "dept-sales": "Department",
        "div-tech": "Division",
    }
    edges = [
        ("alice", "team-db"),
        ("bob", "team-ui"),
        ("consultant", "dept-sales"),
        ("team-db", "dept-eng"),
        ("team-ui", "dept-eng"),
        ("dept-eng", "div-tech"),
        ("dept-sales", "div-tech"),
    ]
    return DimensionInstance(g, members, edges)


def time_instance() -> DimensionInstance:
    """Days around a year boundary.

    The week starting 2021-12-27 contains days of both civil years, so it
    is a boundary week: it rolls up directly to All and carries the name
    ``boundary``.  Aggregating year totals from week views silently drops
    its days - the heterogeneity trap the schema's constraints encode.
    """
    g = time_schema().hierarchy
    members = {
        "2021-12-20": "Day",
        "2021-12-31": "Day",
        "2022-01-01": "Day",
        "2022-01-05": "Day",
        "2021-W51": "Week",
        "2021-W52": "Week",  # the boundary week
        "2022-W01": "Week",
        "2021-12": "Month",
        "2022-01": "Month",
        "2021-Q4": "Quarter",
        "2022-Q1": "Quarter",
        "2021": "Year",
        "2022": "Year",
    }
    edges = [
        ("2021-12-20", "2021-W51"),
        ("2021-12-20", "2021-12"),
        ("2021-12-31", "2021-W52"),
        ("2021-12-31", "2021-12"),
        ("2022-01-01", "2021-W52"),  # same week, next civil year
        ("2022-01-01", "2022-01"),
        ("2022-01-05", "2022-W01"),
        ("2022-01-05", "2022-01"),
        ("2021-W51", "2021"),
        # 2021-W52 has no Year parent: it auto-links to All (boundary).
        ("2022-W01", "2022"),
        ("2021-12", "2021-Q4"),
        ("2022-01", "2022-Q1"),
        ("2021-Q4", "2021"),
        ("2022-Q1", "2022"),
    ]
    names = {"2021-W52": "boundary"}
    return DimensionInstance(g, members, edges, names=names)


def product_instance() -> DimensionInstance:
    """A small product instance matching :func:`product_schema`:
    two branded SKUs (one pharmacy item), one generic SKU."""
    g = product_schema().hierarchy
    members = {
        "sku-tv": "SKU",
        "sku-aspirin": "SKU",
        "sku-storecola": "SKU",
        "brand-vix": "Brand",
        "brand-relief": "Brand",
        "gen-cola": "GenericClass",
        "co-electra": "Company",
        "co-medco": "Company",
        "dept-grocery": "Department",
        "rx-otc": "RegClass",
    }
    edges = [
        ("sku-tv", "brand-vix"),
        ("sku-aspirin", "gen-cola"),  # pharmacy items are generic (rule)
        ("sku-storecola", "gen-cola"),
        ("brand-vix", "co-electra"),
        ("brand-relief", "co-medco"),
        ("brand-relief", "rx-otc"),
        ("gen-cola", "dept-grocery"),
    ]
    names = {"rx-otc": "OTC"}
    return DimensionInstance(g, members, edges, names=names)


def geography_instance() -> DimensionInstance:
    """A small geography instance matching :func:`geography_schema`:
    one county city, one independent city."""
    g = geography_schema().hierarchy
    members = {
        "a1": "Address",
        "a2": "Address",
        "a3": "Address",
        "richmond": "City",
        "fairfax-city": "City",
        "fairfax-county": "County",
        "virginia": "State",
        "usa": "Country",
    }
    edges = [
        ("a1", "richmond"),
        ("a2", "fairfax-city"),
        ("a3", "richmond"),
        ("richmond", "virginia"),       # independent city
        ("fairfax-city", "fairfax-county"),
        ("fairfax-county", "virginia"),
        ("virginia", "usa"),
    ]
    return DimensionInstance(g, members, edges)
