"""Adversarial scenario corpus: schemas engineered to hurt.

The suite schemas (:mod:`repro.generators.suite`) model the *benign*
heterogeneity practitioners hit every day; every one of them decides in
microseconds.  Theorem 4 says the general problem is NP-hard, so the
interesting failures - wrong verdicts, blown budgets, compiled-tier
divergence, cache corruption - live in schema shapes the suite never
produces.  This module generates those shapes on purpose, seedable and
reproducible, as the raw material for the soak harness
(:mod:`repro.core.soak`) and the differential suites.

Generator families
------------------

``deep-chain``
    A rollup chain dozens of categories tall with periodic skip edges and
    choice constraints: stresses the Definition 8 circle-operator
    reductions along long paths and the path cache.
``wide-fanout``
    One bottom with many alternative parents under an ``one(...)``
    constraint: the DIMSAT branch factor (Figure 6's EXPAND loop) equals
    the fan-out, so first-witness cancellation and the parallel engine's
    branch jobs get real work.
``many-bottoms``
    Many heterogeneous bottom categories sharing mid/top layers, half
    choice-constrained, half pinned by equality exceptions: the Theorem 1
    summarizability loop runs one implication *per bottom*, so this family
    scales the conjunct count.
``shortcut-lattice``
    A dense layered lattice where every category also keeps skip-level
    shortcut edges: maximizes the diamond count (undirected cycles) and
    the number of distinct simple paths the (C5)/(C6) conditions and the
    navigator's rewrites must consider.
``np-boundary``
    Random 3-SAT reduced to dimension-schema satisfiability exactly as in
    the Theorem 4 hardness proof: one bottom, a true/false parent pair per
    variable under ``one(...)``, one disjunctive constraint per clause, at
    the critical clauses/variables ratio (~4.3) where random 3-SAT is
    empirically hardest.  ``planted=True`` hides a satisfying assignment
    (the schema is satisfiable but the search cannot know that);
    ``unsat=True`` adds a contradictory unit-clause pair.
``census-time`` / ``census-product`` / ``census-org``
    Realistic large domains beyond ``location``: real civil/ISO calendars
    (boundary weeks included), branded-vs-generic product catalogs, and
    staff/consultant org charts - each with a *populated instance* whose
    size is a knob, so "census scale" is one argument away.  These back
    the soak harness's navigate/aggregate traffic.

Every family is a pure function of its knobs plus ``seed``; identical
calls yield identical schemas (fingerprints and all), which is what lets
a soak failure be replayed and shrunk.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro._types import ALL, Category, Member
from repro.constraints.ast import Node, Not, Or
from repro.constraints.builder import eq, into, one, path
from repro.core.hierarchy import HierarchySchema
from repro.core.instance import DimensionInstance
from repro.core.schema import DimensionSchema
from repro.errors import SchemaError


@dataclass(frozen=True)
class AdversarialCase:
    """One corpus entry: a schema plus the context a harness needs.

    ``root`` is the bottom category whose decisions are interesting
    (deep searches, wide branching, or the 3-SAT bottom).  ``instance``
    is populated for the census families (and any family small enough to
    materialize) so navigate/aggregate traffic has data to run on.
    """

    name: str
    family: str
    seed: int
    schema: DimensionSchema
    root: Category
    instance: Optional[DimensionInstance] = None
    notes: str = ""

    def describe(self) -> str:
        hierarchy = self.schema.hierarchy
        size = "" if self.instance is None else f", {len(self.instance)} members"
        return (
            f"{self.name}: {len(hierarchy.categories)} categories, "
            f"{len(hierarchy.edges)} edges, "
            f"{len(self.schema.constraints)} constraints{size}"
        )


# ----------------------------------------------------------------------
# deep-chain
# ----------------------------------------------------------------------


def deep_chain_schema(
    depth: int = 12, skip_every: int = 3, seed: int = 0
) -> DimensionSchema:
    """A chain ``d0 -> d1 -> ... -> All`` with periodic skip choices.

    Every ``skip_every`` levels, ``d_i`` gains a shortcut to ``d_{i+2}``
    and an ``one(d_i -> d_{i+1}, d_i -> d_{i+2})`` constraint, so frozen
    dimensions multiply along the chain (2^(depth/skip_every) shapes) and
    the circle operator reduces constraints across long paths.
    """
    if depth < 2:
        raise SchemaError("deep-chain needs depth >= 2")
    rng = random.Random(seed)
    cats = [f"d{i}" for i in range(depth)]
    edges: List[Tuple[Category, Category]] = [
        (cats[i], cats[i + 1]) for i in range(depth - 1)
    ]
    edges.append((cats[-1], ALL))
    constraints: List[Node] = []
    for i in range(depth - 1):
        if skip_every and i % skip_every == 0 and i + 2 < depth:
            edges.append((cats[i], cats[i + 2]))
            constraints.append(one(path(cats[i], cats[i + 1]), path(cats[i], cats[i + 2])))
        else:
            constraints.append(into(cats[i], cats[i + 1]))
    # One equality-conditioned exception near the bottom, anchored at a
    # random upper category: exercises the c-assignment search far from
    # the root.
    upper = cats[rng.randrange(depth // 2, depth)]
    constraints.append(eq(cats[0], upper, "census").implies(path(cats[0], cats[1])))
    return DimensionSchema(HierarchySchema(cats + [ALL], edges), constraints)


# ----------------------------------------------------------------------
# wide-fanout
# ----------------------------------------------------------------------


def wide_fanout_schema(width: int = 10, seed: int = 0) -> DimensionSchema:
    """One bottom with ``width`` alternative parents under ``one(...)``.

    ``b -> p_i -> hub -> All`` for each of the ``width`` parents; the
    ``one`` constraint over all of them makes the EXPAND branch factor
    exactly ``width``, and a seeded subset of parents carries an equality
    pin so some branches also run the c-assignment search.
    """
    if width < 2:
        raise SchemaError("wide-fanout needs width >= 2")
    rng = random.Random(seed)
    parents = [f"p{i}" for i in range(width)]
    cats = ["b", *parents, "hub"]
    edges: List[Tuple[Category, Category]] = [("b", p) for p in parents]
    edges.extend((p, "hub") for p in parents)
    edges.append(("hub", ALL))
    constraints: List[Node] = [one(*(path("b", p) for p in parents))]
    constraints.extend(into(p, "hub") for p in parents)
    for p in parents:
        if rng.random() < 0.4:
            constraints.append(eq(p, "hub", f"zone-{rng.randrange(3)}"))
    return DimensionSchema(HierarchySchema(cats + [ALL], edges), constraints)


# ----------------------------------------------------------------------
# many-bottoms
# ----------------------------------------------------------------------


def many_bottoms_schema(n_bottoms: int = 6, seed: int = 0) -> DimensionSchema:
    """Heterogeneous multi-bottom hierarchy sharing mid and top layers.

    Even bottoms choose between the two mids (``one``), odd bottoms are
    pinned into ``m0``; a seeded subset carries the Washington-style
    equality exception.  Theorem 1 queries over ``top`` run one
    implication per bottom, so the conjunct count scales with
    ``n_bottoms``.
    """
    if n_bottoms < 1:
        raise SchemaError("many-bottoms needs at least one bottom")
    rng = random.Random(seed)
    bottoms = [f"b{i}" for i in range(n_bottoms)]
    cats = [*bottoms, "m0", "m1", "top"]
    edges: List[Tuple[Category, Category]] = []
    constraints: List[Node] = []
    for i, b in enumerate(bottoms):
        edges.append((b, "m0"))
        edges.append((b, "m1"))
        if i % 2 == 0:
            constraints.append(one(path(b, "m0"), path(b, "m1")))
        else:
            constraints.append(into(b, "m0"))
        if rng.random() < 0.5:
            constraints.append(eq(b, "top", f"k{i}").implies(path(b, "m1")))
    edges.extend([("m0", "top"), ("m1", "top"), ("top", ALL)])
    constraints.extend([into("m0", "top"), into("m1", "top")])
    return DimensionSchema(HierarchySchema(cats + [ALL], edges), constraints)


# ----------------------------------------------------------------------
# shortcut-lattice
# ----------------------------------------------------------------------


def shortcut_lattice_schema(
    levels: int = 4, width: int = 3, seed: int = 0
) -> DimensionSchema:
    """A dense layered lattice with skip-level shortcut edges.

    Every category at level ``i`` gets an edge to *every* category at
    level ``i+1`` plus one seeded shortcut to level ``i+2``; choice
    constraints bind a seeded subset of the dense nodes.  The result is
    maximally diamond-dense (every pair of adjacent levels is a complete
    bipartite graph), which is the worst case for (C5)/(C6) reasoning,
    `simple_paths` enumeration, and the navigator's rewrite search.
    """
    if levels < 2 or width < 1:
        raise SchemaError("shortcut-lattice needs levels >= 2 and width >= 1")
    rng = random.Random(seed)
    layer: List[List[Category]] = [
        [f"l{i}_{k}" for k in range(width)] for i in range(levels)
    ]
    cats = [c for level in layer for c in level]
    edges: List[Tuple[Category, Category]] = []
    constraints: List[Node] = []
    for i in range(levels - 1):
        for child in layer[i]:
            for parent in layer[i + 1]:
                edges.append((child, parent))
            if i + 2 < levels:
                edges.append((child, rng.choice(layer[i + 2])))
    for top_cat in layer[-1]:
        edges.append((top_cat, ALL))
    for i in range(levels - 1):
        for child in layer[i]:
            targets = [p for (c, p) in edges if c == child]
            if rng.random() < 0.6:
                constraints.append(one(*(path(child, t) for t in targets)))
            else:
                constraints.append(Or(tuple(path(child, t) for t in targets)))
    return DimensionSchema(HierarchySchema(cats + [ALL], edges), constraints)


# ----------------------------------------------------------------------
# np-boundary (Theorem 4)
# ----------------------------------------------------------------------

#: The empirical random-3-SAT phase transition: clause/variable ratios
#: near this value produce the hardest instances.
CRITICAL_RATIO = 4.3


def np_boundary_schema(
    n_vars: int = 4,
    n_clauses: Optional[int] = None,
    seed: int = 0,
    planted: bool = True,
    unsat: bool = False,
) -> DimensionSchema:
    """Random 3-SAT as a dimension schema, per the Theorem 4 reduction.

    One bottom ``v`` with parents ``xi_T``/``xi_F`` per variable; the
    constraint set holds ``one(v -> xi_T, v -> xi_F)`` per variable and
    one disjunction per clause, so a frozen dimension rooted at ``v``
    exists iff the formula is satisfiable.  ``n_clauses`` defaults to the
    critical ratio.  With ``planted`` every clause is patched to agree
    with a hidden assignment (satisfiable by construction); ``unsat``
    appends the contradictory unit clauses ``x0`` and ``not x0``, which
    together with the ``one`` constraint kill every frozen dimension.
    """
    if n_vars < 1:
        raise SchemaError("np-boundary needs at least one variable")
    if n_clauses is None:
        n_clauses = max(1, round(CRITICAL_RATIO * n_vars))
    rng = random.Random(seed)
    lit_cat = {
        (i, True): f"x{i}_T" for i in range(n_vars)
    } | {(i, False): f"x{i}_F" for i in range(n_vars)}
    cats = ["v", *sorted(lit_cat.values())]
    edges: List[Tuple[Category, Category]] = [("v", c) for c in sorted(lit_cat.values())]
    edges.extend((c, ALL) for c in sorted(lit_cat.values()))
    constraints: List[Node] = [
        one(path("v", lit_cat[(i, True)]), path("v", lit_cat[(i, False)]))
        for i in range(n_vars)
    ]
    assignment = {i: rng.random() < 0.5 for i in range(n_vars)}
    for _ in range(n_clauses):
        k = min(3, n_vars)
        variables = rng.sample(range(n_vars), k)
        literals = [(var, rng.random() < 0.5) for var in variables]
        if planted and not any(assignment[var] == sign for var, sign in literals):
            # Patch one literal to agree with the hidden assignment.
            var, _ = literals[rng.randrange(k)]
            literals[literals.index((var, not assignment[var]))] = (
                var,
                assignment[var],
            )
        constraints.append(
            Or(tuple(path("v", lit_cat[(var, sign)]) for var, sign in literals))
        )
    if unsat:
        constraints.append(path("v", lit_cat[(0, True)]))
        constraints.append(path("v", lit_cat[(0, False)]))
    return DimensionSchema(HierarchySchema(cats + [ALL], edges), constraints)


# ----------------------------------------------------------------------
# census-scale domains
# ----------------------------------------------------------------------


def census_time_schema() -> DimensionSchema:
    """The ISO-calendar schema (the suite's ``time`` shape) at census
    scale: the schema is identical - the scale lives in the instance."""
    g = HierarchySchema(
        ["Day", "Week", "Month", "Quarter", "Year"],
        [
            ("Day", "Week"),
            ("Day", "Month"),
            ("Week", "Year"),
            ("Week", ALL),  # boundary weeks skip Year
            ("Month", "Quarter"),
            ("Quarter", "Year"),
            ("Year", ALL),
        ],
    )
    return DimensionSchema(
        g,
        [
            "Day -> Week",
            "Day -> Month",
            "Week = 'boundary' iff not (Week -> Year)",
            "Month -> Quarter",
            "Quarter -> Year",
        ],
    )


def census_time_instance(
    years: int = 1, start_year: int = 2022, seed: int = 0
) -> DimensionInstance:
    """A real civil/ISO calendar instance: every day of ``years`` years.

    Boundary weeks (ISO weeks whose days straddle a civil-year boundary)
    roll up directly to ``All`` and carry the name ``boundary``, exactly
    as the schema's iff-constraint demands.  One year is ~420 members;
    ``years=50`` is census scale and still generates in well under a
    second.
    """
    if years < 1:
        raise SchemaError("census-time needs at least one year")
    members: Dict[Member, Category] = {}
    names: Dict[Member, object] = {}
    edges: List[Tuple[Member, Member]] = []
    seen_weeks: Dict[str, Tuple[int, int]] = {}
    day = datetime.date(start_year, 1, 1)
    end = datetime.date(start_year + years, 1, 1)
    while day < end:
        day_id = day.isoformat()
        iso_year, iso_week, _ = day.isocalendar()
        week_id = f"{iso_year}-W{iso_week:02d}"
        month_id = f"{day.year}-{day.month:02d}"
        quarter_id = f"{day.year}-Q{(day.month - 1) // 3 + 1}"
        year_id = str(day.year)
        members[day_id] = "Day"
        edges.append((day_id, week_id))
        edges.append((day_id, month_id))
        if week_id not in seen_weeks:
            seen_weeks[week_id] = (iso_year, iso_week)
            members[week_id] = "Week"
            # An ISO week is a civil-year boundary week iff its Monday
            # and Sunday fall in different civil years - a property of
            # the calendar, not of the generated range.
            monday = datetime.date.fromisocalendar(iso_year, iso_week, 1)
            sunday = datetime.date.fromisocalendar(iso_year, iso_week, 7)
            if monday.year != sunday.year:
                names[week_id] = "boundary"  # rolls up to All (auto-link)
            else:
                edges.append((week_id, str(monday.year)))
                members.setdefault(str(monday.year), "Year")
        if month_id not in members:
            members[month_id] = "Month"
            edges.append((month_id, quarter_id))
        if quarter_id not in members:
            members[quarter_id] = "Quarter"
            edges.append((quarter_id, year_id))
        members.setdefault(year_id, "Year")
        day += datetime.timedelta(days=1)
    g = census_time_schema().hierarchy
    return DimensionInstance(g, members, sorted(set(edges)), names=names)


def census_product_schema() -> DimensionSchema:
    """The branded-vs-generic product schema (the suite's shape)."""
    g = HierarchySchema(
        ["SKU", "Brand", "GenericClass", "Company", "Department", "RegClass"],
        [
            ("SKU", "Brand"),
            ("SKU", "GenericClass"),
            ("Brand", "Company"),
            ("Brand", "RegClass"),
            ("GenericClass", "Department"),
            ("Company", ALL),
            ("Department", ALL),
            ("RegClass", ALL),
        ],
    )
    return DimensionSchema(
        g,
        [
            "one(SKU -> Brand, SKU -> GenericClass)",
            "Brand -> Company",
            "GenericClass -> Department",
            "SKU.Department = 'Pharmacy' implies SKU -> GenericClass",
            "Brand.RegClass = 'OTC' or Brand.RegClass = 'Rx' or not Brand -> RegClass",
        ],
    )


def census_product_instance(
    n_skus: int = 200,
    n_brands: int = 20,
    n_companies: int = 6,
    n_classes: int = 12,
    seed: int = 0,
) -> DimensionInstance:
    """A product catalog at configurable scale.

    About 60% of SKUs are branded (roll up Brand -> Company, some brands
    regulated OTC/Rx), the rest generic (roll up GenericClass ->
    Department, one department being the ``Pharmacy`` the schema's
    conditional constraint is about).  ``n_skus=100_000`` is census scale.
    """
    if min(n_skus, n_brands, n_companies, n_classes) < 1:
        raise SchemaError("census-product needs positive sizes")
    rng = random.Random(seed)
    departments = ["Pharmacy", "Grocery", "Electronics", "Apparel"]
    members: Dict[Member, Category] = {}
    names: Dict[Member, object] = {}
    edges: List[Tuple[Member, Member]] = []
    for d in departments:
        members[f"dept-{d.lower()}"] = "Department"
        names[f"dept-{d.lower()}"] = d
    for i in range(n_companies):
        members[f"co-{i}"] = "Company"
    for i in range(n_brands):
        members[f"brand-{i}"] = "Brand"
        edges.append((f"brand-{i}", f"co-{rng.randrange(n_companies)}"))
        if rng.random() < 0.3:
            reg = rng.choice(("OTC", "Rx"))
            reg_id = f"reg-{reg.lower()}"
            if reg_id not in members:
                members[reg_id] = "RegClass"
                names[reg_id] = reg
            edges.append((f"brand-{i}", reg_id))
    for i in range(n_classes):
        members[f"class-{i}"] = "GenericClass"
        edges.append((f"class-{i}", f"dept-{rng.choice(departments).lower()}"))
    for i in range(n_skus):
        sku = f"sku-{i}"
        members[sku] = "SKU"
        if rng.random() < 0.6:
            edges.append((sku, f"brand-{rng.randrange(n_brands)}"))
        else:
            edges.append((sku, f"class-{rng.randrange(n_classes)}"))
    g = census_product_schema().hierarchy
    return DimensionInstance(g, members, edges, names=names)


def census_org_schema() -> DimensionSchema:
    """The staff-vs-consultant org schema (the suite's shape)."""
    g = HierarchySchema(
        ["Employee", "Team", "Department", "Division"],
        [
            ("Employee", "Team"),
            ("Employee", "Department"),  # the consultant shortcut
            ("Team", "Department"),
            ("Department", "Division"),
            ("Division", ALL),
        ],
    )
    return DimensionSchema(
        g,
        [
            "one(Employee -> Team, Employee -> Department)",
            "Employee = 'consultant' iff Employee -> Department",
            "Team -> Department",
            "Department -> Division",
        ],
    )


def census_org_instance(
    n_employees: int = 150,
    n_teams: int = 12,
    n_departments: int = 5,
    n_divisions: int = 2,
    consultant_fraction: float = 0.1,
    seed: int = 0,
) -> DimensionInstance:
    """An org chart at configurable scale.

    ``consultant_fraction`` of employees skip Team and report straight to
    a Department, carrying the name ``consultant`` the schema's iff-
    constraint keys on.  ``n_employees=1_000_000`` is census scale.
    """
    if min(n_employees, n_teams, n_departments, n_divisions) < 1:
        raise SchemaError("census-org needs positive sizes")
    if not 0.0 <= consultant_fraction <= 1.0:
        raise SchemaError("consultant_fraction must be in [0, 1]")
    rng = random.Random(seed)
    members: Dict[Member, Category] = {}
    names: Dict[Member, object] = {}
    edges: List[Tuple[Member, Member]] = []
    for i in range(n_divisions):
        members[f"div-{i}"] = "Division"
    for i in range(n_departments):
        members[f"dept-{i}"] = "Department"
        edges.append((f"dept-{i}", f"div-{rng.randrange(n_divisions)}"))
    for i in range(n_teams):
        members[f"team-{i}"] = "Team"
        edges.append((f"team-{i}", f"dept-{rng.randrange(n_departments)}"))
    for i in range(n_employees):
        emp = f"emp-{i}"
        members[emp] = "Employee"
        if rng.random() < consultant_fraction:
            names[emp] = "consultant"
            edges.append((emp, f"dept-{rng.randrange(n_departments)}"))
        else:
            edges.append((emp, f"team-{rng.randrange(n_teams)}"))
    g = census_org_schema().hierarchy
    return DimensionInstance(g, members, edges, names=names)


# ----------------------------------------------------------------------
# The corpus
# ----------------------------------------------------------------------


def _case_deep_chain(seed: int) -> AdversarialCase:
    schema = deep_chain_schema(depth=10, seed=seed)
    return AdversarialCase(
        name=f"deep-chain-{seed}",
        family="deep-chain",
        seed=seed,
        schema=schema,
        root="d0",
        notes="long-path circle-operator reductions",
    )


def _case_wide_fanout(seed: int) -> AdversarialCase:
    schema = wide_fanout_schema(width=8, seed=seed)
    return AdversarialCase(
        name=f"wide-fanout-{seed}",
        family="wide-fanout",
        seed=seed,
        schema=schema,
        root="b",
        notes="EXPAND branch factor = fan-out",
    )


def _case_many_bottoms(seed: int) -> AdversarialCase:
    schema = many_bottoms_schema(n_bottoms=6, seed=seed)
    return AdversarialCase(
        name=f"many-bottoms-{seed}",
        family="many-bottoms",
        seed=seed,
        schema=schema,
        root="b0",
        notes="one Theorem 1 conjunct per bottom",
    )


def _case_shortcut_lattice(seed: int) -> AdversarialCase:
    # width 2 keeps the worst exhaustive-implication op in the tens of
    # milliseconds; width 3 at four levels already blows past minutes,
    # which is the wrong place for a harness's own ground truth to live.
    schema = shortcut_lattice_schema(levels=4, width=2, seed=seed)
    return AdversarialCase(
        name=f"shortcut-lattice-{seed}",
        family="shortcut-lattice",
        seed=seed,
        schema=schema,
        root="l0_0",
        notes="diamond-dense (C5)/(C6) pressure",
    )


def _case_np_boundary(seed: int) -> AdversarialCase:
    schema = np_boundary_schema(n_vars=4, seed=seed, planted=True)
    return AdversarialCase(
        name=f"np-boundary-{seed}",
        family="np-boundary",
        seed=seed,
        schema=schema,
        root="v",
        notes="random 3-SAT at the Theorem 4 phase transition",
    )


def _case_census_time(seed: int) -> AdversarialCase:
    return AdversarialCase(
        name=f"census-time-{seed}",
        family="census-time",
        seed=seed,
        schema=census_time_schema(),
        root="Day",
        instance=census_time_instance(years=1, start_year=2022 + (seed % 5), seed=seed),
        notes="real ISO calendar with boundary weeks",
    )


def _case_census_product(seed: int) -> AdversarialCase:
    return AdversarialCase(
        name=f"census-product-{seed}",
        family="census-product",
        seed=seed,
        schema=census_product_schema(),
        root="SKU",
        instance=census_product_instance(n_skus=120, seed=seed),
        notes="branded vs generic catalog",
    )


def _case_census_org(seed: int) -> AdversarialCase:
    return AdversarialCase(
        name=f"census-org-{seed}",
        family="census-org",
        seed=seed,
        schema=census_org_schema(),
        root="Employee",
        instance=census_org_instance(n_employees=120, seed=seed),
        notes="staff vs consultant org chart",
    )


#: Family name -> seeded case builder.  The soak harness and the sweep
#: tests iterate this registry, so adding a family here is enough to put
#: it under every gate.
FAMILIES: Dict[str, Callable[[int], AdversarialCase]] = {
    "deep-chain": _case_deep_chain,
    "wide-fanout": _case_wide_fanout,
    "many-bottoms": _case_many_bottoms,
    "shortcut-lattice": _case_shortcut_lattice,
    "np-boundary": _case_np_boundary,
    "census-time": _case_census_time,
    "census-product": _case_census_product,
    "census-org": _case_census_org,
}


def adversarial_corpus(
    seed: int = 0,
    families: Optional[Sequence[str]] = None,
    per_family: int = 1,
) -> List[AdversarialCase]:
    """Build one corpus: ``per_family`` seeded cases from each family.

    ``families`` selects a subset by name (default: all).  Case seeds are
    derived from ``seed`` deterministically, so the whole corpus is a
    pure function of its arguments.
    """
    chosen = list(FAMILIES) if families is None else list(families)
    unknown = [f for f in chosen if f not in FAMILIES]
    if unknown:
        raise SchemaError(
            f"unknown adversarial families {unknown}; expected a subset of "
            f"{sorted(FAMILIES)}"
        )
    cases: List[AdversarialCase] = []
    for family in chosen:
        for index in range(per_family):
            cases.append(FAMILIES[family](seed + index))
    return cases
