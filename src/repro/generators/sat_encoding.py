"""3-SAT as category satisfiability (Theorem 4, experiment E8).

The paper proves category satisfiability NP-complete "by a straightforward
reduction from SAT".  The reduction implemented here:

* one category ``V_i`` per propositional variable, a root category ``Q``,
  and a dummy category ``T``;
* edges ``Q -> V_i`` for every variable, ``Q -> T``, and ``V_i, T -> All``;
* the constraint ``Q -> T`` (so condition (C7) never interferes with an
  all-false assignment);
* per clause, the disjunction of its literals with ``x_i`` encoded as the
  path atom ``Q -> V_i`` and ``NOT x_i`` as its negation.

A subhierarchy with root ``Q`` picks a subset of the ``V_i`` - exactly a
truth assignment - and satisfies the constraint set iff the assignment
satisfies the formula, so::

    Q satisfiable in encode(phi)  <=>  phi satisfiable.

The module also ships a tiny CNF toolkit (random 3-CNF generation and a
brute-force satisfiability oracle) so the tests can verify the
equivalence on random formulas and the benchmark can measure DIMSAT as a
SAT solver (it will not win any competitions; the point is the hardness
shape).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro._types import ALL
from repro.constraints.ast import Node, Not, Or, PathAtom
from repro.core.hierarchy import HierarchySchema
from repro.core.schema import DimensionSchema

#: A literal: (variable index, polarity); ``(2, False)`` is ``NOT x2``.
Literal = Tuple[int, bool]
Clause = Tuple[Literal, ...]

ROOT = "Q"
DUMMY = "T"


@dataclass(frozen=True)
class Cnf:
    """A CNF formula over variables ``x0 .. x_{n_vars-1}``."""

    n_vars: int
    clauses: Tuple[Clause, ...]

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Whether the assignment satisfies every clause."""
        return all(
            any(assignment[var] == polarity for var, polarity in clause)
            for clause in self.clauses
        )

    def brute_force_satisfiable(self) -> bool:
        """The ground-truth oracle: try all ``2^n`` assignments."""
        for bits in itertools.product((False, True), repeat=self.n_vars):
            if self.evaluate(bits):
                return True
        return False


def variable_category(index: int) -> str:
    """The category encoding variable ``x_index``."""
    return f"V{index}"


def encode(cnf: Cnf) -> DimensionSchema:
    """The dimension schema whose root-category satisfiability equals the
    formula's satisfiability.

    >>> cnf = Cnf(2, (((0, True), (1, True)),))
    >>> from repro.core import is_category_satisfiable
    >>> is_category_satisfiable(encode(cnf), ROOT)
    True
    """
    variables = [variable_category(i) for i in range(cnf.n_vars)]
    categories = [ROOT, DUMMY, *variables]
    edges = [(ROOT, DUMMY), (DUMMY, ALL)]
    for category in variables:
        edges.append((ROOT, category))
        edges.append((category, ALL))
    hierarchy = HierarchySchema(categories, edges)

    constraints: List[Node] = [PathAtom(ROOT, (DUMMY,))]
    for clause in cnf.clauses:
        literals: List[Node] = []
        for var, polarity in clause:
            atom = PathAtom(ROOT, (variable_category(var),))
            literals.append(atom if polarity else Not(atom))
        if len(literals) == 1:
            constraints.append(literals[0])
        else:
            constraints.append(Or(tuple(literals)))
    return DimensionSchema(hierarchy, constraints)


def decode_assignment(
    cnf: Cnf, categories: FrozenSet[str]
) -> List[bool]:
    """Read the truth assignment off a frozen dimension's categories."""
    return [variable_category(i) in categories for i in range(cnf.n_vars)]


def random_3cnf(
    n_vars: int, n_clauses: int, seed: int = 0
) -> Cnf:
    """A random 3-CNF formula (distinct variables within each clause).

    At ratio ``n_clauses / n_vars ~ 4.26`` the instances sit near the
    satisfiability phase transition, which is where the E8 benchmark
    samples.
    """
    if n_vars < 3:
        raise ValueError("random_3cnf needs at least 3 variables")
    rng = random.Random(seed)
    clauses: List[Clause] = []
    for _ in range(n_clauses):
        variables = rng.sample(range(n_vars), 3)
        clause = tuple(
            (var, rng.random() < 0.5) for var in variables
        )
        clauses.append(clause)
    return Cnf(n_vars, tuple(clauses))


def phase_transition_cnf(n_vars: int, seed: int = 0, ratio: float = 4.26) -> Cnf:
    """A random 3-CNF at the hard clause/variable ratio."""
    return random_3cnf(n_vars, max(1, round(ratio * n_vars)), seed)
