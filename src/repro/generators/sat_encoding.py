"""3-SAT as category satisfiability (Theorem 4, experiment E8).

The paper proves category satisfiability NP-complete "by a straightforward
reduction from SAT".  The reduction implemented here:

* one category ``V_i`` per propositional variable, a root category ``Q``,
  and a dummy category ``T``;
* edges ``Q -> V_i`` for every variable, ``Q -> T``, and ``V_i, T -> All``;
* the constraint ``Q -> T`` (so condition (C7) never interferes with an
  all-false assignment);
* per clause, the disjunction of its literals with ``x_i`` encoded as the
  path atom ``Q -> V_i`` and ``NOT x_i`` as its negation.

A subhierarchy with root ``Q`` picks a subset of the ``V_i`` - exactly a
truth assignment - and satisfies the constraint set iff the assignment
satisfies the formula, so::

    Q satisfiable in encode(phi)  <=>  phi satisfiable.

The module also ships a tiny CNF toolkit (random 3-CNF generation and a
brute-force satisfiability oracle) so the tests can verify the
equivalence on random formulas and the benchmark can measure DIMSAT as a
SAT solver (it will not win any competitions; the point is the hardness
shape).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro._types import ALL
from repro.constraints.ast import Node, Not, Or, PathAtom
from repro.core.hierarchy import HierarchySchema
from repro.core.schema import DimensionSchema

#: A literal: (variable index, polarity); ``(2, False)`` is ``NOT x2``.
Literal = Tuple[int, bool]
Clause = Tuple[Literal, ...]

ROOT = "Q"
DUMMY = "T"


@dataclass(frozen=True)
class Cnf:
    """A CNF formula over variables ``x0 .. x_{n_vars-1}``."""

    n_vars: int
    clauses: Tuple[Clause, ...]

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Whether the assignment satisfies every clause."""
        return all(
            any(assignment[var] == polarity for var, polarity in clause)
            for clause in self.clauses
        )

    def brute_force_satisfiable(self) -> bool:
        """The ground-truth oracle: try all ``2^n`` assignments."""
        for bits in itertools.product((False, True), repeat=self.n_vars):
            if self.evaluate(bits):
                return True
        return False

    def to_dimacs(self) -> str:
        """The formula in DIMACS CNF format (1-based signed literals).

        The export is exact: clause order, in-clause literal order, and
        duplicate literals are all preserved, so
        ``cnf_from_dimacs(cnf.to_dimacs()) == cnf`` holds for every
        well-formed :class:`Cnf`.  Used by the solver tests to feed the
        same instance to :class:`~repro.core.satsolver.Solver` and the
        brute-force oracle.
        """
        lines = [f"p cnf {self.n_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            rendered = " ".join(
                str(var + 1 if polarity else -(var + 1))
                for var, polarity in clause
            )
            lines.append(f"{rendered} 0".lstrip())
        return "\n".join(lines) + "\n"


def cnf_from_dimacs(text: str) -> Cnf:
    """Parse a DIMACS CNF document back into a :class:`Cnf`.

    Accepts comment lines (``c ...``), a single ``p cnf`` header, and
    clauses that span multiple lines (the ``0`` terminator, not the
    newline, ends a clause).  Raises :class:`ValueError` on a malformed
    document - a missing header, a literal outside the declared variable
    range, or an unterminated final clause.
    """
    n_vars: Optional[int] = None
    declared_clauses: Optional[int] = None
    clauses: List[Clause] = []
    pending: List[Literal] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            if n_vars is not None:
                raise ValueError("duplicate DIMACS header")
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed DIMACS header {line!r}")
            n_vars = int(parts[2])
            declared_clauses = int(parts[3])
            if n_vars < 0 or declared_clauses < 0:
                raise ValueError(f"negative counts in header {line!r}")
            continue
        if n_vars is None:
            raise ValueError("DIMACS clause before the 'p cnf' header")
        for token in line.split():
            value = int(token)
            if value == 0:
                clauses.append(tuple(pending))
                pending = []
                continue
            if abs(value) > n_vars:
                raise ValueError(
                    f"literal {value} exceeds declared variable count {n_vars}"
                )
            pending.append((abs(value) - 1, value > 0))
    if n_vars is None:
        raise ValueError("missing DIMACS 'p cnf' header")
    if pending:
        raise ValueError("unterminated final clause (missing trailing 0)")
    if declared_clauses is not None and declared_clauses != len(clauses):
        raise ValueError(
            f"header declares {declared_clauses} clauses, found {len(clauses)}"
        )
    return Cnf(n_vars, tuple(clauses))


def variable_category(index: int) -> str:
    """The category encoding variable ``x_index``."""
    return f"V{index}"


def encode(cnf: Cnf) -> DimensionSchema:
    """The dimension schema whose root-category satisfiability equals the
    formula's satisfiability.

    >>> cnf = Cnf(2, (((0, True), (1, True)),))
    >>> from repro.core import is_category_satisfiable
    >>> is_category_satisfiable(encode(cnf), ROOT)
    True
    """
    variables = [variable_category(i) for i in range(cnf.n_vars)]
    categories = [ROOT, DUMMY, *variables]
    edges = [(ROOT, DUMMY), (DUMMY, ALL)]
    for category in variables:
        edges.append((ROOT, category))
        edges.append((category, ALL))
    hierarchy = HierarchySchema(categories, edges)

    constraints: List[Node] = [PathAtom(ROOT, (DUMMY,))]
    for clause in cnf.clauses:
        literals: List[Node] = []
        for var, polarity in clause:
            atom = PathAtom(ROOT, (variable_category(var),))
            literals.append(atom if polarity else Not(atom))
        if len(literals) == 1:
            constraints.append(literals[0])
        else:
            constraints.append(Or(tuple(literals)))
    return DimensionSchema(hierarchy, constraints)


def decode_assignment(
    cnf: Cnf, categories: FrozenSet[str]
) -> List[bool]:
    """Read the truth assignment off a frozen dimension's categories."""
    return [variable_category(i) in categories for i in range(cnf.n_vars)]


def random_3cnf(
    n_vars: int, n_clauses: int, seed: int = 0
) -> Cnf:
    """A random 3-CNF formula (distinct variables within each clause).

    At ratio ``n_clauses / n_vars ~ 4.26`` the instances sit near the
    satisfiability phase transition, which is where the E8 benchmark
    samples.
    """
    if n_vars < 3:
        raise ValueError("random_3cnf needs at least 3 variables")
    rng = random.Random(seed)
    clauses: List[Clause] = []
    for _ in range(n_clauses):
        variables = rng.sample(range(n_vars), 3)
        clause = tuple(
            (var, rng.random() < 0.5) for var in variables
        )
        clauses.append(clause)
    return Cnf(n_vars, tuple(clauses))


def phase_transition_cnf(n_vars: int, seed: int = 0, ratio: float = 4.26) -> Cnf:
    """A random 3-CNF at the hard clause/variable ratio."""
    return random_3cnf(n_vars, max(1, round(ratio * n_vars)), seed)
