"""Generators: the paper example, synthetic schemas, suites, workloads."""

from repro.generators.location import (
    LOCATION_CONSTRAINTS,
    expected_frozen_names,
    figure5_subhierarchy,
    location_hierarchy,
    location_instance,
    location_schema,
    paper_frozen_structures,
)
from repro.generators.random_schema import (
    RandomSchemaConfig,
    bottom_category,
    make_unsatisfiable,
    random_hierarchy,
    random_schema,
    schemas_by_size,
)
from repro.generators.sat_encoding import (
    Cnf,
    decode_assignment,
    encode,
    phase_transition_cnf,
    random_3cnf,
)
from repro.generators.suite import (
    geography_instance,
    geography_schema,
    personnel_instance,
    personnel_schema,
    product_instance,
    product_schema,
    suite_schemas,
    time_instance,
    time_schema,
)
from repro.generators.workloads import (
    implication_workload,
    instance_from_frozen,
    random_fact_table,
    summarizability_workload,
)

__all__ = [
    "Cnf",
    "LOCATION_CONSTRAINTS",
    "RandomSchemaConfig",
    "bottom_category",
    "decode_assignment",
    "encode",
    "expected_frozen_names",
    "figure5_subhierarchy",
    "geography_instance",
    "geography_schema",
    "implication_workload",
    "instance_from_frozen",
    "location_hierarchy",
    "location_instance",
    "location_schema",
    "make_unsatisfiable",
    "paper_frozen_structures",
    "personnel_instance",
    "personnel_schema",
    "phase_transition_cnf",
    "product_instance",
    "product_schema",
    "random_3cnf",
    "random_fact_table",
    "random_hierarchy",
    "random_schema",
    "schemas_by_size",
    "suite_schemas",
    "summarizability_workload",
    "time_instance",
    "time_schema",
]
