"""The paper's running example: the ``location`` dimension (Figure 1) and
the ``locationSch`` dimension schema (Figure 3).

The hierarchy schema is reconstructed from the paper's prose (see DESIGN.md
section "Reading-level decisions"): stores roll up to City and - for USA
stores whose state is outside every sale region - directly to SaleRegion;
Canadian cities roll up through Province, Mexican and US cities through
State; Washington is the exception that rolls up straight to Country.

The concrete members below satisfy every statement the paper makes about
the instance:

* stores in all three countries, all reaching City, SaleRegion, Country;
* Canadian stores through Province, Mexican/US stores through State;
* the Washington store skipping State entirely;
* Mexican states and Canadian provinces inside sale regions, the US state
  outside them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.frozen import Subhierarchy, subhierarchy_from_edges
from repro.core.hierarchy import ALL, HierarchySchema
from repro.core.instance import DimensionInstance
from repro.core.schema import DimensionSchema

#: The textual form of the locationSch constraints, labelled (a)-(g) as in
#: Figure 5 (left).
LOCATION_CONSTRAINTS: Dict[str, str] = {
    "a": "Store -> City",
    "b": "Store.SaleRegion",
    "c": "City = 'Washington' iff City -> Country",
    "d": "City = 'Washington' implies City.Country = 'USA'",
    "e": "State.Country = 'Mexico' or State.Country = 'USA'",
    "f": "State.Country = 'Mexico' iff State -> SaleRegion",
    "g": "Province.Country = 'Canada'",
}


def location_hierarchy() -> HierarchySchema:
    """The hierarchy schema of Figure 1(A)."""
    categories = [
        "Store",
        "City",
        "State",
        "Province",
        "SaleRegion",
        "Country",
        ALL,
    ]
    edges = [
        ("Store", "City"),
        ("Store", "SaleRegion"),
        ("City", "State"),
        ("City", "Province"),
        ("City", "Country"),  # the Washington shortcut
        ("State", "SaleRegion"),
        ("State", "Country"),
        ("Province", "SaleRegion"),
        ("SaleRegion", "Country"),
        ("Country", ALL),
    ]
    return HierarchySchema(categories, edges)


def location_schema() -> DimensionSchema:
    """The dimension schema ``locationSch`` of Figure 3 / Example 8."""
    return DimensionSchema(location_hierarchy(), LOCATION_CONSTRAINTS.values())


def location_instance() -> DimensionInstance:
    """The dimension instance ``location`` of Figure 1(B).

    Name is the identity function (as in the paper's figure), so the
    country members are literally named ``Canada``, ``Mexico``, ``USA``
    and the exceptional city is named ``Washington``.
    """
    members = {
        # Stores.
        "s1": "Store",
        "s2": "Store",
        "s3": "Store",
        "s4": "Store",
        "s5": "Store",
        "s6": "Store",
        # Cities.
        "Toronto": "City",
        "Ottawa": "City",
        "Vancouver": "City",
        "MexicoCity": "City",
        "Austin": "City",
        "Washington": "City",
        # States and provinces.
        "DF": "State",
        "Texas": "State",
        "Ontario": "Province",
        "BritishColumbia": "Province",
        # Sale regions.
        "SR-North": "SaleRegion",
        "SR-South": "SaleRegion",
        "SR-West": "SaleRegion",
        # Countries.
        "Canada": "Country",
        "Mexico": "Country",
        "USA": "Country",
    }
    child_parent = [
        # Canadian stores: Store -> City -> Province -> SaleRegion -> Country.
        ("s1", "Toronto"),
        ("s2", "Ottawa"),
        ("s6", "Vancouver"),
        ("Toronto", "Ontario"),
        ("Ottawa", "Ontario"),
        ("Vancouver", "BritishColumbia"),
        ("Ontario", "SR-North"),
        ("BritishColumbia", "SR-North"),
        ("SR-North", "Canada"),
        # Mexican store: Store -> City -> State -> SaleRegion -> Country.
        ("s3", "MexicoCity"),
        ("MexicoCity", "DF"),
        ("DF", "SR-South"),
        ("SR-South", "Mexico"),
        # US store in Texas: the state is outside every sale region, so the
        # store reaches SaleRegion directly.
        ("s4", "Austin"),
        ("s4", "SR-West"),
        ("Austin", "Texas"),
        ("Texas", "USA"),
        ("SR-West", "USA"),
        # The Washington exception: City -> Country directly.
        ("s5", "Washington"),
        ("s5", "SR-West"),
        ("Washington", "USA"),
    ]
    return DimensionInstance(location_hierarchy(), members, child_parent)


def paper_frozen_structures() -> Dict[str, Subhierarchy]:
    """The four frozen-dimension skeletons of Figure 4, keyed by the
    country structure they describe."""
    return {
        "Canada": subhierarchy_from_edges(
            "Store",
            [
                ("Store", "City"),
                ("City", "Province"),
                ("Province", "SaleRegion"),
                ("SaleRegion", "Country"),
                ("Country", ALL),
            ],
        ),
        "Mexico": subhierarchy_from_edges(
            "Store",
            [
                ("Store", "City"),
                ("City", "State"),
                ("State", "SaleRegion"),
                ("SaleRegion", "Country"),
                ("Country", ALL),
            ],
        ),
        "USA": subhierarchy_from_edges(
            "Store",
            [
                ("Store", "City"),
                ("Store", "SaleRegion"),
                ("City", "State"),
                ("State", "Country"),
                ("SaleRegion", "Country"),
                ("Country", ALL),
            ],
        ),
        "USA-Washington": subhierarchy_from_edges(
            "Store",
            [
                ("Store", "City"),
                ("Store", "SaleRegion"),
                ("City", "Country"),
                ("SaleRegion", "Country"),
                ("Country", ALL),
            ],
        ),
    }


def expected_frozen_names() -> Dict[str, Dict[str, str]]:
    """The forced name assignments of each Figure 4 frozen dimension
    (categories left out carry ``nk``)."""
    return {
        "Canada": {"Country": "Canada"},
        "Mexico": {"Country": "Mexico"},
        "USA": {"Country": "USA"},
        "USA-Washington": {"City": "Washington", "Country": "USA"},
    }


def figure5_subhierarchy() -> Subhierarchy:
    """The subhierarchy ``g`` of Example 12 / Figure 5 (right).

    Reconstructed from the reduced constraint set the paper prints: it
    contains State *and* Province (so constraints (e) and (g) survive),
    reaches Country from both State and Province, lacks the edges
    ``City -> Country`` (so (c) reduces to false) and
    ``State -> SaleRegion`` (so (f) reduces to false), and keeps a path
    ``City -> ... -> Country`` (so (d) survives).
    """
    return subhierarchy_from_edges(
        "Store",
        [
            ("Store", "City"),
            ("City", "State"),
            ("City", "Province"),
            ("State", "Country"),
            ("Province", "SaleRegion"),
            ("SaleRegion", "Country"),
            ("Country", ALL),
        ],
    )
