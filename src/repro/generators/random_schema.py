"""Synthetic dimension schemas for the scaling benchmarks (E9, E10).

Proposition 4 bounds DIMSAT's running time in three parameters: the number
of categories ``N``, the largest per-category constant set ``N_K``, and
the constraint-set size ``N_SIGMA``.  The generator here produces layered,
acyclic hierarchy schemas whose knobs map one-to-one onto those
parameters, plus an ``into_fraction`` knob that controls how much of the
schema is pinned down by *into* constraints - the quantity the paper's
Section 5 conjecture ("heterogeneity arises as an exception") is about.

Layout: categories are spread over layers; every category has at least
one parent in the next layer (so Definition 1 holds and the schema is
acyclic), plus random extra same-layer-up and skip-layer edges that create
genuine heterogeneity for DIMSAT to explore.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Set, Tuple

from repro._types import ALL, Category, Edge
from repro.constraints.ast import Node, Not, Or, PathAtom
from repro.constraints.builder import compare, eq, into, one, path
from repro.core.hierarchy import HierarchySchema
from repro.core.schema import DimensionSchema
from repro.errors import SchemaError


@dataclass(frozen=True)
class RandomSchemaConfig:
    """Knobs of the synthetic schema generator.

    ``n_categories`` excludes ``All``; ``into_fraction`` is the probability
    that a category's primary (spanning) edge is declared an *into*
    constraint; ``n_constants`` is the size of each attributed category's
    constant pool (the paper's ``N_K``).
    """

    n_categories: int = 10
    n_layers: int = 4
    extra_edge_prob: float = 0.25
    skip_edge_prob: float = 0.10
    into_fraction: float = 0.8
    choice_constraint_prob: float = 0.5
    n_constants: int = 2
    attributed_fraction: float = 0.3
    equality_constraint_prob: float = 0.4
    #: Probability that an attributed category is *numeric*: its
    #: constraints use order predicates (the Section 6 extension) with
    #: numeric constants instead of symbolic equality atoms.
    numeric_fraction: float = 0.0
    seed: int = 0


def _layered_categories(config: RandomSchemaConfig) -> List[List[Category]]:
    """Spread ``c0 .. cN-1`` over the layers, bottom layer first."""
    layers: List[List[Category]] = [[] for _ in range(config.n_layers)]
    for index in range(config.n_categories):
        layers[index % config.n_layers].append(f"c{index}")
    return [layer for layer in layers if layer]


def random_hierarchy(config: RandomSchemaConfig) -> Tuple[HierarchySchema, List[Edge]]:
    """A layered hierarchy schema plus the list of primary (spanning)
    edges, which are the candidates for *into* constraints."""
    rng = random.Random(config.seed)
    layers = _layered_categories(config)
    layers.append([ALL])

    # Edges are accumulated in insertion order (with a seen-set for
    # dedup) rather than in a bare set, so the value handed to
    # HierarchySchema is bit-for-bit reproducible for a given seed even
    # across interpreters with different hash randomization.
    edges: List[Edge] = []
    seen: Set[Edge] = set()

    def add_edge(edge: Edge) -> None:
        if edge not in seen:
            seen.add(edge)
            edges.append(edge)

    primary: List[Edge] = []
    for depth, layer in enumerate(layers[:-1]):
        above = layers[depth + 1]
        for category in layer:
            target = rng.choice(above)
            add_edge((category, target))
            primary.append((category, target))
            for other in above:
                if other != target and rng.random() < config.extra_edge_prob:
                    add_edge((category, other))
            if depth + 2 < len(layers) and rng.random() < config.skip_edge_prob:
                add_edge((category, rng.choice(layers[depth + 2])))

    categories = [c for layer in layers for c in layer]
    return HierarchySchema(categories, edges), primary


def random_schema(config: RandomSchemaConfig) -> DimensionSchema:
    """A random dimension schema driven by the config knobs.

    The constraint set mixes the three shapes the paper discusses:

    * *into* constraints on primary edges (``into_fraction`` of them);
    * choice constraints ``one(c -> p1, c -> p2, ...)`` on heterogeneous
      categories (several parents), which force DIMSAT to branch;
    * equality-conditioned structure ``c.u = 'k' implies c -> p`` on
      attributed categories, which exercises the c-assignment search.
    """
    rng = random.Random(config.seed + 1)
    hierarchy, primary = random_hierarchy(config)
    constraints: List[Node] = []

    for child, parent in primary:
        if rng.random() < config.into_fraction:
            constraints.append(into(child, parent))

    for category in sorted(hierarchy.categories - {ALL}):
        parents = sorted(hierarchy.parents(category))
        if len(parents) >= 2 and rng.random() < config.choice_constraint_prob:
            atoms = tuple(path(category, parent) for parent in parents)
            if rng.random() < 0.5:
                constraints.append(one(*atoms))
            else:
                constraints.append(Or(atoms))

    attributed = [
        category
        for category in sorted(hierarchy.categories - {ALL})
        if rng.random() < config.attributed_fraction
    ]
    for category in attributed:
        ancestors = sorted(hierarchy.ancestors(category) - {ALL})
        parents = sorted(hierarchy.parents(category) - {ALL})
        if not ancestors or not parents:
            continue
        upper = rng.choice(ancestors)
        numeric = rng.random() < config.numeric_fraction
        for index in range(config.n_constants):
            if rng.random() < config.equality_constraint_prob:
                parent = rng.choice(parents)
                if numeric:
                    op = rng.choice(("<", "<=", ">", ">=", "!="))
                    threshold = (index + 1) * 10
                    antecedent: Node = compare(category, upper, op, threshold)
                else:
                    antecedent = eq(category, upper, f"k{index}")
                constraints.append(antecedent.implies(path(category, parent)))

    return DimensionSchema(hierarchy, constraints)


def make_unsatisfiable(
    schema: DimensionSchema, category: Category
) -> DimensionSchema:
    """Extend the schema so ``category`` becomes unsatisfiable.

    Adds ``not (c -> p)`` for every parent ``p``; condition (C7) then
    leaves the category's members nowhere to roll up.  This is the worst
    case for DIMSAT (and the common case in implication testing, where a
    *positive* answer requires exhausting the search space).
    """
    parents = schema.hierarchy.parents(category)
    extra = [Not(PathAtom(category, (parent,))) for parent in sorted(parents)]
    return schema.with_constraints(extra)


def schemas_by_size(
    sizes: Sequence[int], base: RandomSchemaConfig = RandomSchemaConfig()
) -> Dict[int, DimensionSchema]:
    """One random schema per requested category count (benchmark E9)."""
    result: Dict[int, DimensionSchema] = {}
    for size in sizes:
        config = RandomSchemaConfig(
            n_categories=size,
            n_layers=max(2, min(base.n_layers, size)),
            extra_edge_prob=base.extra_edge_prob,
            skip_edge_prob=base.skip_edge_prob,
            into_fraction=base.into_fraction,
            choice_constraint_prob=base.choice_constraint_prob,
            n_constants=base.n_constants,
            attributed_fraction=base.attributed_fraction,
            equality_constraint_prob=base.equality_constraint_prob,
            seed=base.seed + size,
        )
        result[size] = random_schema(config)
    return result


def bottom_category(schema: DimensionSchema) -> Category:
    """A deterministic bottom category to run DIMSAT against."""
    return sorted(schema.hierarchy.bottom_categories())[0]


# ----------------------------------------------------------------------
# Reproducible shrinking
# ----------------------------------------------------------------------


def _mentions(node: Node, category: Category) -> bool:
    """Whether a constraint mentions ``category`` in any of its atoms."""
    from repro.core.provenance import mentioned_categories

    return category in mentioned_categories(node)


def _without_category(
    schema: DimensionSchema, category: Category
) -> DimensionSchema:
    """The schema with ``category``, its edges, and every constraint that
    mentions it removed.  Raises if the result is not a valid schema."""
    hierarchy = schema.hierarchy
    categories = [c for c in sorted(hierarchy.categories) if c != category]
    edges = [
        edge
        for edge in sorted(hierarchy.edges)
        if category not in edge
    ]
    constraints = [
        node for node in schema.constraints if not _mentions(node, category)
    ]
    return DimensionSchema(HierarchySchema(categories, edges), constraints)


def _without_edge(schema: DimensionSchema, edge: Edge) -> DimensionSchema:
    """The schema with one hierarchy edge removed (constraints kept)."""
    hierarchy = schema.hierarchy
    edges = [e for e in sorted(hierarchy.edges) if e != edge]
    return DimensionSchema(
        HierarchySchema(sorted(hierarchy.categories), edges),
        list(schema.constraints),
    )


def shrink_schema(
    schema: DimensionSchema,
    predicate: Callable[[DimensionSchema], bool],
    max_rounds: int = 10,
) -> DimensionSchema:
    """Greedily minimize a failing schema while ``predicate`` stays true.

    ``predicate(candidate)`` must return ``True`` when the candidate still
    exhibits the failure being chased.  Candidates are tried in a fixed
    deterministic order - drop one constraint, then one category (with
    its edges and the constraints that mention it), then one edge - and
    every accepted removal restarts the scan, until a full round removes
    nothing or ``max_rounds`` is hit.  Candidates that produce an invalid
    schema, or on which the predicate itself raises, are skipped; the
    result is the smallest schema reached, never the empty one the
    predicate rejected.

    The shrinker is pure and deterministic: the same schema and the same
    (deterministic) predicate always yield the same minimal schema, which
    is what makes the emitted falsifier files stable enough to pin as
    regression tests.
    """
    if not predicate(schema):
        raise SchemaError(
            "shrink_schema needs a failing schema: the predicate returned "
            "False for the starting point"
        )

    def still_fails(candidate: DimensionSchema) -> bool:
        try:
            return predicate(candidate)
        except Exception:
            return False

    current = schema
    for _ in range(max_rounds):
        progressed = False

        for node in list(current.constraints):
            candidate_constraints = [
                other for other in current.constraints if other is not node
            ]
            try:
                candidate = DimensionSchema(
                    current.hierarchy, candidate_constraints
                )
            except Exception:
                continue
            if still_fails(candidate):
                current = candidate
                progressed = True

        for category in sorted(current.hierarchy.categories - {ALL}):
            try:
                candidate = _without_category(current, category)
            except Exception:
                continue
            if still_fails(candidate):
                current = candidate
                progressed = True

        for edge in sorted(current.hierarchy.edges):
            if edge not in current.hierarchy.edges:
                continue
            try:
                candidate = _without_edge(current, edge)
            except Exception:
                continue
            if still_fails(candidate):
                current = candidate
                progressed = True

        if not progressed:
            break
    return current


def write_falsifier(
    schema: DimensionSchema,
    path: str,
    note: str = "",
) -> str:
    """Write a shrunk failing schema as a ``repro-olap`` loadable file.

    The emitted document is the plain :mod:`repro.io.json_io` schema
    format (categories/edges/constraints), so the falsifier can be fed
    straight back to ``repro-olap dimsat FILE CATEGORY`` or loaded with
    :func:`repro.io.json_io.schema_from_json` inside a pinned regression
    test.  ``note`` (what failed, which seed found it) is stored under a
    ``"_falsifier"`` key that the loader ignores.  Returns ``path``.
    """
    import json
    import os

    from repro.io.json_io import schema_to_dict

    document = schema_to_dict(schema)
    if note:
        document["_falsifier"] = note
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
