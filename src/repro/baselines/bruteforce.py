"""Brute-force category satisfiability - the unoptimized baseline.

Theorem 3 makes category satisfiability a finite search: enumerate every
candidate frozen dimension (subhierarchy x c-assignment) and test each one
against the schema *from first principles* - materialize it as a real
dimension instance, validate conditions (C1)-(C7), and evaluate every
constraint with the Definition 4 semantics.

This is deliberately naive on three axes, which is what makes it useful:

* **no structural pruning** - all ``2^|E|`` edge subsets are considered,
  where DIMSAT only walks consistent subhierarchies;
* **no circle operator** - constraints are evaluated on materialized
  instances, not reduced per subhierarchy;
* **full c-assignments** - the constant product ranges over every
  category, not just the ones residual constraints mention.

It serves as the ground-truth oracle in the property-based tests (DIMSAT
must agree with it on every random schema) and as the baseline curve in
the scaling benchmarks (E9).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from repro._types import ALL, Category, Edge
from repro.constraints.semantics import satisfies_all
from repro.core.frozen import FrozenDimension, Subhierarchy
from repro.core.schema import NK, DimensionSchema
from repro.errors import InstanceError, SchemaError


@dataclass
class BruteForceStats:
    """Work counters, comparable with :class:`~repro.core.dimsat.DimsatStats`."""

    edge_subsets: int = 0
    valid_subhierarchies: int = 0
    candidates_tested: int = 0


def candidate_subhierarchies(
    schema: DimensionSchema, root: Category
) -> Iterator[Subhierarchy]:
    """Every valid subhierarchy of ``G`` with the given root.

    Enumerates all subsets of the edges reachable from the root and keeps
    those satisfying Definition 7 (categories between root and All) that
    are acyclic and shortcut free - i.e. the skeletons that could induce a
    frozen dimension.
    """
    hierarchy = schema.hierarchy
    relevant: List[Edge] = sorted(
        (child, parent)
        for child, parent in hierarchy.edges
        if hierarchy.reaches(root, child)
    )
    for bits in itertools.product((False, True), repeat=len(relevant)):
        edges = frozenset(e for e, keep in zip(relevant, bits) if keep)
        categories: Set[Category] = {root, ALL}
        for child, parent in edges:
            categories.add(child)
            categories.add(parent)
        sub = Subhierarchy(root, frozenset(categories), edges)
        try:
            sub.validate(hierarchy)
        except SchemaError:
            continue
        if not sub.is_acyclic() or sub.shortcut_edges():
            continue
        # Up-connectivity at the category level: every non-All category
        # needs an outgoing edge, otherwise its single member violates (C7).
        if any(
            category != ALL and not sub.parents_in(category)
            for category in sub.categories
        ):
            continue
        yield sub


def brute_force_frozen_dimensions(
    schema: DimensionSchema,
    root: Category,
    stats: Optional[BruteForceStats] = None,
) -> Iterator[FrozenDimension]:
    """Every frozen dimension with the given root, by exhaustive search.

    Unlike DIMSAT's enumeration, names of categories never mentioned by a
    constraint are still fixed to ``nk`` (otherwise the output would be
    infinite); but the *full* product over mentioned categories is tested
    without the circle-operator reduction.
    """
    stats = stats if stats is not None else BruteForceStats()
    hierarchy = schema.hierarchy
    for sub in candidate_subhierarchies(schema, root):
        stats.valid_subhierarchies += 1
        ordered = sorted(sub.categories - {ALL})
        domains = [schema.constant_domain(category) for category in ordered]
        for combo in itertools.product(*domains):
            stats.candidates_tested += 1
            names = {
                category: value
                for category, value in zip(ordered, combo)
                if value != NK
            }
            frozen = FrozenDimension(sub, names)
            try:
                instance = frozen.to_instance(schema)
            except InstanceError:
                continue
            if satisfies_all(instance, schema.constraints):
                yield frozen


def brute_force_satisfiable(
    schema: DimensionSchema,
    root: Category,
    stats: Optional[BruteForceStats] = None,
) -> bool:
    """Category satisfiability by exhaustive enumeration (the oracle).

    >>> from repro.generators.location import location_schema
    >>> brute_force_satisfiable(location_schema(), "Store")
    True
    """
    if root == ALL:
        return True
    if not schema.hierarchy.has_category(root):
        raise SchemaError(f"unknown category {root!r}")
    return next(brute_force_frozen_dimensions(schema, root, stats), None) is not None


def brute_force_implies(schema: DimensionSchema, constraint: object) -> bool:
    """Implication via Theorem 2 on top of the brute-force oracle."""
    from repro.constraints.ast import Node, Not
    from repro.constraints.atoms import validate_constraint
    from repro.constraints.parser import parse

    node: Node = parse(constraint) if isinstance(constraint, str) else constraint  # type: ignore[assignment]
    root = validate_constraint(schema.hierarchy, node)
    extended = schema.with_constraints([Not(node)])
    return not brute_force_satisfiable(extended, root)
