"""Null-padding homogenization - the Pedersen-Jensen baseline [14].

The alternative to constraint-aware reasoning is to *repair* the data:
insert placeholder ("null") members so that every member of a category has
ancestors in the same categories as its siblings.  After the repair the
dimension is homogeneous, rollup mappings are total, and classical
summarizability reasoning applies - at the costs the paper criticizes in
Section 1.3: extra members, extra edges, and sparser cube views.

The transformation pads each member ``x`` toward every ancestor category
any sibling uses, walking a shortest hierarchy path and at each step
reusing, in order of preference:

1. an ancestor ``x`` already has in that category;
2. the unique such ancestor of ``x``'s descendants (keeping partitioning
   (C2): a child that already rolls into a sale region forces its city's
   padded chain through the same sale region);
3. a fresh null member dedicated to ``x``.

A final pass drops member edges paralleled by a padded chain (condition
(C5)).  Two published limitations are preserved deliberately, because the
paper's Section 1.3 critique is about them:

* cyclic hierarchies are rejected ("does not scale to general
  heterogeneous dimensions");
* instances whose descendants disagree on a padded category (two children
  in different sale regions under one parentless-in-SaleRegion city)
  cannot be repaired without splitting members and raise
  :class:`~repro.errors.SchemaError`.

:func:`padding_report` quantifies the blow-up (experiment E13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro._types import ALL, Category, Member
from repro.core.hierarchy import HierarchySchema
from repro.core.instance import TOP_MEMBER, DimensionInstance
from repro.errors import SchemaError


@dataclass(frozen=True)
class PaddingReport:
    """Cost accounting for one homogenization run (experiment E13)."""

    original_members: int
    padded_members: int
    null_members: int
    original_edges: int
    padded_edges: int

    @property
    def member_blowup(self) -> float:
        """Padded member count relative to the original.

        An empty instance needs no padding, so its blow-up is 1.0 (no
        growth) rather than a division error.
        """
        if self.original_members == 0:
            return 1.0
        return self.padded_members / self.original_members

    @property
    def null_fraction(self) -> float:
        """Fraction of members in the padded instance that are nulls.

        0.0 for an empty instance: no members, so no nulls either.
        """
        if self.padded_members == 0:
            return 0.0
        return self.null_members / self.padded_members


def null_member(category: Category, owner: Member) -> str:
    """The placeholder for ``owner``'s missing ``category`` ancestor."""
    return f"null[{category}|{owner}]"


def is_null_member(member: Member) -> bool:
    """Whether a member was introduced by the padding transformation."""
    return isinstance(member, str) and member.startswith("null[")


class _Padder:
    """Mutable working state of one homogenization run."""

    def __init__(self, instance: DimensionInstance) -> None:
        self.instance = instance
        self.hierarchy: HierarchySchema = instance.hierarchy
        self.category_of: Dict[Member, Category] = {
            m: instance.category_of(m) for m in instance.all_members()
        }
        self.parents: Dict[Member, Set[Member]] = {
            m: set(instance.parents_of(m)) for m in instance.all_members()
        }
        self.children: Dict[Member, Set[Member]] = {m: set() for m in self.parents}
        for member, ps in self.parents.items():
            for parent in ps:
                self.children.setdefault(parent, set()).add(member)
        # Categories of the ancestors any member of each category reaches.
        # Derived from the mutable graph (not the frozen instance) because
        # it must be *re*-derived as padding mints new ancestries.
        self.required: Dict[Category, Set[Category]] = {}
        self._edges_added = 0
        self._recompute_required()

    # -- dynamic graph helpers ------------------------------------------

    def ancestor_in(self, member: Member, category: Category) -> Optional[Member]:
        seen: Set[Member] = set()
        stack = list(self.parents[member])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if self.category_of[node] == category:
                return node
            stack.extend(self.parents[node])
        return None

    def descendants(self, member: Member) -> Set[Member]:
        seen: Set[Member] = set()
        stack = list(self.children.get(member, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.children.get(node, ()))
        return seen

    def add_edge(self, child: Member, parent: Member) -> None:
        if parent not in self.parents[child]:
            self._edges_added += 1
        self.parents[child].add(parent)
        self.children.setdefault(parent, set()).add(child)

    def _recompute_required(self) -> None:
        """Re-derive each category's ancestor-category requirements from
        the *current* graph.

        ``pad_chain`` routes through intermediate categories and mints
        nulls there, so a requirement set computed once up-front goes
        stale mid-run: the null's category gains an ancestor category
        some of its real members never had, and those members must be
        padded there too for the result to be homogeneous.
        """
        required: Dict[Category, Set[Category]] = {
            c: set() for c in self.hierarchy.categories
        }
        for member, category in self.category_of.items():
            seen: Set[Member] = set()
            stack = list(self.parents[member])
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                required[category].add(self.category_of[node])
                stack.extend(self.parents[node])
        self.required = required

    # -- the padding walk ------------------------------------------------

    def resolve(self, owner: Member, category: Category) -> Tuple[Member, bool]:
        """The member that should represent ``owner``'s ancestor in
        ``category``; second component says whether it already existed."""
        existing = self.ancestor_in(owner, category)
        if existing is not None:
            return existing, True
        used = {
            self.ancestor_in(descendant, category)
            for descendant in self.descendants(owner)
        } - {None}
        if len(used) > 1:
            raise SchemaError(
                f"cannot pad {owner!r} in {category!r}: descendants roll up "
                f"to {len(used)} different members; null padding would need "
                f"member splitting (limitation of the published algorithm)"
            )
        if used:
            return used.pop(), True
        null = null_member(category, owner)
        if null in self.category_of:
            return null, bool(self.parents[null])
        self.category_of[null] = category
        self.parents[null] = set()
        self.children[null] = set()
        return null, False

    def shortest_path(self, start: Category, end: Category) -> Tuple[Category, ...]:
        best: Optional[Tuple[Category, ...]] = None
        for path in self.hierarchy.simple_paths(start, end):
            if best is None or (len(path), path) < (len(best), best):
                best = path
        if best is None:
            raise SchemaError(f"no hierarchy path from {start!r} to {end!r}")
        return best

    def pad_chain(self, member: Member, target: Category) -> None:
        """Ensure ``member`` rolls up to ``target``.

        Walks a shortest hierarchy route from the member's category through
        ``target`` on toward ``All``, resolving each step to an existing
        ancestor, a descendant-consistent member, or a fresh null.  The
        walk may pass *through* already-connected members (a store's real
        city still needs a null state hung off it) and stops once the
        target has been reached and the chain has met something already
        connected upward.
        """
        if self.ancestor_in(member, target) is not None:
            return
        category = self.category_of[member]
        route = list(self.shortest_path(category, target))
        if target != ALL:
            route += list(self.shortest_path(target, ALL)[1:])
        current = member
        target_reached = False
        for step in route[1:]:
            # Resolve relative to the *current* chain node: the new edge
            # hangs off it, so the candidate must be consistent with every
            # descendant of `current` (all siblings of `member` included),
            # and a null minted here is naturally shared by them.
            node, connected = self.resolve(current, step)
            if node not in self.parents[current] and node != current:
                self.add_edge(current, node)
            if step == target:
                target_reached = True
            if connected and target_reached:
                return
            current = node

    def run(self) -> DimensionInstance:
        # Pad to a fixpoint.  A single bottom-up pass is not enough:
        # padding routes through intermediate categories and mints nulls
        # there, which enlarges those categories' requirement sets, which
        # can oblige members padded *earlier* in the pass (or real members
        # never revisited) to grow new ancestries.  Each pass re-derives
        # the requirements from the current graph and re-pads everything;
        # the run is stable when a full pass adds no edge.  Termination:
        # a non-final pass strictly grows some requirement set, and the
        # sum of their sizes is bounded by |categories|^2.
        max_passes = 2 * len(self.hierarchy.categories) ** 2 + 4
        for _ in range(max_passes):
            edges_before = self._edges_added
            self._recompute_required()
            for category in _bottom_up(self.hierarchy):
                # Iterate the *current* member set: nulls minted while
                # padding lower categories live in upper categories and
                # must be padded to the same requirements as their real
                # siblings.
                current = sorted(
                    (m for m, c in self.category_of.items() if c == category),
                    key=repr,
                )
                for member in current:
                    for target in sorted(self.required[category]):
                        self.pad_chain(member, target)
            if self._edges_added == edges_before:
                break
        else:  # pragma: no cover - the bound is generous
            raise SchemaError(
                "homogenization did not reach a fixpoint within "
                f"{max_passes} passes"
            )
        self._repair_shortcuts()
        names = {m: self.instance.name(m) for m in self.instance.all_members()}
        edges = [
            (child, parent)
            for child, ps in self.parents.items()
            for parent in ps
        ]
        return DimensionInstance(self.hierarchy, self.category_of, edges, names=names)

    def _repair_shortcuts(self) -> None:
        """Drop member edges paralleled by a longer (padded) path (C5)."""
        for member in list(self.parents):
            for parent in list(self.parents[member]):
                others = self.parents[member] - {parent}
                if self._reaches_through(others, parent):
                    self.parents[member].discard(parent)
                    self.children[parent].discard(member)

    def _reaches_through(self, starts: Set[Member], target: Member) -> bool:
        stack = list(starts)
        seen: Set[Member] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node == target:
                return True
            stack.extend(self.parents[node])
        return False


def _bottom_up(hierarchy: HierarchySchema) -> List[Category]:
    """Children-before-parents category order of an acyclic hierarchy."""
    order: List[Category] = []
    seen: Set[Category] = set()

    def visit(category: Category) -> None:
        if category in seen:
            return
        seen.add(category)
        for child in sorted(hierarchy.children(category)):
            visit(child)
        order.append(category)

    for category in sorted(hierarchy.categories):
        visit(category)
    return order


def homogenize(instance: DimensionInstance) -> DimensionInstance:
    """Return a homogeneous instance covering ``instance`` with nulls.

    All members of a category end up with ancestors in exactly the same
    categories (the union of what any sibling used); real members keep
    their original rollup targets; all seven instance conditions hold.

    >>> from repro.generators.location import location_instance
    >>> homogenize(location_instance()).is_valid()
    True
    """
    if instance.hierarchy.is_cyclic():
        raise SchemaError(
            "null-padding homogenization supports acyclic hierarchies only "
            "(the published algorithm does not handle cycles)"
        )
    return _Padder(instance).run()


def padding_report(instance: DimensionInstance) -> PaddingReport:
    """Homogenize and measure the blow-up (experiment E13)."""
    padded = homogenize(instance)
    return PaddingReport(
        original_members=len(instance),
        padded_members=len(padded),
        null_members=sum(1 for m in padded.all_members() if is_null_member(m)),
        original_edges=sum(1 for _ in instance.member_edges()),
        padded_edges=sum(1 for _ in padded.member_edges()),
    )
