"""Dimensional-normal-form flattening - the Lehner et al. baseline [11].

Lehner, Albrecht and Wedekind handle heterogeneity by *restructuring the
schema*: categories that cause heterogeneity are taken out of the
hierarchy and kept as plain attributes of tables outside it, so that the
remaining hierarchy is homogeneous (in "dimensional normal form") and
classical summarizability holds along every retained edge.

Our transformation keeps a hierarchy edge ``(c, c')`` only when it is
*total* in the instance - every member of ``c`` has a direct parent in
``c'`` - which is the condition DNF needs for the child/parent relation to
flatten into a functional attribute.  Categories that become unreachable
from the bottom categories along retained edges are the ones "moved out"
as attribute tables; retained categories whose parents were all moved out
are re-attached directly to ``All``.

The paper's criticism (Section 1.3) is that this *limits summarizability
in the dimension instance*: every aggregation level that lived in a
moved-out category is lost to the navigator.  :func:`dnf_loss_report`
measures exactly that for experiment E14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro._types import ALL, Category, Edge
from repro.core.hierarchy import HierarchySchema
from repro.core.instance import TOP_MEMBER, DimensionInstance
from repro.core.summarizability import is_summarizable_in_instance


@dataclass(frozen=True)
class FlattenResult:
    """Outcome of a DNF flattening."""

    instance: DimensionInstance
    retained_categories: FrozenSet[Category]
    moved_out: FrozenSet[Category]
    retained_edges: FrozenSet[Edge]


def total_edges(instance: DimensionInstance) -> FrozenSet[Edge]:
    """Hierarchy edges whose direct rollup is total in the instance.

    ``(c, c')`` is kept when every member of ``c`` has a direct parent in
    ``c'``; empty categories keep their edges vacuously.
    """
    kept: Set[Edge] = set()
    for child, parent in instance.hierarchy.edges:
        members = instance.members(child)
        if all(
            any(instance.category_of(p) == parent for p in instance.parents_of(m))
            for m in members
        ):
            kept.add((child, parent))
    return frozenset(kept)


def flatten_to_dnf(instance: DimensionInstance) -> FlattenResult:
    """Flatten a heterogeneous instance into dimensional normal form.

    >>> from repro.generators.location import location_instance
    >>> result = flatten_to_dnf(location_instance())
    >>> sorted(result.moved_out)
    ['Country', 'Province', 'SaleRegion', 'State']
    """
    hierarchy = instance.hierarchy
    totals = total_edges(instance)

    # Categories reachable from a bottom category along total edges.
    retained: Set[Category] = set(hierarchy.bottom_categories())
    changed = True
    while changed:
        changed = False
        for child, parent in totals:
            if child in retained and parent not in retained and parent != ALL:
                retained.add(parent)
                changed = True
    retained.add(ALL)

    kept_edges: Set[Edge] = {
        (child, parent)
        for child, parent in totals
        if child in retained and parent in retained
    }
    # Re-attach retained categories whose retained parents all vanished.
    for category in retained:
        if category == ALL:
            continue
        if not any(child == category for child, _parent in kept_edges):
            kept_edges.add((category, ALL))

    flat_hierarchy = HierarchySchema(retained, kept_edges)

    members = {
        m: instance.category_of(m)
        for m in instance.all_members()
        if instance.category_of(m) in retained
    }
    edges = [
        (child, parent)
        for child, parent in instance.member_edges()
        if child in members
        and parent in members
        and (instance.category_of(child), instance.category_of(parent)) in kept_edges
    ]
    names = {m: instance.name(m) for m in members}
    flat = DimensionInstance(flat_hierarchy, members, edges, names=names)
    moved = frozenset(hierarchy.categories - retained)
    return FlattenResult(
        instance=flat,
        retained_categories=frozenset(retained),
        moved_out=moved,
        retained_edges=frozenset(kept_edges),
    )


@dataclass(frozen=True)
class DnfLossReport:
    """Summarizability lost by flattening (experiment E14)."""

    original_pairs: Tuple[Tuple[Category, Category], ...]
    surviving_pairs: Tuple[Tuple[Category, Category], ...]
    moved_out: FrozenSet[Category]

    @property
    def lost_pairs(self) -> Tuple[Tuple[Category, Category], ...]:
        surviving = set(self.surviving_pairs)
        return tuple(p for p in self.original_pairs if p not in surviving)

    @property
    def loss_fraction(self) -> float:
        if not self.original_pairs:
            return 0.0
        return len(self.lost_pairs) / len(self.original_pairs)


def _summarizable_pairs(
    instance: DimensionInstance,
) -> List[Tuple[Category, Category]]:
    hierarchy = instance.hierarchy
    pairs: List[Tuple[Category, Category]] = []
    for source in sorted(hierarchy.categories - {ALL}):
        for target in sorted(hierarchy.categories - {ALL}):
            if source == target or not hierarchy.reaches(source, target):
                continue
            if is_summarizable_in_instance(instance, target, [source]):
                pairs.append((source, target))
    return pairs


def dnf_loss_report(instance: DimensionInstance) -> DnfLossReport:
    """Compare single-source summarizable pairs before and after DNF.

    A pair survives only if both categories are retained *and* the pair is
    still summarizable in the flattened instance.
    """
    original = _summarizable_pairs(instance)
    result = flatten_to_dnf(instance)
    surviving = [
        pair
        for pair in _summarizable_pairs(result.instance)
        if pair in set(original)
    ]
    return DnfLossReport(
        original_pairs=tuple(original),
        surviving_pairs=tuple(surviving),
        moved_out=result.moved_out,
    )
