"""Split constraints - the authors' own earlier formalism [6].

A *split constraint* on a category ``c`` lists the possible *sets* of
categories the members of ``c`` may roll up to: every member's reached
category set must equal one of the allowed sets.  The paper's Section 1.3
explains why this is not enough for general heterogeneous dimensions:

* heterogeneity is better captured by possible hierarchy *paths* than by
  possible *sets* of reached categories, and
* split constraints have no attribute component, so dependencies between
  rollup structure and attribute values (Example 6: "stores that roll up
  to Canada go through Province") are inexpressible.

This module implements the formalism (satisfaction, inference of the
tightest split description from an instance) and constructs the witness
pair for the expressiveness gap: two instances with identical split
descriptions that a single dimension constraint tells apart
(experiment E15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro._types import ALL, Category
from repro.constraints.ast import And, ExactlyOne, Node, Not, RollsUpAtom, TrueConst
from repro.core.hierarchy import HierarchySchema
from repro.core.instance import DimensionInstance
from repro.core.rollup import reached_categories
from repro.errors import SchemaError

CategorySet = FrozenSet[Category]


@dataclass(frozen=True)
class SplitConstraint:
    """``gamma(category) in allowed``: every member of ``category`` rolls
    up to exactly the categories of one allowed set.

    Reached sets always include ``All`` for members of satisfiable
    categories; allowed sets are stored as given, with ``All`` added for
    convenience.
    """

    category: Category
    allowed: FrozenSet[CategorySet]

    def normalized(self) -> "SplitConstraint":
        """The same constraint with ``All`` added to every allowed set."""
        return SplitConstraint(
            self.category,
            frozenset(frozenset(s | {ALL}) for s in self.allowed),
        )

    def holds_in(self, instance: DimensionInstance) -> bool:
        """Whether every member's reached category set is allowed."""
        allowed = self.normalized().allowed
        return all(
            frozenset(reached_categories(instance, member)) in allowed
            for member in instance.members(self.category)
        )


def split_description(
    instance: DimensionInstance, category: Category
) -> FrozenSet[CategorySet]:
    """The observed family of reached category sets for one category.

    This is the tightest split constraint the instance satisfies on that
    category.
    """
    if not instance.hierarchy.has_category(category):
        raise SchemaError(f"unknown category {category!r}")
    return frozenset(
        frozenset(reached_categories(instance, member))
        for member in instance.members(category)
    )


def infer_split_constraints(
    instance: DimensionInstance,
) -> Dict[Category, SplitConstraint]:
    """The tightest split constraint per non-empty category."""
    result: Dict[Category, SplitConstraint] = {}
    for category in sorted(instance.hierarchy.categories - {ALL}):
        if not instance.members(category):
            continue
        result[category] = SplitConstraint(
            category, split_description(instance, category)
        )
    return result


def same_split_descriptions(
    left: DimensionInstance, right: DimensionInstance
) -> bool:
    """Whether two instances over the same hierarchy are indistinguishable
    by split constraints (identical tightest descriptions everywhere)."""
    if left.hierarchy != right.hierarchy:
        return False
    return all(
        split_description(left, category) == split_description(right, category)
        for category in left.hierarchy.categories - {ALL}
    )


def split_to_dimension_constraint(
    constraint: SplitConstraint, hierarchy: HierarchySchema
) -> Node:
    """Express a split constraint as a dimension constraint.

    The paper's Section 1.3 observes that split constraints are "a
    particular class" of what dimension constraints can say; this is the
    embedding: for a split constraint with allowed sets ``A_1 .. A_k``
    over the universe ``U`` of categories reachable from the root,

        one( AND_{u in A_i} c.u  AND  AND_{u not in A_i} not c.u
             for each i )

    i.e. the member's reached-category set equals exactly one allowed
    set.  :func:`tests <repro.constraints.semantics.satisfies>` of the
    result agree with :meth:`SplitConstraint.holds_in` on every instance
    (verified in the test suite), which *proves* the inclusion claimed by
    the paper on the implemented fragment.
    """
    root = constraint.category
    universe = sorted(hierarchy.ancestors(root) - {ALL})
    options = []
    for allowed in sorted(
        constraint.normalized().allowed, key=lambda s: sorted(s)
    ):
        inside = sorted((allowed - {ALL, root}) & set(universe))
        outside = sorted(set(universe) - allowed)
        parts: list = []
        parts.extend(RollsUpAtom(root, category) for category in inside)
        parts.extend(Not(RollsUpAtom(root, category)) for category in outside)
        if not parts:
            option: Node = TrueConst()
        elif len(parts) == 1:
            option = parts[0]
        else:
            option = And(tuple(parts))
        options.append(option)
    if not options:
        from repro.constraints.ast import FALSE

        return FALSE
    return ExactlyOne(tuple(options))


# ----------------------------------------------------------------------
# The expressiveness gap (experiment E15)
# ----------------------------------------------------------------------


def gap_hierarchy() -> HierarchySchema:
    """The hierarchy used by the expressiveness-gap witness pair."""
    return HierarchySchema(
        ["A", "B", "C", "D", "E"],
        [
            ("A", "B"),
            ("A", "C"),
            ("B", "D"),
            ("B", "E"),
            ("C", "E"),
            ("D", ALL),
            ("E", ALL),
        ],
    )


def gap_instances() -> Tuple[DimensionInstance, DimensionInstance]:
    """Two instances with identical split descriptions that the dimension
    constraint ``B = 'k' implies not (B -> E)`` tells apart.

    In both instances category ``B`` exhibits the reached-set family
    ``{{D, All}, {D, E, All}}`` - but *which* member (by name) takes which
    structure differs, a dependency split constraints cannot express
    because they have no attribute component (the paper's Example 6
    motivation).
    """
    g = gap_hierarchy()

    def build(k_has_e: bool) -> DimensionInstance:
        members = {
            "a1": "A",
            "a2": "A",
            "b_k": "B",
            "b_m": "B",
            "c1": "C",
            "c2": "C",
            "d1": "D",
            "d2": "D",
            "e1": "E",
            "e2": "E",
        }
        rich, plain = ("b_k", "b_m") if k_has_e else ("b_m", "b_k")
        edges = [
            ("a1", rich),
            ("a1", "c1"),
            ("a2", plain),
            ("a2", "c2"),
            ("b_k", "d1"),
            ("b_m", "d2"),
            (rich, "e1"),
            ("c1", "e1"),
            ("c2", "e2"),
        ]
        names = {"b_k": "k", "b_m": "m"}
        return DimensionInstance(g, members, edges, names=names)

    return build(False), build(True)
