"""Related-work baselines (Section 1.3): brute-force satisfiability,
Pedersen-Jensen null padding, Lehner et al. DNF flattening, and the
authors' earlier split constraints.
"""

from repro.baselines.bruteforce import (
    BruteForceStats,
    brute_force_frozen_dimensions,
    brute_force_implies,
    brute_force_satisfiable,
    candidate_subhierarchies,
)
from repro.baselines.dnf import (
    DnfLossReport,
    FlattenResult,
    dnf_loss_report,
    flatten_to_dnf,
    total_edges,
)
from repro.baselines.homogenize import (
    PaddingReport,
    homogenize,
    is_null_member,
    null_member,
    padding_report,
)
from repro.baselines.split_constraints import (
    SplitConstraint,
    split_to_dimension_constraint,
    gap_hierarchy,
    gap_instances,
    infer_split_constraints,
    same_split_descriptions,
    split_description,
)

__all__ = [
    "BruteForceStats",
    "DnfLossReport",
    "FlattenResult",
    "PaddingReport",
    "SplitConstraint",
    "brute_force_frozen_dimensions",
    "brute_force_implies",
    "brute_force_satisfiable",
    "candidate_subhierarchies",
    "dnf_loss_report",
    "flatten_to_dnf",
    "gap_hierarchy",
    "gap_instances",
    "homogenize",
    "infer_split_constraints",
    "is_null_member",
    "null_member",
    "padding_report",
    "same_split_descriptions",
    "split_description",
    "split_to_dimension_constraint",
    "total_edges",
]
