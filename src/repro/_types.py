"""Shared primitive type aliases.

These live in a leaf module so that :mod:`repro.constraints` (which needs
``Category``) never has to import :mod:`repro.core` and trigger its package
initializer - the constraint AST is below the dimension model in the
dependency order.
"""

from typing import Hashable, Tuple

#: A category of a hierarchy schema.  Categories are plain strings.
Category = str

#: A child/parent edge between categories.
Edge = Tuple[Category, Category]

#: A member of a dimension instance; any hashable value works.
Member = Hashable

#: Name of the distinguished top category, present in every hierarchy schema.
ALL = "All"
