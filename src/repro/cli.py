"""Command-line interface: schema reasoning without writing Python.

Installed as ``repro-olap`` (see pyproject); also runnable as
``python -m repro.cli``.  Schemas travel as JSON files (the
:mod:`repro.io.json_io` format), instances as JSON or the CSV dimension
format.

Subcommands
-----------

``audit SCHEMA``
    Satisfiability verdict for every category; exit code 1 when some
    category is unsatisfiable.
``implies SCHEMA CONSTRAINT``
    Test ``ds |= constraint``; prints the verdict and, when refuted, the
    counterexample frozen dimension.  Exit code 1 on "not implied".
``summarizable SCHEMA TARGET SOURCE [SOURCE ...]``
    Schema-level summarizability; exit code 1 on "no".
``frozen SCHEMA ROOT [--dot]``
    Enumerate the frozen dimensions with the given root.
``validate SCHEMA INSTANCE``
    Check an instance file against (C1)-(C7) and the schema's
    constraints; exit code 1 on any violation.
``explain SCHEMA TARGET SOURCE [SOURCE ...]``
    Summarizability verdict with evidence (lost / double-counted facts,
    counterexample shape).
``show SCHEMA [INSTANCE]``
    Render the hierarchy (and optionally an instance) as text trees.
``stats SCHEMA``
    Schema metrics (N, N_K, N_SIGMA, heterogeneity, into coverage) and
    realized DIMSAT effort per bottom category.
``normalize SCHEMA``
    Drop redundant constraints, declare implied intos, print the
    normalized schema JSON (diagnostics on stderr).
``satisfiable SCHEMA CATEGORY``
    Satisfiability of one category, with the witness frozen dimension.
``dot SCHEMA``
    Emit the hierarchy as Graphviz DOT.
``trace SCHEMA DECISION ARGS...``
    Re-run one decision (``satisfiable``, ``implies`` or
    ``summarizable``) with the trace layer enabled and print the verdict
    together with every recorded span and event; ``--json`` emits the
    raw trace document instead of the text rendering.
``compile SCHEMA``
    Build the schema's compiled decision artifact (per-root CNF plus the
    incremental SAT solver state) and print its shape; exit code 1 when
    the schema is not compilable (decisions then fall back to the
    interpreted kernel).
``audit-verify LOG``
    Replay a decision audit log (an ``audit.jsonl`` file or the
    telemetry directory containing one) against the sequential kernel
    and fail on any byte-level divergence between recorded and
    recomputed verdicts.  Exit code 1 on divergence.
``report --telemetry DIR``
    Operator report over a telemetry directory: p50/p95/p99 latency per
    decision kind, cache hit rates, resilience counters, top spans.
    (``report SCHEMA`` remains the markdown schema report.)
``soak [--seconds S] [--engine E] [--inject-faults SPEC]``
    Drive the resilient decision stack over the adversarial generator
    corpus (:mod:`repro.generators.adversarial`) with mixed
    decide/navigate/edit traffic, checking metamorphic invariants on
    every step; exit code 1 on any invariant violation or wrong verdict
    (UNKNOWN outcomes are allowed).  ``--falsifier-dir`` shrinks every
    schema-level violation to a minimal loadable falsifier file.

The global ``--emit-metrics PATH`` flag writes a JSON snapshot of the
process-wide metrics registry (counters, gauges, histograms) after any
command, successful or not.

The global ``--telemetry-dir DIR`` flag turns the full export pipeline
on for the command: spans/events stream to ``spans.jsonl`` /
``events.jsonl``, every decision appends to the durable
``audit.jsonl`` log (with the ``schemas.jsonl`` sidecar that makes it
replayable), and on exit the directory gains ``metrics.json``,
``metrics.prom`` (Prometheus text exposition), ``trace.json`` (Chrome
trace-event / Perfetto flamegraph), and a ``MANIFEST.json`` with the
drop counters.  Off, the instrumented hot paths cost one attribute
check.

The global ``--engine compiled`` flag serves every decision through the
per-schema compiled tier (:mod:`repro.core.compile`): the first decision
pays one compilation, later ones are SAT calls over the artifact with
all previously learned clauses in place.

Resilience flags: ``--retries N`` serves decisions through the
:class:`~repro.core.resilience.ResilientDecisionEngine` (retry with
backoff, sequential degradation, typed UNKNOWN), and
``--inject-faults SPEC`` activates the deterministic fault harness for
the command (drills and testing; see :mod:`repro.core.faults` for the
spec grammar).  Exit codes: 0 yes/ok, 1 negative verdict, 2 usage or
input error, 3 budget exceeded, 4 decision unavailable (every rung of
the resilience ladder failed).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.constraints.semantics import failures
from repro.core import (
    ALL,
    CompilationError,
    CompiledDecisionEngine,
    DecisionBudget,
    ParallelDecisionEngine,
    ResilientDecisionEngine,
    RetryPolicy,
    compiled_artifact_store,
    dimsat,
    enumerate_frozen_dimensions,
    implies,
    inject_faults,
    is_summarizable_in_schema,
    satisfiability_report,
)
from repro.core.schema import DimensionSchema
from repro.errors import BudgetExceeded, DecisionUnavailable, ReproError
from repro.io import (
    frozen_set_to_dot,
    hierarchy_to_dot,
    instance_from_json,
    schema_from_json,
)


def _load_schema(path: str) -> DimensionSchema:
    return schema_from_json(Path(path).read_text())


def _budget_from_args(args: argparse.Namespace) -> Optional[DecisionBudget]:
    ms = getattr(args, "budget_ms", None)
    if ms is None:
        return None
    return DecisionBudget(time_ms=ms)


def _engine_from_args(args: argparse.Namespace):
    """The decision engine ``--workers``/``--budget-ms``/``--retries``
    asked for, else ``None`` (the plain sequential entry points).

    ``--retries`` wraps the parallel engine in a
    :class:`~repro.core.resilience.ResilientDecisionEngine`: transient
    failures are retried with backoff, a persistently failing pool
    degrades to the sequential kernel, and a decision no rung can serve
    exits with code 4 instead of a traceback.
    """
    workers = getattr(args, "workers", None)
    budget = _budget_from_args(args)
    retries = getattr(args, "retries", None)
    engine_name = getattr(args, "engine", None)
    if engine_name == "compiled":
        engine = CompiledDecisionEngine(budget=budget)
    elif engine_name == "parallel":
        engine = ParallelDecisionEngine(max_workers=workers or 2, budget=budget)
    elif engine_name == "sequential":
        engine = ParallelDecisionEngine(max_workers=1, budget=budget)
    elif workers is None and budget is None and retries is None:
        return None
    else:
        engine = ParallelDecisionEngine(max_workers=workers or 1, budget=budget)
    if retries is None:
        return engine
    return ResilientDecisionEngine(
        engine, retry=RetryPolicy(max_attempts=max(1, retries))
    )


def _cmd_audit(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    engine = _engine_from_args(args)
    unknown = 0
    if engine is not None:
        with engine:
            categories = [
                c for c in sorted(schema.hierarchy.categories) if c != ALL
            ]
            requests = [(schema, ("dimsat", c)) for c in categories]
            if hasattr(engine, "decide_many_outcomes"):
                # Resilient engine: a category no rung could decide shows
                # as UNKN instead of killing the audit.
                outcomes = engine.decide_many_outcomes(requests)
                verdicts = [o.verdict for o in outcomes]
            else:
                verdicts = engine.decide_many(requests)
        report = dict(zip(categories, verdicts))
        report[ALL] = True
    else:
        report = satisfiability_report(schema)
    bad = 0
    for category, satisfiable in sorted(report.items()):
        if satisfiable is None:
            marker = "UNKN"
            unknown += 1
        elif satisfiable:
            marker = "ok "
        else:
            marker = "DEAD"
            bad += 1
        print(f"{marker}  {category}")
    if bad:
        print(f"{bad} unsatisfiable categor{'y' if bad == 1 else 'ies'}")
    if unknown:
        print(
            f"{unknown} categor{'y' if unknown == 1 else 'ies'} could not "
            "be decided (see exit code 4)"
        )
        return 4
    return 1 if bad else 0


def _cmd_implies(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    engine = _engine_from_args(args)
    if engine is not None:
        with engine:
            result = engine.implies(schema, args.constraint)
    else:
        result = implies(schema, args.constraint)
    if result.implied:
        print("implied")
        return 0
    print("not implied")
    if result.counterexample is not None:
        print(f"counterexample: {result.counterexample.describe()}")
    return 1


def _cmd_summarizable(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    engine = _engine_from_args(args)
    if engine is not None:
        with engine:
            verdict = engine.is_summarizable(schema, args.target, args.sources)
    else:
        verdict = is_summarizable_in_schema(schema, args.target, args.sources)
    print("yes" if verdict else "no")
    return 0 if verdict else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.core.explain import explain_summarizability_in_schema

    schema = _load_schema(args.schema)
    explanation = explain_summarizability_in_schema(
        schema, args.target, args.sources
    )
    print(explanation.render())
    return 0 if explanation.summarizable else 1


def _cmd_frozen(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    found = enumerate_frozen_dimensions(schema, args.root)
    if args.dot:
        print(frozen_set_to_dot(found))
        return 0
    if not found:
        print(f"category {args.root} is unsatisfiable")
        return 1
    for index, frozen in enumerate(found, start=1):
        print(f"f{index}: {frozen.describe()}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    document = json.loads(Path(args.instance).read_text())
    # Accept either a full instance document or one without a hierarchy
    # (then the schema's hierarchy is used).
    if "hierarchy" not in document:
        from repro.io import hierarchy_to_dict

        document["hierarchy"] = hierarchy_to_dict(schema.hierarchy)
    from repro.core import DimensionInstance
    from repro.io import instance_from_dict

    try:
        instance = instance_from_dict(document)
    except ReproError as error:
        print(f"INVALID: {error}")
        return 1
    problems: List[str] = []
    for node, members in failures(instance, schema.constraints):
        rendered = ", ".join(str(m) for m in members[:5])
        problems.append(f"constraint {node!r} violated at: {rendered}")
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    print(f"valid: {len(instance)} members satisfy (C1)-(C7) and all "
          f"{len(schema.constraints)} constraints")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    print(hierarchy_to_dot(schema.hierarchy))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.io import hierarchy_tree, instance_tree

    schema = _load_schema(args.schema)
    print(hierarchy_tree(schema.hierarchy))
    if schema.constraints:
        print("\nconstraints:")
        for node in schema.constraints:
            print(f"  {node}")
    if args.instance:
        instance = instance_from_json(Path(args.instance).read_text())
        print()
        print(instance_tree(instance))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.telemetry is not None:
        if args.schema is not None:
            raise ReproError(
                "report takes either a SCHEMA or --telemetry DIR, not both"
            )
        from repro.core.telemetry import render_report

        print(render_report(args.telemetry))
        return 0
    if args.schema is None:
        raise ReproError("report needs a SCHEMA (or --telemetry DIR)")
    from repro.io.markdown import schema_report

    schema = _load_schema(args.schema)
    print(schema_report(schema, root=args.root))
    return 0


def _cmd_audit_verify(args: argparse.Namespace) -> int:
    from repro.core.auditlog import verify_audit_log

    report = verify_audit_log(args.log, args.schemas)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_normalize(args: argparse.Namespace) -> int:
    from repro.core.normalize import minimize, strengthen_with_intos
    from repro.io import schema_to_json

    schema = _load_schema(args.schema)
    minimized, dropped = minimize(schema)
    strengthened, added = strengthen_with_intos(minimized)
    for node in dropped:
        print(f"dropped (redundant): {node}", file=sys.stderr)
    for child, parent in added:
        print(f"declared implied into: {child} -> {parent}", file=sys.stderr)
    print(schema_to_json(strengthened))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.core.profile import profile_report

    schema = _load_schema(args.schema)
    print(profile_report(schema))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Re-run one decision with tracing on and show what the kernel did.

    Caching is disabled for the traced run (``cache=None``) so the spans
    cover the actual decision procedure, not a dictionary lookup.
    """
    from repro.core.trace import tracer, tracing

    schema = _load_schema(args.schema)
    budget = _budget_from_args(args)
    with tracing():
        if args.decision == "satisfiable":
            if len(args.args) != 1:
                raise ReproError("trace satisfiable needs exactly one CATEGORY")
            result = dimsat(schema, args.args[0], budget=budget)
            verdict = result.satisfiable
        elif args.decision == "implies":
            if len(args.args) != 1:
                raise ReproError("trace implies needs exactly one CONSTRAINT")
            result = implies(schema, args.args[0], cache=None, budget=budget)
            verdict = result.implied
        elif args.decision == "summarizable":
            if len(args.args) < 2:
                raise ReproError(
                    "trace summarizable needs TARGET SOURCE [SOURCE ...]"
                )
            verdict = is_summarizable_in_schema(
                schema, args.args[0], args.args[1:], cache=None, budget=budget
            )
        else:  # pragma: no cover - argparse choices forbid this
            raise ReproError(f"unknown decision {args.decision!r}")
        document = tracer().snapshot()
    document["decision"] = [args.decision, *args.args]
    document["verdict"] = bool(verdict)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(f"verdict: {'yes' if verdict else 'no'}")
        for span in document["spans"]:
            indent = "  " * _span_depth(document["spans"], span)
            attrs = ", ".join(
                f"{k}={v}" for k, v in sorted(span["attrs"].items())
            )
            print(
                f"{indent}{span['name']}  {span['duration_ms']:.3f} ms"
                + (f"  [{attrs}]" if attrs else "")
            )
        for name, stats in sorted(document["summary"].items()):
            print(
                f"summary: {name}  count={stats['count']} "
                f"total={stats['total_ms']:.3f} ms"
            )
    return 0 if verdict else 1


def _span_depth(spans: List[dict], span: dict) -> int:
    """Nesting depth of one span inside a snapshot's span list."""
    by_id = {s["span_id"]: s for s in spans}
    depth = 0
    parent = span.get("parent_id")
    while parent is not None and parent in by_id:
        depth += 1
        parent = by_id[parent].get("parent_id")
    return depth


def _cmd_satisfiable(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    engine = _engine_from_args(args)
    if engine is not None:
        with engine:
            result = engine.dimsat(schema, args.category)
    else:
        result = dimsat(schema, args.category)
    if result.satisfiable:
        print(f"satisfiable: {result.witness.describe()}")
        return 0
    print("unsatisfiable")
    return 1


def _cmd_compile(args: argparse.Namespace) -> int:
    """Compile a schema into its decision artifact and report its shape."""
    schema = _load_schema(args.schema)
    store = compiled_artifact_store()
    try:
        artifact = store.get(schema)
        report = artifact.compile_all_roots()
    except CompilationError as error:
        print(f"not compilable: {error}")
        print("decisions for this schema fall back to the interpreted kernel")
        return 1
    if args.json:
        print(json.dumps(artifact.describe(), indent=2, sort_keys=True))
        return 0
    print(f"fingerprint {artifact.fingerprint}")
    header = f"{'root':<16} {'subs':>5} {'vars':>6} {'clauses':>8} {'learned':>8}"
    print(header)
    for root, info in report.items():
        print(
            f"{root:<16} {info['subhierarchies']:>5} {info['variables']:>6} "
            f"{info['clauses']:>8} {info['learned_clauses']:>8}"
        )
    total_subs = sum(info["subhierarchies"] for info in report.values())
    print(f"{len(report)} roots compiled, {total_subs} subhierarchies total")
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.core.soak import SoakConfig, run_soak

    config = SoakConfig(
        engine=getattr(args, "engine", None) or "compiled",
        seconds=args.seconds,
        max_steps=args.max_steps,
        seed=args.seed,
        families=args.families,
        per_family=args.per_family,
        workers=getattr(args, "workers", None) or 2,
        retries=getattr(args, "retries", None) or 3,
        budget_ms=getattr(args, "budget_ms", None),
        check_every=args.check_every,
        falsifier_dir=args.falsifier_dir,
    )
    report = run_soak(config)
    print(report.render())
    document = json.dumps(report.as_dict(), indent=2, sort_keys=True)
    if args.json:
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(document + "\n")
    telemetry_dir = getattr(args, "telemetry_dir", None)
    if telemetry_dir:
        Path(telemetry_dir).mkdir(parents=True, exist_ok=True)
        (Path(telemetry_dir) / "soak_report.json").write_text(document + "\n")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.server import DecisionServer

    engine = _engine_from_args(args)
    if engine is None:
        engine = ResilientDecisionEngine(
            max_workers=getattr(args, "workers", None) or 2,
            budget=_budget_from_args(args),
        )
    server = DecisionServer(
        engine=engine,
        host=args.host,
        port=args.port,
        cache_dir=getattr(args, "cache_dir", None),
        max_inflight=args.max_inflight,
        verify_cache_on_load=not getattr(args, "no_cache_verify", False),
    )
    for path in args.schema or []:
        fingerprint = server.register_schema(_load_schema(path))
        print(f"registered {path}: {fingerprint}", file=sys.stderr)

    async def _run() -> None:
        await server.start()
        # The startup line is the contract scripts wait for; --port-file
        # carries the ephemeral port to clients that cannot parse stdout.
        print(f"listening on {server.host}:{server.port}", flush=True)
        if args.port_file:
            Path(args.port_file).write_text(f"{server.port}\n")
        try:
            await server.wait_stopped()
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    finally:
        server.engine.shutdown()
    print("server stopped", file=sys.stderr)
    return 0


def _cmd_call(args: argparse.Namespace) -> int:
    from repro.core.client import DecisionClient

    port = args.port
    if port is None and args.port_file:
        port = int(Path(args.port_file).read_text().strip())
    if port is None:
        print("error: call needs --port or --port-file", file=sys.stderr)
        return 2
    payload = {}
    for item in args.params:
        key, sep, value = item.partition("=")
        if not sep:
            print(f"error: parameter {item!r} is not KEY=VALUE", file=sys.stderr)
            return 2
        try:
            # JSON values pass structured (lists, numbers, booleans);
            # anything unparsable is a bare string, so categories and
            # constraints need no quoting gymnastics.
            payload[key] = json.loads(value)
        except json.JSONDecodeError:
            payload[key] = value
    with DecisionClient(args.host, port) as client:
        if args.schema:
            text = Path(args.schema).read_text()
            if args.op == "load-schema":
                payload.setdefault("schema_json", text)
            else:
                payload.setdefault("fingerprint", client.load_schema(text))
        response = client.request(args.op, **payload)
    print(json.dumps(response, indent=2, sort_keys=True))
    status = response.get("status")
    if status == "ok":
        return 0 if response.get("verdict", True) else 1
    return {"busy": 4, "unknown": 4, "budget-exceeded": 3}.get(status, 2)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-olap",
        description="Reason about OLAP dimension schemas with dimension "
        "constraints (Hurtado & Mendelzon, PODS 2002).",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="after the command, print satisfiability-kernel cache "
        "statistics (decision cache, circle-operator cache, interned "
        "nodes) to stderr",
    )
    parser.add_argument(
        "--emit-metrics",
        metavar="PATH",
        default=None,
        help="after the command, write a JSON snapshot of the process-wide "
        "metrics registry (counters, gauges, histograms) to PATH",
    )
    parser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=None,
        help="turn the telemetry export pipeline on for the command: "
        "stream spans/events and the per-decision audit log (with its "
        "replayable schema sidecar) to DIR, and render metrics.json, "
        "metrics.prom (Prometheus), and trace.json (Chrome trace / "
        "Perfetto flamegraph) on exit",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist the decision cache across processes: load a "
        "versioned, checksummed snapshot from DIR before the command "
        "(replay-verifying every entry against the sequential kernel and "
        "dropping divergences) and atomically save the warm cache back "
        "on exit; a missing or corrupt file degrades to a cold start",
    )
    parser.add_argument(
        "--no-cache-verify",
        action="store_true",
        help="with --cache-dir, skip the load-time replay verification "
        "(checksum and schema-fingerprint checks still apply)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="decide through a parallel engine with N workers "
        "(audit batches all categories; implies/summarizable/satisfiable "
        "fan out their internal branches)",
    )
    parser.add_argument(
        "--budget-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-decision wall-clock budget in milliseconds; a decision "
        "that exceeds it aborts with exit code 3 instead of returning a "
        "possibly-wrong verdict",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="serve decisions through the resilient engine: up to N "
        "attempts per ladder rung with exponential backoff, sequential "
        "degradation when the parallel engine keeps failing, and exit "
        "code 4 when no rung could produce a verdict",
    )
    parser.add_argument(
        "--engine",
        choices=["compiled", "parallel", "sequential"],
        default=None,
        help="decide through an explicit engine: 'compiled' serves "
        "verdicts from the per-schema compiled decision artifact "
        "(incremental SAT with learned-clause reuse, interpreted-kernel "
        "fallback), 'parallel' fans out over a worker pool "
        "(honoring --workers), 'sequential' pins the service path to "
        "one worker",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=None,
        help="activate the deterministic fault-injection harness for the "
        "command (testing/drills); SPEC is 'kind[:field=value,...];...' "
        "with kinds worker-crash, slow-worker, oserror, cache-store, "
        "pool-exhaustion, e.g. 'worker-crash:p=0.3;seed=7'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    audit = sub.add_parser("audit", help="satisfiability of every category")
    audit.add_argument("schema")
    audit.set_defaults(handler=_cmd_audit)

    imp = sub.add_parser("implies", help="test ds |= constraint")
    imp.add_argument("schema")
    imp.add_argument("constraint")
    imp.set_defaults(handler=_cmd_implies)

    summ = sub.add_parser("summarizable", help="schema-level summarizability")
    summ.add_argument("schema")
    summ.add_argument("target")
    summ.add_argument("sources", nargs="+")
    summ.set_defaults(handler=_cmd_summarizable)

    expl = sub.add_parser(
        "explain", help="explain a summarizability verdict with evidence"
    )
    expl.add_argument("schema")
    expl.add_argument("target")
    expl.add_argument("sources", nargs="+")
    expl.set_defaults(handler=_cmd_explain)

    froz = sub.add_parser("frozen", help="enumerate frozen dimensions")
    froz.add_argument("schema")
    froz.add_argument("root")
    froz.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    froz.set_defaults(handler=_cmd_frozen)

    val = sub.add_parser("validate", help="validate an instance file")
    val.add_argument("schema")
    val.add_argument("instance")
    val.set_defaults(handler=_cmd_validate)

    dot = sub.add_parser("dot", help="hierarchy schema as Graphviz DOT")
    dot.add_argument("schema")
    dot.set_defaults(handler=_cmd_dot)

    show = sub.add_parser("show", help="render schema (and instance) as text")
    show.add_argument("schema")
    show.add_argument("instance", nargs="?", default=None)
    show.set_defaults(handler=_cmd_show)

    rep = sub.add_parser(
        "report", help="full markdown report for a SCHEMA (hierarchy, "
        "constraints, profile, frozen dimensions, summarizability "
        "matrix), or --telemetry DIR for the operator report over a "
        "telemetry directory (latency quantiles per decision kind, "
        "cache hit rates, resilience counters, top spans)"
    )
    rep.add_argument("schema", nargs="?", default=None)
    rep.add_argument("--root", default=None)
    rep.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="render the operator report over this telemetry directory "
        "instead of a schema report",
    )
    rep.set_defaults(handler=_cmd_report)

    norm = sub.add_parser(
        "normalize",
        help="drop redundant constraints, declare implied intos, "
        "emit the normalized schema JSON",
    )
    norm.add_argument("schema")
    norm.set_defaults(handler=_cmd_normalize)

    stats = sub.add_parser("stats", help="schema metrics and DIMSAT effort")
    stats.add_argument("schema")
    stats.set_defaults(handler=_cmd_stats)

    sat = sub.add_parser("satisfiable", help="satisfiability of one category")
    sat.add_argument("schema")
    sat.add_argument("category")
    sat.set_defaults(handler=_cmd_satisfiable)

    comp = sub.add_parser(
        "compile",
        help="compile a schema into its decision artifact (per-root CNF + "
        "incremental SAT state) and print the artifact shape",
    )
    comp.add_argument("schema")
    comp.add_argument(
        "--json", action="store_true", help="emit the artifact description as JSON"
    )
    comp.set_defaults(handler=_cmd_compile)

    trace = sub.add_parser(
        "trace",
        help="re-run one decision with tracing enabled and print the "
        "recorded spans and events",
    )
    trace.add_argument("schema")
    trace.add_argument(
        "decision", choices=("satisfiable", "implies", "summarizable")
    )
    trace.add_argument(
        "args",
        nargs="+",
        help="decision arguments: CATEGORY, CONSTRAINT, or "
        "TARGET SOURCE [SOURCE ...]",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit the raw trace document as JSON instead of text",
    )
    trace.set_defaults(handler=_cmd_trace)

    soak = sub.add_parser(
        "soak",
        help="drive the resilient decision stack over the adversarial "
        "corpus with mixed decide/navigate/edit traffic, checking "
        "metamorphic invariants on every step (implied-constraint "
        "stability, Definition 6 aggregates, homogenize preservation, "
        "compiled == sequential, cache hygiene across edits); exit 1 on "
        "any violation or wrong verdict (UNKNOWN is allowed)",
    )
    soak.add_argument(
        "--seconds",
        type=float,
        default=5.0,
        help="wall-clock soak duration (default 5; every case still gets "
        "at least one operation)",
    )
    soak.add_argument(
        "--max-steps",
        type=int,
        default=None,
        metavar="N",
        help="hard step cap regardless of time (deterministic runs)",
    )
    soak.add_argument("--seed", type=int, default=0, help="corpus/trace seed")
    soak.add_argument(
        "--families",
        nargs="+",
        default=None,
        metavar="FAMILY",
        help="restrict to these adversarial generator families "
        "(default: all)",
    )
    soak.add_argument(
        "--per-family",
        type=int,
        default=1,
        metavar="N",
        help="seeded cases per family (default 1)",
    )
    soak.add_argument(
        "--check-every",
        type=int,
        default=5,
        metavar="N",
        help="compiled-vs-sequential cross-check cadence (default 5)",
    )
    soak.add_argument(
        "--falsifier-dir",
        metavar="DIR",
        default=None,
        help="shrink every schema-level violation and write the minimal "
        "repro-olap loadable falsifier schema here",
    )
    soak.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the soak report as JSON to PATH",
    )
    # The acceptance-shaped invocation puts the engine/fault globals
    # *after* the subcommand; duplicate them here with SUPPRESS defaults
    # so the subparser only overrides what the user actually typed and
    # never clobbers values the parent parser already captured.
    soak.add_argument(
        "--engine",
        choices=["compiled", "parallel", "sequential"],
        default=argparse.SUPPRESS,
        help="engine behind the resilience ladder (default compiled)",
    )
    soak.add_argument(
        "--inject-faults", metavar="SPEC", default=argparse.SUPPRESS,
        help="deterministic fault spec for the whole soak",
    )
    soak.add_argument(
        "--workers", type=int, metavar="N", default=argparse.SUPPRESS,
        help="worker count for the parallel engine (default 2)",
    )
    soak.add_argument(
        "--budget-ms", type=float, metavar="MS", default=argparse.SUPPRESS,
        help="per-decision budget inside the soak engine",
    )
    soak.add_argument(
        "--retries", type=int, metavar="N", default=argparse.SUPPRESS,
        help="attempts per resilience-ladder rung (default 3)",
    )
    soak.add_argument(
        "--telemetry-dir", metavar="DIR", default=argparse.SUPPRESS,
        help="telemetry export directory (audit log is replayable by "
        "audit-verify; the soak report lands there too)",
    )
    soak.set_defaults(handler=_cmd_soak)

    verify = sub.add_parser(
        "audit-verify",
        help="replay a decision audit log against the sequential kernel "
        "and fail on any verdict divergence",
    )
    verify.add_argument(
        "log",
        help="the audit.jsonl file, or the telemetry directory "
        "containing audit.jsonl and schemas.jsonl",
    )
    verify.add_argument(
        "--schemas",
        metavar="PATH",
        default=None,
        help="the schema sidecar (default: schemas.jsonl next to the log)",
    )
    verify.set_defaults(handler=_cmd_audit_verify)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived asyncio decision server (length-prefixed "
        "JSON frames over TCP, warm cache shared by every client)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="bind port; 0 (the default) picks an ephemeral port and "
        "prints it in the 'listening on HOST:PORT' startup line",
    )
    serve.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="write the bound port here after startup (for scripts)",
    )
    serve.add_argument(
        "--schema", metavar="FILE", action="append", default=[],
        help="pre-register a schema JSON file (repeatable); clients can "
        "also register schemas over the wire with load-schema",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="decision requests evaluated concurrently before new ones "
        "get a typed busy response (default 8)",
    )
    serve.set_defaults(handler=_cmd_serve)

    call = sub.add_parser(
        "call",
        help="send one request to a running decision server and print "
        "the JSON response",
    )
    call.add_argument("--host", default="127.0.0.1", help="server address")
    call.add_argument(
        "--port", type=int, default=None, help="server port"
    )
    call.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="read the server port from a file written by serve --port-file",
    )
    call.add_argument(
        "--schema", metavar="FILE", default=None,
        help="schema JSON file: becomes the payload for load-schema, or "
        "is registered first and its fingerprint filled in for other ops",
    )
    call.add_argument(
        "op",
        choices=[
            "decide", "implies", "summarizable", "navigate",
            "load-schema", "edit", "stats", "shutdown",
        ],
        help="wire operation to invoke",
    )
    call.add_argument(
        "params", nargs="*", metavar="KEY=VALUE",
        help="request fields; VALUE is parsed as JSON when possible, "
        "kept as a string otherwise (e.g. constraint=Store.City)",
    )
    call.set_defaults(handler=_cmd_call)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    pipeline = None
    telemetry_dir = getattr(args, "telemetry_dir", None)
    try:
        if telemetry_dir:
            if args.command == "audit-verify" and Path(args.log).resolve() in (
                Path(telemetry_dir).resolve(),
                Path(telemetry_dir).resolve() / "audit.jsonl",
            ):
                # Opening the pipeline truncates the very log the verify
                # would replay; make the foot-gun an error instead.
                print(
                    "error: audit-verify cannot replay the log inside the "
                    "active --telemetry-dir (it would be truncated); "
                    "point --telemetry-dir somewhere else",
                    file=sys.stderr,
                )
                return 2
            from repro.core.telemetry import TelemetryPipeline

            pipeline = TelemetryPipeline(telemetry_dir).install()
        cache_dir = getattr(args, "cache_dir", None)
        if cache_dir:
            from repro.core.cachestore import CacheStoreError, load_cache
            from repro.core.decisioncache import default_decision_cache

            try:
                load_report = load_cache(
                    default_decision_cache(),
                    cache_dir,
                    verify_replay=not getattr(args, "no_cache_verify", False),
                )
                if load_report.found:
                    print(load_report.render(), file=sys.stderr)
            except CacheStoreError as error:
                # A bad cache file must never take the command down; warn
                # and run cold.
                print(
                    f"warning: ignoring persistent cache: {error}",
                    file=sys.stderr,
                )
        spec = getattr(args, "inject_faults", None)
        if spec:
            with inject_faults(spec):
                return args.handler(args)
        return args.handler(args)
    except DecisionUnavailable as error:
        # Must precede the ReproError arm: DecisionUnavailable is a
        # ReproError, but "no rung could answer" deserves its own exit
        # code so operators can tell degradation from bad input.
        print(f"decision unavailable: {error}", file=sys.stderr)
        return 4
    except BudgetExceeded as error:
        print(f"budget exceeded: {error}", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Ctrl-C mid-command: the finally below still persists the warm
        # cache and flushes telemetry; exit with the conventional
        # 128+SIGINT code instead of a traceback.
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        # Every step below runs on EVERY exit path - normal return,
        # error return, uncaught exception, KeyboardInterrupt - and each
        # is guarded independently, so a failing telemetry flush cannot
        # discard the warm cache the command just built (and vice versa).
        if getattr(args, "cache_dir", None):
            from repro.core.cachestore import save_cache
            from repro.core.decisioncache import default_decision_cache
            from repro.core.faults import CacheStoreFault

            try:
                save_cache(default_decision_cache(), args.cache_dir)
            except (CacheStoreFault, OSError) as error:
                # A failed save only costs the next run a cold start.
                print(
                    f"warning: persistent cache not saved: {error}",
                    file=sys.stderr,
                )
        if pipeline is not None:
            try:
                pipeline.finalize()
            except OSError as error:
                print(
                    f"warning: telemetry not finalized: {error}",
                    file=sys.stderr,
                )
        if getattr(args, "cache_stats", False):
            from repro.core.decisioncache import default_decision_cache

            print(default_decision_cache().report(), file=sys.stderr)
        if getattr(args, "emit_metrics", None):
            from repro.core.metrics import emit_metrics

            try:
                emit_metrics(args.emit_metrics)
            except OSError as error:
                print(
                    f"warning: metrics not emitted: {error}",
                    file=sys.stderr,
                )


if __name__ == "__main__":
    raise SystemExit(main())
