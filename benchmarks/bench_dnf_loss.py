"""E14 - what DNF flattening loses (Lehner et al.).

Section 1.3: "the proposed transformation flattens the child/parent
relation, limiting summarizability in the dimension instance."  The
series counts single-source summarizable pairs before and after
flattening on the paper's instance and on the suite instances.
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro.baselines import dnf_loss_report, flatten_to_dnf
from repro.generators.location import location_instance
from repro.generators.suite import personnel_instance, time_instance

INSTANCES = {
    "location": location_instance,
    "personnel": personnel_instance,
    "time": time_instance,
}


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_flatten_time(benchmark, name):
    instance = INSTANCES[name]()
    result = benchmark(flatten_to_dnf, instance)
    assert result.instance.is_valid()


def test_loss_table():
    rows = []
    for name, factory in sorted(INSTANCES.items()):
        instance = factory()
        report = dnf_loss_report(instance)
        rows.append(
            (
                name,
                len(report.original_pairs),
                len(report.surviving_pairs),
                len(report.lost_pairs),
                f"{report.loss_fraction:.0%}",
                ",".join(sorted(report.moved_out)) or "-",
            )
        )
    print_table(
        "E14: summarizable (source, target) pairs lost to DNF flattening",
        ["instance", "before", "after", "lost", "loss", "categories moved out"],
        rows,
    )
    losses = {row[0]: row[3] for row in rows}
    # Heterogeneous mid-hierarchy structure loses aggregation levels...
    assert losses["location"] > 0
    assert losses["personnel"] > 0
    # ...while the time dimension loses nothing: its heterogeneity (the
    # boundary week) sits on an edge that was never summarizable, so DNF
    # only amputates what was already dead - a shape worth reporting.
    assert losses["time"] == 0
