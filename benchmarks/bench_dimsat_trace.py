"""E5 - Figure 7: the DIMSAT search on locationSch.

Times the satisfiability run the figure traces and reports the search
effort counters (EXPAND calls, CHECK calls, c-assignments), with and
without the trace recorder.
"""

from __future__ import annotations

from conftest import print_table

from repro.core import DimsatOptions, dimsat


def test_dimsat_store(benchmark, loc_schema):
    result = benchmark(dimsat, loc_schema, "Store")
    assert result.satisfiable
    stats = result.stats
    print_table(
        "E5 / Figure 7: DIMSAT(locationSch, Store) search effort",
        ["counter", "value"],
        [
            ("expand calls", stats.expand_calls),
            ("check calls", stats.check_calls),
            ("c-assignments tested", stats.assignments_tested),
            ("into-pruned branches", stats.into_pruned_branches),
            ("dead ends", stats.dead_ends),
        ],
    )


def test_dimsat_with_trace(benchmark, loc_schema):
    options = DimsatOptions(keep_trace=True)
    result = benchmark(dimsat, loc_schema, "Store", options)
    assert result.trace
    assert result.trace[-1].succeeded


def test_unsatisfiable_exhaustion(benchmark, loc_schema):
    """The coNP direction: refuting satisfiability explores the whole
    pruned space (this is what every positive implication answer costs)."""
    hostile = loc_schema.with_constraints(["not Store.SaleRegion"])
    result = benchmark(dimsat, hostile, "Store")
    assert not result.satisfiable
