"""E3 - Figure 4: enumerating the frozen dimensions of locationSch.

Regenerates the figure's four structures and times the enumeration, which
is the core operation behind both satisfiability and implication.
"""

from __future__ import annotations

from conftest import print_table

from repro.core import dimsat, enumerate_frozen_dimensions


def test_enumerate_frozen_dimensions(benchmark, loc_schema):
    found = benchmark(enumerate_frozen_dimensions, loc_schema, "Store")
    assert len(found) == 4
    print_table(
        "E3 / Figure 4: frozen dimensions of locationSch with root Store",
        ["#", "frozen dimension"],
        [(i + 1, f.describe()) for i, f in enumerate(found)],
    )


def test_first_witness_only(benchmark, loc_schema):
    """DIMSAT proper stops at the first frozen dimension - the common
    satisfiability case is cheaper than full enumeration."""
    result = benchmark(dimsat, loc_schema, "Store")
    assert result.satisfiable


def test_enumeration_per_category(benchmark, loc_schema):
    def enumerate_all():
        return {
            category: len(enumerate_frozen_dimensions(loc_schema, category))
            for category in sorted(loc_schema.hierarchy.categories)
        }

    counts = benchmark(enumerate_all)
    print_table(
        "E3: frozen dimensions per root category",
        ["category", "frozen dimensions"],
        sorted(counts.items()),
    )
    assert counts["Store"] == 4
    assert counts["All"] == 1
