"""Bench regression watchdog: compare a fresh smoke run to the trajectory.

The repo keeps its committed performance trajectory at the root - the
``BENCH_*.json`` documents ``benchmarks/bench_suite.py --quick`` wrote on
the run that landed each PR.  This tool re-reads those documents next to
a fresh run's output directory and fails when any **gated metric** got
more than ``--tolerance`` (default 15%) worse, so a perf regression
fails CI with a diff-sized explanation instead of drowning in a JSON
diff.

Every gated metric is normalized to a **cost ratio** (higher = worse):
a speedup of 3x becomes cost 1/3, an overhead of +2% becomes cost 1.02.
The regression test is then uniform - ``fresh_cost / baseline_cost - 1 >
tolerance`` - regardless of whether the underlying number was
higher-better or lower-better.

Usage::

    PYTHONPATH=src python benchmarks/watchdog.py \
        --baseline . --fresh fresh-bench --output fresh-bench/WATCHDOG.json

    python benchmarks/watchdog.py --self-test

Exit codes: 0 all gated metrics within tolerance (or self-test passed),
1 at least one regression (or self-test failed), 2 usage errors
(missing files, malformed documents).

Pure stdlib on purpose: the watchdog must be able to condemn a broken
tree, so it imports nothing from ``repro``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: The committed trajectory: (file, path-into-the-document, direction).
#: ``speedup`` metrics are higher-better (cost = 1/value); ``overhead``
#: metrics are lower-better percentages (cost = 1 + value/100);
#: ``latency`` metrics are lower-better absolutes (cost = value).
GATED_METRICS: Tuple[Tuple[str, Tuple[str, ...], str], ...] = (
    ("BENCH_1.json", ("total", "speedup"), "speedup"),
    ("BENCH_2.json", ("speedup",), "speedup"),
    ("BENCH_4.json", ("overhead_pct",), "overhead"),
    ("BENCH_5.json", ("overhead_pct",), "overhead"),
    ("BENCH_6.json", ("total", "speedup"), "speedup"),
    ("BENCH_7.json", ("total", "survival_pct"), "speedup"),
    ("BENCH_8.json", ("total", "p99_ms"), "latency"),
    ("BENCH_8.json", ("total", "warm_hit_pct"), "speedup"),
)


class WatchdogError(Exception):
    """A usage-level failure (missing file, malformed document)."""


def _load(path: Path) -> Dict[str, Any]:
    if not path.is_file():
        raise WatchdogError(f"missing benchmark document: {path}")
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise WatchdogError(f"unreadable benchmark document {path}: {error}")
    if not isinstance(document, dict):
        raise WatchdogError(f"benchmark document {path} is not a JSON object")
    return document


def _extract(document: Dict[str, Any], keys: Sequence[str], path: Path) -> float:
    node: Any = document
    for key in keys:
        if not isinstance(node, dict) or key not in node:
            raise WatchdogError(
                f"{path}: missing gated metric {'.'.join(keys)!r}"
            )
        node = node[key]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise WatchdogError(
            f"{path}: gated metric {'.'.join(keys)!r} is not a number"
        )
    return float(node)


def _cost(value: float, direction: str) -> float:
    """The metric as a cost ratio (higher = worse)."""
    if direction == "speedup":
        if value <= 0:
            raise WatchdogError(f"non-positive speedup {value!r}")
        return 1.0 / value
    if direction == "latency":
        if value <= 0:
            raise WatchdogError(f"non-positive latency {value!r}")
        return value
    # Overhead percentage; -100% would be a zero-cost run.
    cost = 1.0 + value / 100.0
    if cost <= 0:
        raise WatchdogError(f"overhead {value!r}%% implies non-positive cost")
    return cost


def compare(
    baseline_dir: Path, fresh_dir: Path, tolerance: float
) -> Dict[str, Any]:
    """The watchdog verdict over every gated metric.

    Returns the report document (also what ``--output`` writes): one row
    per gated metric with both raw values, both cost ratios, the
    relative cost change, and the per-row verdict.
    """
    rows: List[Dict[str, Any]] = []
    for filename, keys, direction in GATED_METRICS:
        baseline_path = baseline_dir / filename
        fresh_path = fresh_dir / filename
        baseline_value = _extract(_load(baseline_path), keys, baseline_path)
        fresh_value = _extract(_load(fresh_path), keys, fresh_path)
        baseline_cost = _cost(baseline_value, direction)
        fresh_cost = _cost(fresh_value, direction)
        change = fresh_cost / baseline_cost - 1.0
        rows.append(
            {
                "file": filename,
                "metric": ".".join(keys),
                "direction": direction,
                "baseline": baseline_value,
                "fresh": fresh_value,
                "baseline_cost": baseline_cost,
                "fresh_cost": fresh_cost,
                "cost_change_pct": change * 100.0,
                "regressed": change > tolerance,
            }
        )
    regressions = [row for row in rows if row["regressed"]]
    return {
        "baseline": str(baseline_dir),
        "fresh": str(fresh_dir),
        "tolerance_pct": tolerance * 100.0,
        "metrics": rows,
        "regressions": len(regressions),
        "ok": not regressions,
    }


def render(report: Dict[str, Any]) -> str:
    lines = [
        f"bench watchdog: baseline {report['baseline']} vs "
        f"fresh {report['fresh']} "
        f"(tolerance {report['tolerance_pct']:.0f}%)"
    ]
    for row in report["metrics"]:
        verdict = "REGRESSED" if row["regressed"] else "ok"
        lines.append(
            f"  {row['file']:<14} {row['metric']:<14} "
            f"{row['baseline']:>10.4f} -> {row['fresh']:>10.4f} "
            f"(cost {row['cost_change_pct']:+6.1f}%)  {verdict}"
        )
    lines.append(
        "WATCHDOG FAIL: "
        f"{report['regressions']} gated metric(s) regressed"
        if not report["ok"]
        else "WATCHDOG OK: every gated metric within tolerance"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Self-test (``--self-test``): the watchdog must catch a synthetic 25%
# regression and pass identical documents, with no real bench run.
# ----------------------------------------------------------------------


def _synthetic_documents() -> Dict[str, Dict[str, Any]]:
    """A plausible trajectory: one document per gated file."""
    return {
        "BENCH_1.json": {"total": {"speedup": 4.0}},
        "BENCH_2.json": {"speedup": 3.0},
        "BENCH_4.json": {"overhead_pct": 2.0},
        "BENCH_5.json": {"overhead_pct": 1.0},
        "BENCH_6.json": {"total": {"speedup": 11.0}},
        "BENCH_7.json": {"total": {"survival_pct": 94.0}},
        "BENCH_8.json": {"total": {"p99_ms": 2.0, "warm_hit_pct": 95.0}},
    }


def _degrade(document: Dict[str, Any], keys: Sequence[str], direction: str,
             factor: float) -> None:
    """Make one gated metric ``factor`` times more costly, in place."""
    node = document
    for key in keys[:-1]:
        node = node[key]
    value = node[keys[-1]]
    if direction == "speedup":
        node[keys[-1]] = value / factor
    elif direction == "latency":
        node[keys[-1]] = value * factor
    else:
        node[keys[-1]] = ((1.0 + value / 100.0) * factor - 1.0) * 100.0


def self_test(tmp_root: Path, tolerance: float = 0.15) -> List[str]:
    """Failures (empty = pass) of the two self-test scenarios."""
    failures: List[str] = []
    baseline_dir = tmp_root / "baseline"
    identical_dir = tmp_root / "identical"
    degraded_dir = tmp_root / "degraded"
    documents = _synthetic_documents()
    for directory in (baseline_dir, identical_dir, degraded_dir):
        directory.mkdir(parents=True, exist_ok=True)
        for filename, document in documents.items():
            (directory / filename).write_text(
                json.dumps(document) + "\n", encoding="utf-8"
            )
    for filename, keys, direction in GATED_METRICS:
        document = json.loads(
            (degraded_dir / filename).read_text(encoding="utf-8")
        )
        _degrade(document, keys, direction, factor=1.25)
        (degraded_dir / filename).write_text(
            json.dumps(document) + "\n", encoding="utf-8"
        )

    identical = compare(baseline_dir, identical_dir, tolerance)
    if not identical["ok"]:
        failures.append(
            "identical documents flagged as regressed:\n" + render(identical)
        )
    degraded = compare(baseline_dir, degraded_dir, tolerance)
    flagged = [row["file"] for row in degraded["metrics"] if row["regressed"]]
    expected = [filename for filename, _, _ in GATED_METRICS]
    if flagged != expected:
        failures.append(
            f"synthetic 25% regression flagged {flagged}, expected "
            f"{expected}:\n" + render(degraded)
        )
    return failures


def _main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent),
        help="directory holding the committed BENCH_*.json trajectory "
        "(default: the repo root)",
    )
    parser.add_argument(
        "--fresh",
        default=None,
        help="directory holding the fresh run's BENCH_*.json documents",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON watchdog report",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="maximum tolerated relative cost increase per gated metric "
        "(default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the watchdog itself: identical documents must pass "
        "and a synthetic 25%% regression must flag every gated metric",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="watchdog-selftest-") as tmp:
            failures = self_test(Path(tmp), tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"SELF-TEST FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            "SELF-TEST OK: identical trajectory passes, synthetic 25% "
            "regression flags every gated metric"
        )
        return 0

    if args.fresh is None:
        print("error: --fresh DIR is required (or --self-test)", file=sys.stderr)
        return 2
    try:
        report = compare(Path(args.baseline), Path(args.fresh), args.tolerance)
    except WatchdogError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.output:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(render(report))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(_main())
