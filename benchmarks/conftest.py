"""Benchmark-suite configuration.

Every module regenerates one experiment of DESIGN.md's index (E3-E14) and
prints the rows/series the paper's artifact would show; run with

    pytest benchmarks/ --benchmark-only

and add ``-s`` to see the printed experiment tables.
"""

from __future__ import annotations

import pytest

from repro.generators.location import location_instance, location_schema


@pytest.fixture(scope="session")
def loc_schema():
    return location_schema()


@pytest.fixture(scope="session")
def loc_instance():
    return location_instance()


def print_table(title, headers, rows):
    """Render one experiment's table to stdout (shown with -s)."""
    print(f"\n== {title} ==")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
