"""E12 - aggregate navigation: cube views from materialized aggregates
vs. base-table scans.

This is the paper's motivating application: the navigator may only reuse
a precomputed view when summarizability holds, and when it does the
rewriting reads orders of magnitude fewer rows.  The series reports the
row-count cost model and wall-clock for both plans on a generated
dimension with a large fact table.
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro.generators.location import location_schema
from repro.generators.workloads import instance_from_frozen, random_fact_table
from repro.olap import SUM, AggregateNavigator, cube_view, views_equal


@pytest.fixture(scope="module")
def big_setup():
    schema = location_schema()
    instance = instance_from_frozen(schema, "Store", copies=40, fan_out=5)
    facts = random_fact_table(instance, n_facts=20_000, seed=11)
    return schema, instance, facts


def test_base_scan(benchmark, big_setup):
    _schema, _instance, facts = big_setup
    view = benchmark(cube_view, facts, "Country", SUM, "amount")
    assert view.cells


def test_rewritten_query(benchmark, big_setup):
    schema, _instance, facts = big_setup
    navigator = AggregateNavigator(facts, schema=schema)
    navigator.materialize("City", SUM, "amount")

    def rewritten():
        navigator.drop("Country", SUM, "amount")
        return navigator.answer("Country", SUM, "amount")

    view, plan = benchmark(rewritten)
    assert plan.kind == "rewritten"
    direct = cube_view(facts, "Country", SUM, "amount")
    assert views_equal(view, direct)


def test_materialization_cost(benchmark, big_setup):
    schema, _instance, facts = big_setup
    navigator = AggregateNavigator(facts, schema=schema)
    benchmark(navigator.materialize, "City", SUM, "amount")


def test_cost_model_table(big_setup):
    schema, instance, facts = big_setup
    navigator = AggregateNavigator(facts, schema=schema)
    city_view = navigator.materialize("City", SUM, "amount")
    sr_view = navigator.materialize("SaleRegion", SUM, "amount")

    view, plan = navigator.answer("Country", SUM, "amount")
    direct = cube_view(facts, "Country", SUM, "amount")
    assert views_equal(view, direct)

    rows = [
        ("fact rows", len(facts)),
        ("City view cells", len(city_view)),
        ("SaleRegion view cells", len(sr_view)),
        ("chosen plan", f"{plan.kind} from {plan.sources}"),
        ("rows read by rewriting", plan.cost),
        ("rows read by base scan", direct.rows_scanned),
        ("row-count speedup", f"{direct.rows_scanned / max(1, plan.cost):.0f}x"),
    ]
    print_table("E12: navigation cost model", ["metric", "value"], rows)
    # The rewriting must beat the scan by a wide margin on this shape.
    assert plan.cost * 10 <= direct.rows_scanned
