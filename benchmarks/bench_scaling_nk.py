"""E9 - Proposition 4, the N_K axis: constants per category.

The complexity bound carries an ``N log N_K`` exponent through the
c-assignment search.  This series fixes the hierarchy and grows the
constant pools; the c-assignment counter tracks the product of the
residual domains, while the structural search (EXPAND) stays constant.
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro.constraints.builder import eq, path
from repro.core import DimensionSchema, dimsat
from repro.core.hierarchy import ALL, HierarchySchema


def schema_with_constants(
    n_constants: int, width: int = 3, satisfiable: bool = True
) -> DimensionSchema:
    """A bottom category with ``width`` equality-constrained parents, each
    carrying ``n_constants`` constants.

    In the satisfiable shape each parent takes a disjunction of equalities
    (CHECK succeeds quickly); the unsatisfiable shape additionally demands
    the *last* constant simultaneously, a clash CHECK can only establish
    by exhausting the whole ``(N_K + 1)^width`` c-assignment product.
    """
    categories = ["Base"] + [f"P{i}" for i in range(width)] + ["Top"]
    edges = [("Base", f"P{i}") for i in range(width)]
    edges += [(f"P{i}", "Top") for i in range(width)]
    edges.append(("Top", ALL))
    hierarchy = HierarchySchema(categories, edges)

    constraints = []
    for i in range(width):
        parent = f"P{i}"
        constraints.append(path("Base", parent))
        options = [
            eq("Base", parent, f"k{i}_{j}") for j in range(n_constants)
        ]
        node = options[0]
        for other in options[1:]:
            node = node | other
        constraints.append(node)
        if not satisfiable and n_constants >= 2:
            # Demand two different names for the same single member.
            constraints.append(eq("Base", parent, f"k{i}_0"))
            constraints.append(eq("Base", parent, f"k{i}_1"))
    return DimensionSchema(hierarchy, constraints)


@pytest.mark.parametrize("n_constants", [1, 2, 4, 8])
def test_constant_domain_scaling(benchmark, n_constants):
    schema = schema_with_constants(n_constants)
    result = benchmark(dimsat, schema, "Base")
    assert result.satisfiable


def test_assignment_counter_tracks_nk():
    """The N_K series, in the exhaustive (unsatisfiable) case: the
    structural search is constant while c-assignment work grows as
    ``(N_K + 1)^width``."""
    rows = []
    for n_constants in (2, 4, 8):
        schema = schema_with_constants(n_constants, satisfiable=False)
        result = dimsat(schema, "Base")
        assert not result.satisfiable
        rows.append(
            (
                n_constants,
                schema.max_constants(),
                result.stats.expand_calls,
                result.stats.assignments_tested,
                (n_constants + 1) ** 3,
            )
        )
    print_table(
        "E9: c-assignment work as N_K grows (structure fixed, unsat case)",
        ["constants/category", "N_K", "expand calls", "assignments tested", "(N_K+1)^3"],
        rows,
    )
    expands = {row[2] for row in rows}
    assert len(expands) == 1  # the structural search is N_K-independent
    assignments = [row[3] for row in rows]
    assert assignments == sorted(assignments)
    for row in rows:
        assert row[3] == row[4]


@pytest.mark.parametrize("n_constants", [2, 4, 8])
def test_unsat_constant_clash(benchmark, n_constants):
    schema = schema_with_constants(n_constants, satisfiable=False)
    result = benchmark(dimsat, schema, "Base")
    assert not result.satisfiable
