"""Decision-cache benchmark - the satisfiability kernel's acceptance gate.

Three claims, measured over the realistic schema suite:

* **speedup** - repeated implication and summarizability workloads (the
  aggregate navigator's access pattern: the same questions per query
  session) run at least 2x faster against a warm
  :class:`~repro.core.decisioncache.DecisionCache` than uncached;
* **hit rates** - the speedup is attributable: the decision cache reports
  its hit rate and a repeat DIMSAT run reports circle-operator hits in
  :class:`~repro.core.dimsat.DimsatStats`;
* **equivalence** - every DIMSAT ablation configuration (the 8
  combinations of the E10 pruning flags) returns bit-identical verdicts
  with caching on and off, so the cache layers are pure accelerators.
"""

from __future__ import annotations

import time
from itertools import product

import pytest
from conftest import print_table

from repro.core import (
    DecisionCache,
    DimsatOptions,
    dimsat,
    is_implied,
    is_summarizable_in_schema,
    summarizable_sets,
)
from repro.generators.location import location_schema
from repro.generators.suite import suite_schemas
from repro.generators.workloads import implication_workload

SCHEMAS = suite_schemas()

#: Passes over the same workload; >1 is what makes caching pay.
REPEATS = 5


def _timed_implications(schema, queries, cache, repeats=REPEATS):
    verdicts = []
    start = time.perf_counter()
    for _ in range(repeats):
        verdicts = [is_implied(schema, q, cache=cache) for q in queries]
    return time.perf_counter() - start, verdicts


def _timed_summarizability(schema, pairs, cache, repeats=REPEATS):
    verdicts = []
    start = time.perf_counter()
    for _ in range(repeats):
        verdicts = [
            is_summarizable_in_schema(schema, target, sources, cache=cache)
            for target, sources in pairs
        ]
    return time.perf_counter() - start, verdicts


def _summarizability_pairs(schema, max_pairs=12):
    hierarchy = schema.hierarchy
    pairs = []
    for target in sorted(hierarchy.categories - {"All"}):
        below = sorted(
            c
            for c in hierarchy.categories
            if c not in ("All", target) and hierarchy.reaches(c, target)
        )
        for source in below[:2]:
            pairs.append((target, (source,)))
        if len(below) >= 2:
            pairs.append((target, tuple(below[:2])))
        if len(pairs) >= max_pairs:
            break
    return pairs[:max_pairs]


def test_repeated_implication_speedup():
    """The tentpole claim: >= 2x on a repeated implication workload."""
    rows = []
    total_uncached = total_cached = 0.0
    for name, schema in sorted(SCHEMAS.items()):
        queries = implication_workload(schema, n_queries=10, seed=3)
        uncached_time, uncached_verdicts = _timed_implications(
            schema, queries, cache=None
        )
        cache = DecisionCache()
        cached_time, cached_verdicts = _timed_implications(
            schema, queries, cache=cache
        )
        assert cached_verdicts == uncached_verdicts
        assert cache.stats.hits > 0
        total_uncached += uncached_time
        total_cached += cached_time
        rows.append(
            (
                name,
                f"{uncached_time * 1000:.1f} ms",
                f"{cached_time * 1000:.1f} ms",
                f"{uncached_time / cached_time:.1f}x",
                f"{cache.stats.hit_rate:.0%}",
            )
        )
    print_table(
        f"decision cache: {REPEATS}x repeated 10-query implication workload",
        ["schema", "uncached", "cached", "speedup", "hit rate"],
        rows,
    )
    assert total_uncached >= 2.0 * total_cached


def test_repeated_summarizability_speedup():
    """Same claim for the navigator's summarizability questions."""
    rows = []
    total_uncached = total_cached = 0.0
    for name, schema in sorted(SCHEMAS.items()):
        pairs = _summarizability_pairs(schema)
        if not pairs:
            continue
        uncached_time, uncached_verdicts = _timed_summarizability(
            schema, pairs, cache=None
        )
        cache = DecisionCache()
        cached_time, cached_verdicts = _timed_summarizability(
            schema, pairs, cache=cache
        )
        assert cached_verdicts == uncached_verdicts
        total_uncached += uncached_time
        total_cached += cached_time
        rows.append(
            (
                name,
                len(pairs),
                f"{uncached_time * 1000:.1f} ms",
                f"{cached_time * 1000:.1f} ms",
                f"{uncached_time / cached_time:.1f}x",
            )
        )
    print_table(
        f"decision cache: {REPEATS}x repeated summarizability workload",
        ["schema", "pairs", "uncached", "cached", "speedup"],
        rows,
    )
    assert total_uncached >= 2.0 * total_cached


def test_circle_hits_surface_in_dimsat_stats(loc_schema):
    """A DIMSAT run over a warm circle cache reports its hits."""
    warm = dimsat(loc_schema, "Store")  # warm the process-wide memo
    result = dimsat(loc_schema, "Store")
    stats = result.stats
    assert stats.circle_hits + stats.circle_misses > 0
    assert stats.circle_hits > 0
    assert stats.circle_hit_rate > 0.5
    # The ablation path never touches the memo.
    off = dimsat(loc_schema, "Store", DimsatOptions(circle_cache=False))
    assert off.stats.circle_hits == 0
    assert off.satisfiable == result.satisfiable == warm.satisfiable


#: The E10 ablation grid: every combination of the pruning heuristics.
ABLATIONS = [
    DimsatOptions(
        cycle_pruning=cycle,
        shortcut_pruning=shortcut,
        into_pruning=into,
        circle_cache=circle,
    )
    for cycle, shortcut, into, circle in product([True, False], repeat=4)
]


@pytest.mark.parametrize("options", ABLATIONS, ids=lambda o: (
    f"cyc{int(o.cycle_pruning)}-sc{int(o.shortcut_pruning)}"
    f"-into{int(o.into_pruning)}-circ{int(o.circle_cache)}"
))
def test_ablation_verdicts_identical_with_and_without_cache(options):
    """Caching never changes an answer, under any pruning configuration."""
    schema = location_schema()
    queries = implication_workload(schema, n_queries=8, seed=5)
    pairs = _summarizability_pairs(schema, max_pairs=6)
    cache = DecisionCache()
    for query in queries:
        uncached = is_implied(schema, query, options, cache=None)
        first = is_implied(schema, query, options, cache=cache)
        second = is_implied(schema, query, options, cache=cache)  # hit
        assert uncached == first == second
    for target, sources in pairs:
        uncached = is_summarizable_in_schema(
            schema, target, sources, options, cache=None
        )
        cached = is_summarizable_in_schema(
            schema, target, sources, options, cache=cache
        )
        assert uncached == cached
    assert cache.stats.hits > 0


def test_minimal_source_set_search_shares_implication_work():
    """``summarizable_sets`` asks overlapping per-bottom implication
    questions; routed through one cache they are answered once."""
    schema = location_schema()
    cache = DecisionCache()
    cold = summarizable_sets(schema, "Country", cache=cache)
    warm_hits = cache.stats.hits
    again = summarizable_sets(schema, "Country", cache=cache)
    assert cold == again
    assert cache.stats.hits > warm_hits  # second search is pure lookups
    uncached = summarizable_sets(schema, "Country", cache=None)
    assert uncached == cold
