"""E16 - constraint-aware view selection (Section 6's second application).

Compares the classical constraint-blind lattice assumption ("any selected
category below the target can answer it") against the summarizability
test on heterogeneous schemas: the naive rule over-promises, and each
over-promise is a silently wrong aggregate.  Also times the greedy and
exhaustive selectors.
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro.generators.location import location_schema
from repro.generators.suite import suite_schemas
from repro.generators.workloads import instance_from_frozen, random_fact_table
from repro.olap import (
    SUM,
    ViewSelectionProblem,
    coverage,
    cube_view,
    evaluate_selection,
    exhaustive_select,
    greedy_select,
    naive_lattice_coverage,
    recombine,
    views_equal,
)

SIZES = {
    "Store": 1000,
    "City": 120,
    "State": 20,
    "Province": 15,
    "SaleRegion": 12,
    "Country": 3,
}


def location_problem():
    return ViewSelectionProblem(
        schema=location_schema(),
        targets={"Country": 5.0, "SaleRegion": 2.0, "City": 1.0, "State": 1.0},
        view_sizes=SIZES,
        base_size=100_000,
    )


def test_greedy_selection(benchmark):
    problem = location_problem()
    selection = benchmark(greedy_select, problem, 200)
    assert selection.storage <= 200


def test_exhaustive_selection(benchmark):
    problem = location_problem()
    selection = benchmark(exhaustive_select, problem, 200)
    assert selection.storage <= 200


def test_selector_quality_table():
    problem = location_problem()
    rows = []
    for budget in (20, 50, 150, 400, 1200):
        greedy = greedy_select(problem, budget)
        optimal = exhaustive_select(problem, budget)
        rows.append(
            (
                budget,
                ",".join(sorted(greedy.categories)) or "-",
                f"{greedy.query_cost:,.0f}",
                ",".join(sorted(optimal.categories)) or "-",
                f"{optimal.query_cost:,.0f}",
                "=" if abs(greedy.query_cost - optimal.query_cost) < 1e-9 else "<",
            )
        )
    print_table(
        "E16: greedy vs optimal view selection on locationSch",
        ["budget", "greedy picks", "greedy cost", "optimal picks", "optimal cost", "opt"],
        rows,
    )
    for row in rows:
        assert row[5] in ("=", "<")


def test_naive_lattice_overpromise_table():
    """How often the constraint-blind rule claims coverage the constraints
    refuse - and that each such claim is numerically wrong on real data."""
    rows = []
    wrong_confirmed = 0
    for name, schema in sorted(suite_schemas().items()):
        hierarchy = schema.hierarchy
        categories = sorted(hierarchy.categories - {"All"})
        sizes = {c: 10 for c in categories}
        targets = {
            c: 1.0 for c in categories if hierarchy.descendants(c)
        }
        if not targets:
            continue
        problem = ViewSelectionProblem(schema, targets, sizes, 1000)
        claims = 0
        overpromises = 0
        # Single-view selections: the common lattice scenario.
        for view in categories:
            naive = naive_lattice_coverage(problem, [view])
            aware = coverage(problem, [view])
            for target in targets:
                if naive[target]:
                    claims += 1
                    if not aware[target]:
                        overpromises += 1
        rows.append((name, claims, overpromises, f"{overpromises / claims:.0%}"))
    print_table(
        "E16: naive lattice claims vs constraint-aware verdicts (single views)",
        ["schema", "naive claims", "over-promises", "rate"],
        rows,
    )
    assert any(row[2] > 0 for row in rows)

    # Confirm one over-promise is numerically wrong on actual data.
    schema = location_schema()
    instance = instance_from_frozen(schema, "Store", copies=5, fan_out=2)
    facts = random_fact_table(instance, 500, seed=21)
    direct = cube_view(facts, "Country", SUM, "amount")
    state_view = cube_view(facts, "State", SUM, "amount")
    naive_answer = recombine(instance, "Country", [state_view], SUM)
    assert not views_equal(direct, naive_answer)
    wrong_confirmed += 1
    print(f"\nconfirmed numerically wrong naive rewrite: State -> Country "
          f"(USA cell off by {direct.cells.get('Country:USA', 0) - naive_answer.cells.get('Country:USA', 0):,.2f})")
    assert wrong_confirmed == 1


def test_sufficiency_check_cost(benchmark):
    problem = location_problem()
    result = benchmark(evaluate_selection, problem, ["City", "SaleRegion"])
    assert result.covered
