"""E8 - Theorem 4: category satisfiability is NP-complete.

Runs DIMSAT on 3-SAT encodings near the phase transition.  The point is
the *shape* - worst-case exponential growth in the variable count, unlike
the practical-schema benchmarks - plus exactness against the brute-force
SAT oracle.
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro.core import dimsat
from repro.generators.sat_encoding import ROOT, encode, phase_transition_cnf


@pytest.mark.parametrize("n_vars", [4, 6, 8])
def test_phase_transition_scaling(benchmark, n_vars):
    cnf = phase_transition_cnf(n_vars, seed=3)
    schema = encode(cnf)
    result = benchmark(dimsat, schema, ROOT)
    assert result.satisfiable == cnf.brute_force_satisfiable()


def test_exactness_and_effort_table():
    rows = []
    for n_vars in (4, 5, 6, 7, 8):
        agree = 0
        expands = 0
        total = 5
        for seed in range(total):
            cnf = phase_transition_cnf(n_vars, seed=seed)
            result = dimsat(encode(cnf), ROOT)
            if result.satisfiable == cnf.brute_force_satisfiable():
                agree += 1
            expands += result.stats.expand_calls
        rows.append((n_vars, f"{agree}/{total}", expands // total))
    print_table(
        "E8: DIMSAT on random 3-CNF at the phase transition (ratio 4.26)",
        ["variables", "agreement with oracle", "mean expand calls"],
        rows,
    )
    assert all(row[1] == "5/5" for row in rows)
    # NP shape: effort grows with the variable count.
    efforts = [row[2] for row in rows]
    assert efforts[-1] > efforts[0]
