"""E6/E7 performance - implication and summarizability testing as used by
an aggregate navigator.

Positive implication answers (the useful ones) must exhaust the pruned
search space, so they dominate navigator latency; the series reports both
polarities plus full summarizability queries on locationSch.
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro.core import implies, is_implied, is_summarizable_in_schema

POSITIVE = [
    "Store -> City",
    "Store.Country implies Store.City.Country",
    "City.Country",
    "State -> SaleRegion or State -> Country",
]
NEGATIVE = [
    "Store -> SaleRegion",
    "Store.Province.Country",
    "City -> Province",
]


@pytest.mark.parametrize("text", POSITIVE)
def test_positive_implication(benchmark, loc_schema, text):
    result = benchmark(implies, loc_schema, text)
    assert result.implied


@pytest.mark.parametrize("text", NEGATIVE)
def test_negative_implication(benchmark, loc_schema, text):
    result = benchmark(implies, loc_schema, text)
    assert not result.implied


@pytest.mark.parametrize(
    "target,sources",
    [
        ("Country", ("City",)),
        ("Country", ("State", "Province")),
        ("Country", ("SaleRegion",)),
    ],
)
def test_summarizability_query(benchmark, loc_schema, target, sources):
    benchmark(is_summarizable_in_schema, loc_schema, target, sources)


def test_effort_by_polarity_table(loc_schema):
    rows = []
    for text in POSITIVE + NEGATIVE:
        result = implies(loc_schema, text)
        rows.append(
            (
                text,
                "yes" if result.implied else "no",
                result.dimsat_result.stats.expand_calls,
                result.dimsat_result.stats.assignments_tested,
            )
        )
    print_table(
        "E6/E7: implication effort on locationSch",
        ["constraint", "implied", "expand calls", "assignments"],
        rows,
    )
    implied_effort = [r[2] for r in rows if r[1] == "yes"]
    refuted_effort = [r[2] for r in rows if r[1] == "no"]
    # Positive answers exhaust the space; refutations stop at a witness.
    assert max(refuted_effort) <= max(implied_effort)
