"""E11 - Section 6's conjecture: "in most practical situations DIMSAT
should yield execution times of the order of a few seconds".

Runs full satisfiability audits and mixed implication workloads over the
realistic schema suite and asserts the wall-clock conjecture (on a modern
machine the whole suite lands far below one second, which comfortably
confirms the 2002 claim).

Run directly with ``--quick`` for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_suite.py --quick

which times the implication workload before (uncached) and after (warm
decision cache), writes the numbers to ``BENCH_1.json`` at the repo root,
and exits non-zero when the cached path regresses the benchmark by more
than 20%.

The same smoke run also measures the
:class:`~repro.core.parallel.ParallelDecisionEngine` batch path on a
random-schema workload with repeated queries (the navigator's traffic
shape): per-request sequential kernel vs one ``decide_many`` batch at 4
workers.  Verdicts must be byte-identical; the numbers go to
``BENCH_2.json`` and the gate fails below a 2x speedup.

The run also prices the resilience layer: the same batch through a
:class:`~repro.core.resilience.ResilientDecisionEngine` (fault-free)
must return byte-identical verdicts at <=5% overhead versus the plain
parallel engine, and a faulted pass (fixed-seed worker crashes and
cache-store failures) must stay correct-or-UNKNOWN.  The numbers go to
``BENCH_4.json``.

Finally the telemetry smoke prices the export pipeline: the same batch
with a :class:`~repro.core.telemetry.TelemetryPipeline` installed
(spans, events, and audit records streamed through the bounded
background writer) must return byte-identical verdicts at <=5%
overhead versus the tracing-enabled baseline, and
:func:`~repro.core.auditlog.verify_audit_log` must replay the produced
audit log (>=200 records) with zero divergences.  The numbers go to
``BENCH_5.json``.

The compiled-tier smoke prices the PR 6 compilation rung: every suite
schema's full decision family (category satisfiability sweep,
implication workload, summarizability workload), answered cold
(``cache=None`` on both sides) by the interpreted kernel vs a
:class:`~repro.core.compile.CompiledDecisionEngine` over a resident
artifact.  Verdicts must be byte-identical, no decision may fall back,
and the gate fails below a 10x aggregate speedup.  The numbers go to
``BENCH_6.json``.

The edit-survival smoke prices provenance-scoped invalidation under
continuous schema evolution (ROADMAP item 2's worst case): wide
evolving schemas with a warm decision cache (full satisfiability sweep
plus an implication workload), hit by the most *unrelated* constraint
edit the hierarchy offers.  At least 90% of the warm verdicts must
survive the edit - rekeyed to the new fingerprint byte-identically to
a full recomputation - the scoped path (delta + rekey + re-serving the
warm set) is timed against the fingerprint sledgehammer (recompute
everything), and the edited cache must round-trip the persistent store
with a clean audit replay.  The numbers go to ``BENCH_7.json``.

The server smoke prices the PR 9 long-lived decision service: 8
concurrent clients sending mixed traffic (implication, summarizability,
navigation plans, raw decides) over one shared warm
:class:`~repro.core.server.DecisionServer`.  Every verdict must match
the sequential kernel, the warm hit rate must stay at or above 80%
after the warmup pass, and the best-of-rounds p99 request latency goes
to ``BENCH_8.json`` where the watchdog gates it as an absolute cost.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import tempfile
import time
from pathlib import Path

import pytest
from conftest import print_table

from repro.core import is_implied, satisfiability_report
from repro.core.decisioncache import DecisionCache
from repro.core.parallel import ParallelDecisionEngine
from repro.core.summarizability import is_summarizable_in_schema
from repro.generators.random_schema import (
    RandomSchemaConfig,
    random_schema,
    schemas_by_size,
)
from repro.generators.suite import suite_schemas
from repro.generators.workloads import implication_workload, summarizability_workload

SCHEMAS = suite_schemas()

#: Random schemas for the parallel batch benchmark (the navigator asks
#: the same questions over and over; ``BATCH_REPEATS`` models that).
BATCH_SCHEMAS = schemas_by_size([5, 6, 7], RandomSchemaConfig(seed=11))
BATCH_REPEATS = 3


def _batch_workload(n_queries=8, repeats=BATCH_REPEATS, seed=3):
    """A ``decide_many`` batch over the random schemas: an implication and
    summarizability mix, each query appearing ``repeats`` times."""
    batch = []
    for _size, schema in sorted(BATCH_SCHEMAS.items()):
        items = [
            (schema, ("implies", q))
            for q in implication_workload(schema, n_queries=n_queries, seed=seed)
        ]
        items += [
            (schema, ("summarizable", target, sources))
            for target, sources in summarizability_workload(
                schema, n_queries=n_queries, seed=seed
            )
        ]
        batch.extend(items * repeats)
    return batch


def _sequential_kernel_answers(batch):
    """The baseline: every request answered by the uncached sequential
    kernel, one at a time."""
    verdicts = []
    for schema, request in batch:
        if request[0] == "implies":
            verdicts.append(is_implied(schema, request[1], cache=None))
        else:
            verdicts.append(
                is_summarizable_in_schema(
                    schema, request[1], request[2], cache=None
                )
            )
    return verdicts


@pytest.mark.parametrize("name", sorted(SCHEMAS))
def test_satisfiability_audit(benchmark, name):
    schema = SCHEMAS[name]
    report = benchmark(satisfiability_report, schema)
    assert all(report.values())


@pytest.mark.parametrize("name", sorted(SCHEMAS))
def test_implication_workload(benchmark, name):
    schema = SCHEMAS[name]
    queries = implication_workload(schema, n_queries=10, seed=1)

    def run():
        return [is_implied(schema, q) for q in queries]

    verdicts = benchmark(run)
    assert any(verdicts)


@pytest.mark.parametrize("workers", [1, 4])
def test_parallel_batch_workload(benchmark, workers):
    """The engine's batch path at 1 and 4 workers (fresh cache per run)."""
    batch = _batch_workload()

    def run():
        with ParallelDecisionEngine(
            max_workers=workers, cache=DecisionCache()
        ) as engine:
            return engine.decide_many(batch)

    verdicts = benchmark(run)
    assert len(verdicts) == len(batch)


def test_suite_conjecture_table():
    rows = []
    total = 0.0
    for name, schema in sorted(SCHEMAS.items()):
        start = time.perf_counter()
        report = satisfiability_report(schema)
        queries = implication_workload(schema, n_queries=20, seed=2)
        implied = sum(1 for q in queries if is_implied(schema, q))
        elapsed = time.perf_counter() - start
        total += elapsed
        rows.append(
            (
                name,
                len(schema.hierarchy.categories),
                len(schema.constraints),
                sum(report.values()),
                f"{implied}/{len(queries)}",
                f"{elapsed * 1000:.1f} ms",
            )
        )
    print_table(
        "E11: full audit + 20-query implication workload per schema",
        ["schema", "categories", "constraints", "satisfiable", "implied", "time"],
        rows,
    )
    # The paper's conjecture, with a 2026 machine's margin.
    assert total < 5.0


# ----------------------------------------------------------------------
# CI smoke gate (``python bench_suite.py --quick``)
# ----------------------------------------------------------------------


def _quick_smoke(output_path, repeats=3, n_queries=10):
    """Before/after timings of the implication benchmark.

    "before" runs every query uncached; "after" runs the same queries
    against a fresh :class:`~repro.core.decisioncache.DecisionCache` so
    the first pass pays the misses and the remaining passes measure warm
    behavior - the configuration the OLAP layers actually run in.
    Verdicts must agree; the gate fails on a >20% regression.  The
    process CPU clock (with the collector quiesced) keeps the numbers
    comparable across noisy shared runners.
    """
    from repro.core import DecisionCache

    per_schema = {}
    before_total = after_total = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for name, schema in sorted(SCHEMAS.items()):
            queries = implication_workload(schema, n_queries=n_queries, seed=1)
            gc.collect()

            start = time.process_time()
            before_verdicts = []
            for _ in range(repeats):
                before_verdicts = [
                    is_implied(schema, q, cache=None) for q in queries
                ]
            before = time.process_time() - start

            cache = DecisionCache()
            start = time.process_time()
            after_verdicts = []
            for _ in range(repeats):
                after_verdicts = [
                    is_implied(schema, q, cache=cache) for q in queries
                ]
            after = time.process_time() - start

            if before_verdicts != after_verdicts:
                raise AssertionError(
                    f"cached verdicts diverge on schema {name!r}"
                )
            before_total += before
            after_total += after
            per_schema[name] = {
                "queries": len(queries),
                "repeats": repeats,
                "before_s": before,
                "after_s": after,
                "speedup": before / after if after else float("inf"),
                "cache_hit_rate": cache.stats.hit_rate,
            }
    finally:
        if gc_was_enabled:
            gc.enable()

    report = {
        "benchmark": "implication workload (suite schemas)",
        "before": "uncached (cache=None)",
        "after": "shared DecisionCache, warm after first pass",
        "schemas": per_schema,
        "total": {
            "before_s": before_total,
            "after_s": after_total,
            "speedup": before_total / after_total if after_total else float("inf"),
        },
    }
    output_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _parallel_smoke(output_path, repeats=7):
    """Sequential kernel vs ``decide_many`` on the random-schema batch.

    Both paths answer the identical batch; the engine runs it as one
    deduped concurrent batch at 4 workers over a fresh decision cache.
    Verdicts must be byte-identical (compared on their canonical JSON
    encoding, which is what BENCH_2.json records); the gate fails below
    a 2x speedup on the process CPU clock (interleaved repeats, median
    per-pair ratio - stable on noisy shared runners).

    A final pass re-answers the batch with the trace layer enabled: its
    verdicts must be byte-identical too (tracing observes, never
    decides), and the per-span-name aggregates land in the report as
    ``trace_summary``.
    """
    from repro.core.trace import tracer, tracing

    batch = _batch_workload()

    def time_sequential():
        cpu = time.process_time()
        verdicts = _sequential_kernel_answers(batch)
        return time.process_time() - cpu, verdicts

    def time_parallel():
        cpu = time.process_time()
        with ParallelDecisionEngine(
            max_workers=4, cache=DecisionCache()
        ) as engine:
            verdicts = engine.decide_many(batch)
            stats = engine.stats
        return time.process_time() - cpu, verdicts, stats

    time_sequential()  # warm-up (imports, pool spin-up)
    time_parallel()
    sequential_times = []
    parallel_times = []
    sequential_verdicts = parallel_verdicts = engine_stats = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            elapsed, sequential_verdicts = time_sequential()
            sequential_times.append(elapsed)
            elapsed, parallel_verdicts, engine_stats = time_parallel()
            parallel_times.append(elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    sequential_s = min(sequential_times)
    parallel_s = min(parallel_times)
    speedup = statistics.median(
        s / p for s, p in zip(sequential_times, parallel_times)
    )

    sequential_bytes = json.dumps(sequential_verdicts).encode()
    parallel_bytes = json.dumps(parallel_verdicts).encode()
    if sequential_bytes != parallel_bytes:
        raise AssertionError(
            "parallel batch verdicts diverge from the sequential kernel"
        )

    with tracing():
        with ParallelDecisionEngine(
            max_workers=4, cache=DecisionCache()
        ) as engine:
            traced_verdicts = engine.decide_many(batch)
        trace_summary = tracer().summary()
        trace_events = len(tracer().events())
    traced_bytes = json.dumps(traced_verdicts).encode()
    if traced_bytes != sequential_bytes:
        raise AssertionError(
            "verdicts changed when tracing was enabled"
        )

    report = {
        "benchmark": "parallel batch decisions (random-schema workload)",
        "baseline": "per-request sequential kernel, uncached",
        "parallel": "ParallelDecisionEngine.decide_many, 4 workers, "
        "fresh DecisionCache per run",
        "requests": len(batch),
        "unique_requests": len(batch) // BATCH_REPEATS,
        "repeats": repeats,
        "timing": "interleaved repeats after one warm-up run each, "
        "process CPU clock; speedup is the median per-pair ratio",
        "sequential_s": sequential_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "verdicts_identical": True,
        "verdicts": json.loads(parallel_bytes.decode()),
        "engine_stats": {
            "batch_requests": engine_stats.batch_requests,
            "batch_deduped": engine_stats.batch_deduped,
            "tasks_dispatched": engine_stats.tasks_dispatched,
        },
        "tracing": {
            "verdicts_identical": True,
            "events": trace_events,
        },
        "trace_summary": trace_summary,
    }
    output_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _resilience_smoke(output_path, repeats=7):
    """Fault-free resilience overhead plus a faulted correctness pass.

    The resilient engine wraps the parallel engine with a retry/breaker
    ladder; when nothing faults, that machinery must cost (almost)
    nothing.  Both engines answer the identical batch (fresh
    :class:`~repro.core.decisioncache.DecisionCache` per run); verdicts
    must be byte-identical, and the gate fails when the resilient
    engine's best-of-``repeats`` CPU clock exceeds the plain engine's
    by more than 5%.  Min-of-repeats (after one warm-up each), the
    interleaved A/B order, and the process CPU clock (immune to other
    processes on a shared runner) keep the gate stable against noise.

    A second, faulted pass replays the differential suite's hammer
    schedule (fixed seed) and asserts the ladder's contract: every
    decision ends as a verdict that matches the plain engine or as a
    typed UNKNOWN - never a wrong answer.
    """
    from repro.core.faults import inject_faults
    from repro.core.resilience import ResilientDecisionEngine, RetryPolicy

    batch = _batch_workload()

    def time_plain():
        cpu = time.process_time()
        with ParallelDecisionEngine(
            max_workers=4, cache=DecisionCache()
        ) as engine:
            verdicts = engine.decide_many(batch)
        return time.process_time() - cpu, verdicts

    fast_retry = RetryPolicy(max_attempts=3, base_delay_ms=0.0, max_delay_ms=0.0)

    def time_resilient():
        cpu = time.process_time()
        with ResilientDecisionEngine(
            retry=fast_retry, max_workers=4, cache=DecisionCache()
        ) as engine:
            verdicts = engine.decide_many(batch)
        return time.process_time() - cpu, verdicts

    time_plain()  # warm-up (imports, pool spin-up)
    time_resilient()
    # Interleave the two engines so slow-machine noise hits both
    # evenly, and keep the collector from firing mid-sample.
    plain_times = []
    resilient_times = []
    plain_verdicts = resilient_verdicts = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for repeat in range(repeats):
            gc.collect()
            # Best-of-two per side per repeat: scheduler noise on this
            # clock is strictly one-sided (a sample only ever reads
            # high), so taking the min of two back-to-back samples per
            # side filters a burst unless it hits both.  The A/B order
            # alternates across repeats so monotonic load drift within
            # a repeat cannot keep billing the same side.
            pair_plain = []
            pair_resilient = []
            for _ in range(2):
                for side in (0, 1) if repeat % 2 == 0 else (1, 0):
                    if side == 0:
                        elapsed, plain_verdicts = time_plain()
                        pair_plain.append(elapsed)
                    else:
                        elapsed, resilient_verdicts = time_resilient()
                        pair_resilient.append(elapsed)
            plain_times.append(min(pair_plain))
            resilient_times.append(min(pair_resilient))
    finally:
        if gc_was_enabled:
            gc.enable()
    plain_s = min(plain_times)
    resilient_s = min(resilient_times)
    # Two overhead estimators that fail under *different* noise modes:
    # the ratio of per-side minima is immune to per-sample one-sided
    # bursts but skewed when the machine's load drifts between sides,
    # while the median per-pair ratio is immune to drift (pairs run
    # back to back) but can keep an inflated pair.  A genuine
    # regression inflates both, so the gate takes the lower.
    overhead_min = resilient_s / plain_s - 1.0
    overhead_median = (
        statistics.median(
            r / p for p, r in zip(plain_times, resilient_times)
        )
        - 1.0
    )
    overhead = min(overhead_min, overhead_median)

    plain_bytes = json.dumps(plain_verdicts).encode()
    if json.dumps(resilient_verdicts).encode() != plain_bytes:
        raise AssertionError(
            "fault-free resilient verdicts diverge from the plain engine"
        )

    # Faulted pass: worker crashes + cache-store failures, fixed seed
    # (the schedule the differential suite's hammer replays in CI).
    with ResilientDecisionEngine(
        retry=fast_retry, max_workers=4, mode="thread", cache=DecisionCache()
    ) as engine:
        with inject_faults(
            "worker-crash:p=0.3,after=5;cache-store:p=0.3;seed=20020601"
        ) as injector:
            outcomes = engine.decide_many_outcomes(batch)
        fired = dict(injector.fired())
        unknown = sum(1 for o in outcomes if o.unknown)
        wrong = sum(
            1
            for o, expected in zip(outcomes, plain_verdicts)
            if o.ok and o.verdict != expected
        )
        faulted_stats = engine.stats
    if wrong:
        raise AssertionError(
            f"faulted pass returned {wrong} wrong verdicts (never acceptable)"
        )

    report = {
        "benchmark": "resilient engine overhead (random-schema workload)",
        "baseline": "ParallelDecisionEngine.decide_many, 4 workers, "
        "fresh DecisionCache per run",
        "resilient": "ResilientDecisionEngine (retry ladder + breaker), "
        "fault-free, same workload",
        "requests": len(batch),
        "repeats": repeats,
        "timing": "interleaved repeats after one warm-up run each, "
        "best-of-two samples per side per repeat, process CPU clock; "
        "overhead is the lower of the per-side-minima ratio and the "
        "median per-pair ratio (each robust to a different noise mode)",
        "plain_s": plain_s,
        "resilient_s": resilient_s,
        "overhead_pct": overhead * 100.0,
        "overhead_median_pct": overhead_median * 100.0,
        "verdicts_identical": True,
        "faulted_pass": {
            "spec": "worker-crash:p=0.3,after=5;cache-store:p=0.3;seed=20020601",
            "fired": fired,
            "unknown_verdicts": unknown,
            "wrong_verdicts": wrong,
            "retries": faulted_stats.retries,
            "degraded_sequential": faulted_stats.degraded_sequential,
        },
    }
    output_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _telemetry_smoke(output_path, telemetry_dir=None, repeats=7):
    """Exporter overhead plus the audit replay gate.

    The baseline answers the batch with the trace layer enabled but no
    exporters attached - the most observability a process had before the
    telemetry pipeline existed.  The telemetry pass answers the identical
    batch with a :class:`~repro.core.telemetry.TelemetryPipeline`
    installed, so every finished span, event, and audit record pays one
    non-blocking enqueue on the hot path (serialization happens on the
    writer's drain thread).  Verdicts must be byte-identical, the gate
    fails above 5% best-of-``repeats`` overhead on the process CPU
    clock (interleaved A/B repeats, immune to other processes on a
    shared runner), and the audit log the pass produced must replay on
    the sequential kernel (>=200 records) with zero divergences.
    """
    from repro.core.auditlog import verify_audit_log
    from repro.core.telemetry import TelemetryPipeline

    batch = _batch_workload()

    def run_batch():
        with ParallelDecisionEngine(
            max_workers=4, cache=DecisionCache()
        ) as engine:
            return engine.decide_many(batch)

    reference_verdicts = run_batch()  # warm-up (imports, pool spin-up)

    if telemetry_dir is None:
        telemetry_dir = tempfile.mkdtemp(prefix="repro-telemetry-")
    # The writer's bound is sized to the burst (a production deployment
    # does the same): the whole pass fits under the high-water mark, so
    # the drain thread catches up in gaps and at finalize instead of
    # competing with the timed window for the interpreter.
    pipeline = TelemetryPipeline(str(telemetry_dir), max_queue=32768)
    from repro.core.auditlog import AUDIT
    from repro.core.trace import TRACER  # noqa: N811 - module singletons

    def set_exporters(on):
        """Flip between the two timed modes: tracing stays enabled in
        both; ``on`` additionally streams to the pipeline's sinks."""
        TRACER.sink = pipeline if on else None
        AUDIT.enabled = on

    pipeline.install()
    try:
        set_exporters(False)
        run_batch()  # warm-up, tracing on, no exporters
        set_exporters(True)
        run_batch()  # warm-up with the exporters attached
        traced_times = []
        telemetry_times = []
        telemetry_verdicts = []
        # Interleave the two modes so slow-machine noise hits both
        # evenly; drain the writer's backlog outside both windows, and
        # keep the collector from firing mid-sample (the flush's own
        # allocations would otherwise bill a GC cycle to the sample
        # that happens to follow it).
        # The writer is paused across the timed samples so the gate
        # prices exactly the hot-path (producer) overhead; the deferred
        # serialization happens in the per-pair flush, outside both
        # windows (on a multi-core host it runs on a spare core).
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for repeat in range(repeats):
                pipeline.flush()
                gc.collect()
                pipeline.writer.pause()
                # Best-of-two per side per repeat, A/B order alternating
                # across repeats (see the resilience smoke): one-sided
                # scheduler noise only survives the min when it hits
                # both back-to-back samples of a side, and drift within
                # a repeat cannot keep billing the same side.
                pair_traced = []
                pair_telemetry = []
                for _ in range(2):
                    for side in (0, 1) if repeat % 2 == 0 else (1, 0):
                        if side == 0:
                            set_exporters(False)
                            cpu = time.process_time()
                            run_batch()
                            pair_traced.append(time.process_time() - cpu)
                        else:
                            set_exporters(True)
                            cpu = time.process_time()
                            telemetry_verdicts = run_batch()
                            pair_telemetry.append(
                                time.process_time() - cpu
                            )
                traced_times.append(min(pair_traced))
                telemetry_times.append(min(pair_telemetry))
                pipeline.writer.resume()
        finally:
            pipeline.writer.resume()
            if gc_was_enabled:
                gc.enable()
        traced_s = min(traced_times)
        telemetry_s = min(telemetry_times)
        # The lower of two differently-robust estimators (see the
        # resilience smoke): per-side minima vs median per-pair ratio.
        overhead_min = telemetry_s / traced_s - 1.0
        overhead_median = (
            statistics.median(
                t / b for b, t in zip(traced_times, telemetry_times)
            )
            - 1.0
        )
        overhead = min(overhead_min, overhead_median)
    finally:
        manifest = pipeline.finalize()

    if json.dumps(telemetry_verdicts) != json.dumps(reference_verdicts):
        raise AssertionError(
            "verdicts changed with the telemetry pipeline installed"
        )

    audit = verify_audit_log(str(telemetry_dir))
    if not audit.ok:
        raise AssertionError(
            "audit replay diverged from the log:\n" + audit.render()
        )

    report = {
        "benchmark": "telemetry exporter overhead (random-schema workload)",
        "baseline": "ParallelDecisionEngine.decide_many, 4 workers, "
        "tracing enabled, no exporters",
        "telemetry": "same workload with TelemetryPipeline installed "
        "(spans + events + audit streamed through the background writer)",
        "requests": len(batch),
        "repeats": repeats,
        "timing": "interleaved repeats after one warm-up run each, "
        "best-of-two samples per side per repeat, process CPU clock; "
        "overhead is the lower of the per-side-minima ratio and the "
        "median per-pair ratio (each robust to a different noise mode)",
        "traced_s": traced_s,
        "telemetry_s": telemetry_s,
        "overhead_pct": overhead * 100.0,
        "overhead_median_pct": overhead_median * 100.0,
        "verdicts_identical": True,
        "telemetry_dir": str(telemetry_dir),
        "writer": {
            "records_written": manifest["records_written"],
            "records_dropped": manifest["records_dropped"],
            "tracer_dropped_spans": manifest["tracer_dropped_spans"],
            "tracer_dropped_events": manifest["tracer_dropped_events"],
        },
        "audit_verify": {
            "records": audit.records,
            "schemas": audit.schemas,
            "replayed": audit.verified,
            "skipped_unknown": audit.skipped_unknown,
            "skipped_options": audit.skipped_options,
            "divergences": len(audit.divergences),
        },
    }
    output_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _compiled_smoke(output_path, repeats=7):
    """Cold decisions through the compiled tier vs the interpreted kernel.

    The workload is each suite schema's decision family: a full category
    satisfiability sweep, an implication workload, and a summarizability
    workload - every decision distinct, so nothing can be served from a
    verdict cache (both sides run with ``cache=None``).  The schemas are
    *hot*: the compiled artifact (subhierarchy enumeration, CNF, CHECK
    closures, registered queries, learned clauses) is resident before
    the timed window, and its one-time cost is reported separately as
    ``warmup_ms``.  The baseline answers the identical decisions with
    the sequential interpreted kernel.

    Verdicts must be byte-identical (canonical JSON of the verdict
    list); the gate fails below a 10x aggregate speedup on the process
    CPU clock (interleaved repeats, best-of-two samples per side per
    repeat, ratio of per-side minima - the same discipline as the other
    smokes).  No decision may fall back: the suite schemas are all
    symbolic, so a fallback would mean the tier regressed.
    """
    from repro._types import ALL
    from repro.core import is_category_satisfiable
    from repro.core.compile import CompiledArtifactStore, CompiledDecisionEngine

    store = CompiledArtifactStore()
    engine = CompiledDecisionEngine(cache=None, store=store)

    workloads = {}
    warmup_ms = {}
    for name, schema in sorted(SCHEMAS.items()):
        categories = sorted(schema.hierarchy.categories - {ALL})
        # The BENCH_2 traffic shape: implication and summarizability in
        # equal measure, plus the per-category satisfiability audit.
        impl = implication_workload(schema, n_queries=10, seed=1)
        summ = summarizability_workload(schema, n_queries=10, seed=1)
        workloads[name] = (schema, categories, impl, summ)
        # Make the schema hot: compile the artifact and register every
        # query once.  This is the amortized one-time cost the tier
        # pays; everything after answers from the resident artifact.
        start = time.process_time()
        store.get(schema)
        for category in categories:
            engine.dimsat(schema, category)
        for query in impl:
            engine.is_implied(schema, query)
        for target, sources in summ:
            engine.is_summarizable(schema, target, sources)
        warmup_ms[name] = (time.process_time() - start) * 1000.0

    def interpreted_pass(name):
        schema, categories, impl, summ = workloads[name]
        verdicts = [
            is_category_satisfiable(schema, c, cache=None) for c in categories
        ]
        verdicts += [is_implied(schema, q, cache=None) for q in impl]
        verdicts += [
            is_summarizable_in_schema(schema, t, s, cache=None)
            for t, s in summ
        ]
        return verdicts

    def compiled_pass(name):
        schema, categories, impl, summ = workloads[name]
        verdicts = [
            engine.dimsat(schema, c).satisfiable for c in categories
        ]
        verdicts += [engine.is_implied(schema, q) for q in impl]
        verdicts += [
            engine.is_summarizable(schema, t, s) for t, s in summ
        ]
        return verdicts

    per_schema = {}
    interpreted_total = compiled_total = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for name in sorted(workloads):
            interpreted_pass(name)  # warm-up (imports, circle caches)
            compiled_pass(name)
            interpreted_times = []
            compiled_times = []
            interpreted_verdicts = compiled_verdicts = None
            for repeat in range(repeats):
                gc.collect()
                # Best-of-two per side per repeat, A/B order alternating
                # across repeats (see the resilience smoke's rationale).
                pair_interpreted = []
                pair_compiled = []
                for _ in range(2):
                    for side in (0, 1) if repeat % 2 == 0 else (1, 0):
                        if side == 0:
                            cpu = time.process_time()
                            interpreted_verdicts = interpreted_pass(name)
                            pair_interpreted.append(
                                time.process_time() - cpu
                            )
                        else:
                            cpu = time.process_time()
                            compiled_verdicts = compiled_pass(name)
                            pair_compiled.append(time.process_time() - cpu)
                interpreted_times.append(min(pair_interpreted))
                compiled_times.append(min(pair_compiled))
            if json.dumps(compiled_verdicts) != json.dumps(
                interpreted_verdicts
            ):
                raise AssertionError(
                    f"compiled verdicts diverge on schema {name!r}"
                )
            interpreted_s = min(interpreted_times)
            compiled_s = min(compiled_times)
            interpreted_total += interpreted_s
            compiled_total += compiled_s
            schema, categories, impl, summ = workloads[name]
            per_schema[name] = {
                "decisions": len(categories) + len(impl) + len(summ),
                "warmup_ms": warmup_ms[name],
                "interpreted_s": interpreted_s,
                "compiled_s": compiled_s,
                "speedup": interpreted_s / compiled_s
                if compiled_s
                else float("inf"),
                "artifact": store.get(schema).describe(),
                "verdicts": compiled_verdicts,
            }
    finally:
        if gc_was_enabled:
            gc.enable()

    if engine.stats.fallbacks:
        raise AssertionError(
            f"compiled tier fell back {engine.stats.fallbacks} times on "
            "the suite schemas (all symbolic - must compile)"
        )

    report = {
        "benchmark": "compiled decision tier (suite schemas)",
        "baseline": "sequential interpreted kernel, cache=None "
        "(every decision cold)",
        "compiled": "CompiledDecisionEngine over a resident artifact, "
        "cache=None (cold decisions, hot schema)",
        "repeats": repeats,
        "timing": "interleaved repeats after one warm-up run each, "
        "best-of-two samples per side per repeat, process CPU clock; "
        "per-schema and aggregate speedups are ratios of per-side "
        "minima",
        "schemas": per_schema,
        "total": {
            "interpreted_s": interpreted_total,
            "compiled_s": compiled_total,
            "speedup": interpreted_total / compiled_total
            if compiled_total
            else float("inf"),
            "fallbacks": engine.stats.fallbacks,
            "compiled_decisions": engine.stats.compiled_decisions,
        },
    }
    output_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


#: Seeds of the evolving-schema fleet for the edit-survival smoke (all
#: three land in the fast tail of the generator's DIMSAT cost
#: distribution, keeping the smoke's wall clock in seconds).
EDIT_SURVIVAL_SEEDS = (1, 3, 7)


def _edit_survival(output_path, repeats=5):
    """Warm-verdict survival across an unrelated constraint edit.

    The scenario is ROADMAP item 2's worst case: a long-lived process
    with a warm decision cache over a wide schema (24 categories, four
    layers - the shape where dependency cones are small relative to the
    whole) receives a constraint edit.  Before provenance-scoped
    invalidation, the fingerprint change threw away *every* warm
    verdict; now only the verdicts whose dependency cone the edit
    touches may go.

    The warm set is a full category satisfiability sweep plus an
    implication workload.  The edit is chosen from the hierarchy's own
    bottom edges (a rollup tautology ``child -> parent implies child ->
    parent``, textually new so the fingerprint must change) by picking
    the candidate whose constraint footprint is most disjoint from the
    warm cones - i.e. the most unrelated edit the schema offers, which
    is exactly the case the sledgehammer handled worst.  Summarizability
    verdicts are deliberately absent from the warm set: Theorem 1
    quantifies over every bottom member, so their cones legitimately
    span every bottom's upward closure and *no* constraint edit near a
    bottom can spare them.

    Correctness gates (hard ``AssertionError``s): the surviving keys
    must be exactly the ones the recorded provenance predicts, every
    survivor must be byte-identical (canonical verdict JSON) to a fresh
    sequential recomputation on the edited schema, nothing may remain
    under the replaced fingerprint, and the aggregate survival must
    reach 90%.  The timed comparison prices the sledgehammer (recompute
    the whole warm set cold, which is what fingerprint invalidation
    forced) against the scoped path (delta + rekey + re-serving the
    warm set through the cache, where survivors hit and only the
    dropped verdicts recompute) - interleaved repeats, best-of-two
    samples per side, process CPU clock.  Finally the edited caches
    round-trip the persistent store and must replay clean through the
    audit-verify machinery on load.
    """
    from repro._types import ALL
    from repro.core import load_cache, save_cache
    from repro.core.dimsat import dimsat as run_dimsat
    from repro.core.implication import implies as run_implies
    from repro.core.provenance import schema_delta
    from repro.olap.maintenance import SchemaEditor

    def canonical(verdict):
        """Byte-comparable verdict content (work counters depend on
        process-global circle caches, so they stay out)."""
        satisfiable = getattr(verdict, "satisfiable", None)
        if satisfiable is not None:
            return json.dumps([satisfiable, repr(verdict.witness)])
        return json.dumps([verdict.implied, repr(verdict.counterexample)])

    def recompute(schema, key):
        """Fresh sequential recomputation of one warm cache key."""
        if key[1] == "dimsat":
            return run_dimsat(schema, key[2])
        return run_implies(schema, key[2], cache=None)

    def serve(cache, schema, key):
        """The same decision through the (possibly rekeyed) cache."""
        if key[1] == "dimsat":
            return cache.dimsat(schema, key[2])
        return cache.implies(schema, key[2])

    per_schema = {}
    total_warm = total_survived = 0
    sledgehammer_total = scoped_total = 0.0
    persist_cache = DecisionCache()

    for seed in EDIT_SURVIVAL_SEEDS:
        name = f"evolving-24x4-s{seed}"
        schema = random_schema(
            RandomSchemaConfig(n_categories=24, n_layers=4, seed=seed)
        )
        warm_cache = DecisionCache()
        for category in sorted(schema.hierarchy.categories - {ALL}):
            warm_cache.dimsat(schema, category)
        for query in implication_workload(schema, n_queries=20, seed=1):
            warm_cache.implies(schema, query)
        warm_keys = warm_cache.entries_for(schema.fingerprint())
        provenance = {
            key: warm_cache.provenance_of(key) for key in warm_keys
        }
        snapshot = warm_cache.snapshot()

        # Choose the most unrelated edit among the hierarchy's bottom
        # edges: the tautology whose footprint spares the most cones.
        bottoms = set(schema.hierarchy.bottom_categories())
        best = None
        for child, parent in sorted(schema.hierarchy.edges):
            if child not in bottoms or parent == ALL:
                continue
            text = f"{child} -> {parent} implies {child} -> {parent}"
            candidate = schema.with_constraints([text])
            if candidate.fingerprint() == schema.fingerprint():
                continue  # textually present already - not an edit
            delta = schema_delta(schema, candidate)
            survivors = frozenset(
                key
                for key in warm_keys
                if provenance[key] is not None
                and provenance[key].survives(delta)
            )
            if best is None or len(survivors) > len(best[1]):
                best = (text, survivors)
        edit_text, expected_survivors = best

        # Correctness pass (untimed): apply the edit through the real
        # editor path and hold the rekey to the provenance's promise.
        cache = DecisionCache()
        cache.install(*snapshot)
        edited = SchemaEditor(schema, cache).add_constraint(edit_text)
        if cache.holds(schema.fingerprint()):
            raise AssertionError(
                f"{name}: replaced fingerprint still resident after edit"
            )
        rekeyed = set(cache.entries_for(edited.fingerprint()))
        expected_rekeyed = {
            (edited.fingerprint(),) + key[1:] for key in expected_survivors
        }
        if rekeyed != expected_rekeyed:
            raise AssertionError(
                f"{name}: rekeyed keys diverge from recorded provenance"
            )
        for key in sorted(expected_survivors, key=repr):
            survivor = cache.peek((edited.fingerprint(),) + key[1:])
            if canonical(survivor) != canonical(recompute(edited, key)):
                raise AssertionError(
                    f"{name}: surviving verdict for {key[1:]!r} is not "
                    "byte-identical to a fresh recomputation"
                )
        persist_cache.install(*cache.snapshot())

        # Timed comparison: the sledgehammer recomputes the whole warm
        # set cold; the scoped path pays delta + rekey, then re-serves
        # the warm set (survivors hit, dropped verdicts recompute).
        sledgehammer_times = []
        scoped_times = []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for repeat in range(repeats):
                gc.collect()
                pair_sledgehammer = []
                pair_scoped = []
                for _ in range(2):
                    for side in (0, 1) if repeat % 2 == 0 else (1, 0):
                        if side == 0:
                            cpu = time.process_time()
                            for key in warm_keys:
                                recompute(edited, key)
                            pair_sledgehammer.append(
                                time.process_time() - cpu
                            )
                        else:
                            sample = DecisionCache()
                            sample.install(*snapshot)
                            cpu = time.process_time()
                            sample.rekey(schema, edited)
                            for key in warm_keys:
                                serve(sample, edited, key)
                            pair_scoped.append(time.process_time() - cpu)
                sledgehammer_times.append(min(pair_sledgehammer))
                scoped_times.append(min(pair_scoped))
        finally:
            if gc_was_enabled:
                gc.enable()

        sledgehammer_s = min(sledgehammer_times)
        scoped_s = min(scoped_times)
        sledgehammer_total += sledgehammer_s
        scoped_total += scoped_s
        total_warm += len(warm_keys)
        total_survived += len(expected_survivors)
        per_schema[name] = {
            "warm": len(warm_keys),
            "survived": len(expected_survivors),
            "dropped": len(warm_keys) - len(expected_survivors),
            "survival_pct": 100.0 * len(expected_survivors) / len(warm_keys),
            "edit": edit_text,
            "sledgehammer_s": sledgehammer_s,
            "scoped_s": scoped_s,
            "speedup": sledgehammer_s / scoped_s
            if scoped_s
            else float("inf"),
        }

    survival_pct = 100.0 * total_survived / total_warm
    if survival_pct < 90.0:
        raise AssertionError(
            f"edit survival {survival_pct:.1f}% below the 90% gate"
        )

    # Persistence leg: the edited caches must round-trip the disk store
    # and replay clean through the audit-verify machinery on load.
    persist_dir = tempfile.mkdtemp(prefix="repro-cache-")
    save_report = save_cache(persist_cache, persist_dir)
    reloaded = DecisionCache()
    load_report = load_cache(reloaded, persist_dir, verify_replay=True)
    if not load_report.clean or load_report.dropped_divergent:
        raise AssertionError(
            "persistent cache did not replay clean: "
            + "; ".join(load_report.divergences)
        )
    if load_report.loaded != len(persist_cache):
        raise AssertionError(
            f"persistent cache lost entries on reload "
            f"({load_report.loaded} of {len(persist_cache)})"
        )

    report = {
        "benchmark": "edit-time verdict survival "
        "(provenance-scoped invalidation)",
        "baseline": "fingerprint sledgehammer: recompute the whole warm "
        "set cold after the edit (cache=None)",
        "scoped": "schema delta + rekey + re-serve the warm set through "
        "the cache (survivors hit, dropped verdicts recompute)",
        "repeats": repeats,
        "timing": "interleaved repeats, best-of-two samples per side per "
        "repeat, process CPU clock; speedups are ratios of per-side "
        "minima",
        "schemas": per_schema,
        "total": {
            "warm": total_warm,
            "survived": total_survived,
            "survival_pct": survival_pct,
            "sledgehammer_s": sledgehammer_total,
            "scoped_s": scoped_total,
            "speedup": sledgehammer_total / scoped_total
            if scoped_total
            else float("inf"),
        },
        "persistence": {
            "directory": persist_dir,
            "entries": save_report.entries,
            "bytes": save_report.bytes_written,
            "loaded": load_report.loaded,
            "replayed": load_report.replayed,
            "dropped_divergent": load_report.dropped_divergent,
            "clean": load_report.clean,
        },
    }
    output_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _percentile(values, q):
    """The q-quantile by nearest-rank over a non-empty sample."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _server_smoke(output_path, clients=8, rounds=3, iterations=4):
    """Concurrent-load leg: ``clients`` threads of mixed traffic over one
    shared warm :class:`~repro.core.server.DecisionServer`.

    One warmup pass populates the shared cache; each measured round then
    fans the whole mixed workload out to every client concurrently and
    records per-request wall latency.  The committed p99 is the best of
    ``rounds`` (the repo's best-of idiom: scheduler noise must not teach
    the trajectory a slower baseline).  Verdicts are checked against the
    sequential kernel (``cache=None``) - a divergence is an assertion,
    not a statistic.
    """
    import threading

    from repro.core.client import DecisionClient
    from repro.core.resilience import ResilientDecisionEngine
    from repro.core.server import DecisionServer
    from repro.generators.location import location_schema

    schema = location_schema()
    engine = ResilientDecisionEngine(
        ParallelDecisionEngine(max_workers=2, cache=DecisionCache())
    )
    server = DecisionServer(engine=engine, max_inflight=clients)
    server_thread = threading.Thread(target=server.run, daemon=True)
    server_thread.start()
    if not server.started.wait(30):
        raise AssertionError("decision server did not start")

    implications = [
        "Store.City",
        "City.State.Country",
        "Store.SaleRegion",
        "City.Country",
        "State.Country",
    ]
    summarizability = [
        ("Country", ["City"]),
        ("Country", ["City", "SaleRegion"]),
        ("Country", ["State", "Province"]),
        ("State", ["City"]),
    ]
    navigations = [
        ("Country", ["City", "SaleRegion"]),
        ("City", ["City"]),
    ]
    expected = {}
    for constraint in implications:
        expected[("implies", constraint)] = is_implied(
            schema, constraint, cache=None
        )
    for target, sources in summarizability:
        expected[("summarizable", target, tuple(sources))] = (
            is_summarizable_in_schema(schema, target, sources, cache=None)
        )
    expected[("decide", "Store")] = True  # Store is satisfiable (E1)

    def workload(client, fingerprint, latencies, verdicts):
        for constraint in implications:
            start = time.perf_counter()
            response = client.implies(fingerprint, constraint)
            latencies.append(time.perf_counter() - start)
            verdicts.append(
                (("implies", constraint), response.get("verdict"))
            )
        for target, sources in summarizability:
            start = time.perf_counter()
            response = client.summarizable(fingerprint, target, sources)
            latencies.append(time.perf_counter() - start)
            verdicts.append(
                (
                    ("summarizable", target, tuple(sources)),
                    response.get("verdict"),
                )
            )
        for target, materialized in navigations:
            start = time.perf_counter()
            client.navigate(fingerprint, target, materialized)
            latencies.append(time.perf_counter() - start)
        start = time.perf_counter()
        response = client.decide(fingerprint, ("dimsat", "Store"))
        latencies.append(time.perf_counter() - start)
        verdicts.append((("decide", "Store"), response.get("verdict")))

    try:
        with DecisionClient(server.host, server.port) as warmer:
            fingerprint = warmer.load_schema(schema)
            warm_latencies, warm_verdicts = [], []
            workload(warmer, fingerprint, warm_latencies, warm_verdicts)

        cache = server.cache
        hits_before = cache.stats.hits
        misses_before = cache.stats.misses
        round_p99s, round_times = [], []
        latencies, verdicts, errors = [], [], []
        for _round in range(rounds):
            round_latencies = []
            per_client = [([], []) for _ in range(clients)]

            def run_client(slot):
                lat, ver = per_client[slot]
                try:
                    with DecisionClient(server.host, server.port) as client:
                        for _ in range(iterations):
                            workload(client, fingerprint, lat, ver)
                except Exception as error:  # pragma: no cover
                    errors.append(repr(error))

            threads = [
                threading.Thread(target=run_client, args=(slot,))
                for slot in range(clients)
            ]
            round_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
            round_times.append(time.perf_counter() - round_start)
            for lat, ver in per_client:
                round_latencies.extend(lat)
                verdicts.extend(ver)
            latencies.extend(round_latencies)
            round_p99s.append(_percentile(round_latencies, 0.99))
        if errors:
            raise AssertionError(f"server bench client failed: {errors[0]}")

        mismatches = [
            (key, verdict)
            for key, verdict in verdicts
            if verdict != expected[key]
        ]
        hits = cache.stats.hits - hits_before
        misses = cache.stats.misses - misses_before
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
        stats = server.stats
        with DecisionClient(server.host, server.port) as closer:
            closer.shutdown()
        server_thread.join(30)
    finally:
        server.request_shutdown()
        server_thread.join(10)
        engine.shutdown()
    if server_thread.is_alive():
        raise AssertionError("decision server did not stop")
    if mismatches:
        raise AssertionError(
            f"{len(mismatches)} served verdicts diverged from the "
            f"sequential kernel, first: {mismatches[0]}"
        )

    requests = len(latencies)
    report = {
        "benchmark": "concurrent decision server (mixed traffic over one "
        "shared warm engine)",
        "clients": clients,
        "rounds": rounds,
        "iterations_per_client": iterations,
        "requests": requests,
        "mismatches": 0,
        "busy_responses": stats.busy_responses,
        "timing": "per-request wall latency over loopback TCP; committed "
        "p99 is the best of the measured rounds",
        "total": {
            "p50_ms": _percentile(latencies, 0.50) * 1000.0,
            "p99_ms": min(round_p99s) * 1000.0,
            "mean_ms": (sum(latencies) / requests) * 1000.0,
            "throughput_rps": requests / sum(round_times),
            "warm_hits": hits,
            "warm_misses": misses,
            "warm_hit_pct": hit_rate * 100.0,
        },
    }
    output_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-run the implication benchmark cached vs uncached and "
        "write BENCH_1.json",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_1.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--emit-metrics",
        metavar="PATH",
        default=None,
        help="also write a JSON snapshot of the process-wide metrics "
        "registry after the smoke runs",
    )
    parser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=None,
        help="where the telemetry smoke writes its telemetry directory "
        "(spans, audit log, rendered artifacts); default is a temp dir",
    )
    args = parser.parse_args(argv)
    if not args.quick:
        parser.error("only --quick mode is supported when run directly")
    output_path = Path(args.output)
    output_path.parent.mkdir(parents=True, exist_ok=True)
    report = _quick_smoke(output_path)
    total = report["total"]
    print(
        f"implication benchmark: before {total['before_s'] * 1000:.1f} ms, "
        f"after {total['after_s'] * 1000:.1f} ms "
        f"({total['speedup']:.1f}x), report -> {args.output}"
    )
    if total["after_s"] > 1.2 * total["before_s"]:
        print("FAIL: cached implication benchmark regressed by more than 20%")
        return 1
    print("OK: no regression")

    bench2_path = output_path.with_name("BENCH_2.json")
    parallel = _parallel_smoke(bench2_path)
    print(
        f"parallel batch benchmark: sequential "
        f"{parallel['sequential_s'] * 1000:.1f} ms, batch (4 workers) "
        f"{parallel['parallel_s'] * 1000:.1f} ms "
        f"({parallel['speedup']:.1f}x), report -> {bench2_path}"
    )
    if parallel["speedup"] < 2.0:
        print("FAIL: parallel batch speedup below 2x")
        return 1
    print("OK: parallel batch at or above 2x with identical verdicts")

    bench4_path = output_path.with_name("BENCH_4.json")
    resilience = _resilience_smoke(bench4_path)
    faulted = resilience["faulted_pass"]
    print(
        f"resilience benchmark: plain {resilience['plain_s'] * 1000:.1f} ms, "
        f"resilient {resilience['resilient_s'] * 1000:.1f} ms "
        f"({resilience['overhead_pct']:+.1f}%), faulted pass "
        f"{faulted['unknown_verdicts']} UNKNOWN / 0 wrong, "
        f"report -> {bench4_path}"
    )
    if resilience["overhead_pct"] > 5.0:
        print("FAIL: fault-free resilient overhead above 5%")
        return 1
    print("OK: resilient overhead within 5% with identical verdicts")

    bench5_path = output_path.with_name("BENCH_5.json")
    telemetry = _telemetry_smoke(bench5_path, telemetry_dir=args.telemetry_dir)
    audit = telemetry["audit_verify"]
    print(
        f"telemetry benchmark: traced {telemetry['traced_s'] * 1000:.1f} ms, "
        f"exporters on {telemetry['telemetry_s'] * 1000:.1f} ms "
        f"({telemetry['overhead_pct']:+.1f}%), audit replay "
        f"{audit['replayed']}/{audit['records']} records, "
        f"{audit['divergences']} divergences, report -> {bench5_path}"
    )
    if telemetry["overhead_pct"] > 5.0:
        print("FAIL: telemetry exporter overhead above 5%")
        return 1
    if audit["records"] < 200:
        print("FAIL: telemetry smoke produced fewer than 200 audit records")
        return 1
    if audit["divergences"]:
        print("FAIL: audit replay diverged from the log")
        return 1
    print("OK: exporter overhead within 5%, audit log replays cleanly")

    bench6_path = output_path.with_name("BENCH_6.json")
    compiled = _compiled_smoke(bench6_path)
    compiled_total = compiled["total"]
    print(
        f"compiled tier benchmark: interpreted "
        f"{compiled_total['interpreted_s'] * 1000:.1f} ms, compiled "
        f"{compiled_total['compiled_s'] * 1000:.1f} ms "
        f"({compiled_total['speedup']:.1f}x cold decisions, "
        f"{compiled_total['compiled_decisions']} served, "
        f"{compiled_total['fallbacks']} fallbacks), "
        f"report -> {bench6_path}"
    )
    if compiled_total["speedup"] < 10.0:
        print("FAIL: compiled tier below 10x on cold decisions")
        return 1
    print("OK: compiled tier at or above 10x with identical verdicts")

    bench7_path = output_path.with_name("BENCH_7.json")
    survival = _edit_survival(bench7_path)
    survival_total = survival["total"]
    persistence = survival["persistence"]
    print(
        f"edit survival benchmark: {survival_total['survived']}/"
        f"{survival_total['warm']} warm verdicts survived "
        f"({survival_total['survival_pct']:.1f}%), sledgehammer "
        f"{survival_total['sledgehammer_s'] * 1000:.1f} ms vs scoped "
        f"{survival_total['scoped_s'] * 1000:.1f} ms "
        f"({survival_total['speedup']:.1f}x), persisted reload "
        f"{persistence['loaded']}/{persistence['entries']} entries, "
        f"{persistence['dropped_divergent']} divergent, "
        f"report -> {bench7_path}"
    )
    if survival_total["survival_pct"] < 90.0:
        print("FAIL: warm-verdict survival below 90% across an edit")
        return 1
    if not persistence["clean"] or persistence["dropped_divergent"]:
        print("FAIL: persisted cache did not replay clean on reload")
        return 1
    print(
        "OK: >=90% of warm verdicts survive byte-identically, "
        "persisted cache replays clean"
    )

    bench8_path = output_path.with_name("BENCH_8.json")
    server = _server_smoke(bench8_path)
    server_total = server["total"]
    print(
        f"server benchmark: {server['clients']} clients x "
        f"{server['requests']} requests, p50 "
        f"{server_total['p50_ms']:.3f} ms, p99 "
        f"{server_total['p99_ms']:.3f} ms, "
        f"{server_total['throughput_rps']:.0f} req/s, warm hits "
        f"{server_total['warm_hit_pct']:.1f}%, "
        f"{server['busy_responses']} busy, report -> {bench8_path}"
    )
    if server["mismatches"]:
        print("FAIL: served verdicts diverged from the sequential kernel")
        return 1
    if server_total["warm_hit_pct"] < 80.0:
        print("FAIL: warm hit rate below 80% after the warmup pass")
        return 1
    print(
        "OK: every served verdict matches the sequential kernel at >=80% "
        "warm hits"
    )
    hot = sorted(
        parallel["trace_summary"].items(),
        key=lambda kv: kv[1]["total_ms"],
        reverse=True,
    )[:5]
    for name, row in hot:
        print(
            f"trace: {name:<28} count={row['count']:<6.0f}"
            f" total={row['total_ms']:.1f} ms max={row['max_ms']:.3f} ms"
        )
    if args.emit_metrics:
        from repro.core.metrics import emit_metrics

        emit_metrics(args.emit_metrics)
        print(f"metrics snapshot -> {args.emit_metrics}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
