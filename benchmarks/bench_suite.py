"""E11 - Section 6's conjecture: "in most practical situations DIMSAT
should yield execution times of the order of a few seconds".

Runs full satisfiability audits and mixed implication workloads over the
realistic schema suite and asserts the wall-clock conjecture (on a modern
machine the whole suite lands far below one second, which comfortably
confirms the 2002 claim).

Run directly with ``--quick`` for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_suite.py --quick

which times the implication workload before (uncached) and after (warm
decision cache), writes the numbers to ``BENCH_1.json`` at the repo root,
and exits non-zero when the cached path regresses the benchmark by more
than 20%.

The same smoke run also measures the
:class:`~repro.core.parallel.ParallelDecisionEngine` batch path on a
random-schema workload with repeated queries (the navigator's traffic
shape): per-request sequential kernel vs one ``decide_many`` batch at 4
workers.  Verdicts must be byte-identical; the numbers go to
``BENCH_2.json`` and the gate fails below a 2x speedup.

Finally the run prices the resilience layer: the same batch through a
:class:`~repro.core.resilience.ResilientDecisionEngine` (fault-free)
must return byte-identical verdicts at <=5% overhead versus the plain
parallel engine, and a faulted pass (fixed-seed worker crashes and
cache-store failures) must stay correct-or-UNKNOWN.  The numbers go to
``BENCH_4.json``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import pytest
from conftest import print_table

from repro.core import is_implied, satisfiability_report
from repro.core.decisioncache import DecisionCache
from repro.core.parallel import ParallelDecisionEngine
from repro.core.summarizability import is_summarizable_in_schema
from repro.generators.random_schema import RandomSchemaConfig, schemas_by_size
from repro.generators.suite import suite_schemas
from repro.generators.workloads import implication_workload, summarizability_workload

SCHEMAS = suite_schemas()

#: Random schemas for the parallel batch benchmark (the navigator asks
#: the same questions over and over; ``BATCH_REPEATS`` models that).
BATCH_SCHEMAS = schemas_by_size([5, 6, 7], RandomSchemaConfig(seed=11))
BATCH_REPEATS = 3


def _batch_workload(n_queries=8, repeats=BATCH_REPEATS, seed=3):
    """A ``decide_many`` batch over the random schemas: an implication and
    summarizability mix, each query appearing ``repeats`` times."""
    batch = []
    for _size, schema in sorted(BATCH_SCHEMAS.items()):
        items = [
            (schema, ("implies", q))
            for q in implication_workload(schema, n_queries=n_queries, seed=seed)
        ]
        items += [
            (schema, ("summarizable", target, sources))
            for target, sources in summarizability_workload(
                schema, n_queries=n_queries, seed=seed
            )
        ]
        batch.extend(items * repeats)
    return batch


def _sequential_kernel_answers(batch):
    """The baseline: every request answered by the uncached sequential
    kernel, one at a time."""
    verdicts = []
    for schema, request in batch:
        if request[0] == "implies":
            verdicts.append(is_implied(schema, request[1], cache=None))
        else:
            verdicts.append(
                is_summarizable_in_schema(
                    schema, request[1], request[2], cache=None
                )
            )
    return verdicts


@pytest.mark.parametrize("name", sorted(SCHEMAS))
def test_satisfiability_audit(benchmark, name):
    schema = SCHEMAS[name]
    report = benchmark(satisfiability_report, schema)
    assert all(report.values())


@pytest.mark.parametrize("name", sorted(SCHEMAS))
def test_implication_workload(benchmark, name):
    schema = SCHEMAS[name]
    queries = implication_workload(schema, n_queries=10, seed=1)

    def run():
        return [is_implied(schema, q) for q in queries]

    verdicts = benchmark(run)
    assert any(verdicts)


@pytest.mark.parametrize("workers", [1, 4])
def test_parallel_batch_workload(benchmark, workers):
    """The engine's batch path at 1 and 4 workers (fresh cache per run)."""
    batch = _batch_workload()

    def run():
        with ParallelDecisionEngine(
            max_workers=workers, cache=DecisionCache()
        ) as engine:
            return engine.decide_many(batch)

    verdicts = benchmark(run)
    assert len(verdicts) == len(batch)


def test_suite_conjecture_table():
    rows = []
    total = 0.0
    for name, schema in sorted(SCHEMAS.items()):
        start = time.perf_counter()
        report = satisfiability_report(schema)
        queries = implication_workload(schema, n_queries=20, seed=2)
        implied = sum(1 for q in queries if is_implied(schema, q))
        elapsed = time.perf_counter() - start
        total += elapsed
        rows.append(
            (
                name,
                len(schema.hierarchy.categories),
                len(schema.constraints),
                sum(report.values()),
                f"{implied}/{len(queries)}",
                f"{elapsed * 1000:.1f} ms",
            )
        )
    print_table(
        "E11: full audit + 20-query implication workload per schema",
        ["schema", "categories", "constraints", "satisfiable", "implied", "time"],
        rows,
    )
    # The paper's conjecture, with a 2026 machine's margin.
    assert total < 5.0


# ----------------------------------------------------------------------
# CI smoke gate (``python bench_suite.py --quick``)
# ----------------------------------------------------------------------


def _quick_smoke(output_path, repeats=3, n_queries=10):
    """Before/after timings of the implication benchmark.

    "before" runs every query uncached; "after" runs the same queries
    against a fresh :class:`~repro.core.decisioncache.DecisionCache` so
    the first pass pays the misses and the remaining passes measure warm
    behavior - the configuration the OLAP layers actually run in.
    Verdicts must agree; the gate fails on a >20% regression.
    """
    from repro.core import DecisionCache

    per_schema = {}
    before_total = after_total = 0.0
    for name, schema in sorted(SCHEMAS.items()):
        queries = implication_workload(schema, n_queries=n_queries, seed=1)

        start = time.perf_counter()
        before_verdicts = []
        for _ in range(repeats):
            before_verdicts = [
                is_implied(schema, q, cache=None) for q in queries
            ]
        before = time.perf_counter() - start

        cache = DecisionCache()
        start = time.perf_counter()
        after_verdicts = []
        for _ in range(repeats):
            after_verdicts = [
                is_implied(schema, q, cache=cache) for q in queries
            ]
        after = time.perf_counter() - start

        if before_verdicts != after_verdicts:
            raise AssertionError(
                f"cached verdicts diverge on schema {name!r}"
            )
        before_total += before
        after_total += after
        per_schema[name] = {
            "queries": len(queries),
            "repeats": repeats,
            "before_s": before,
            "after_s": after,
            "speedup": before / after if after else float("inf"),
            "cache_hit_rate": cache.stats.hit_rate,
        }

    report = {
        "benchmark": "implication workload (suite schemas)",
        "before": "uncached (cache=None)",
        "after": "shared DecisionCache, warm after first pass",
        "schemas": per_schema,
        "total": {
            "before_s": before_total,
            "after_s": after_total,
            "speedup": before_total / after_total if after_total else float("inf"),
        },
    }
    output_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _parallel_smoke(output_path, repeats=3):
    """Sequential kernel vs ``decide_many`` on the random-schema batch.

    Both paths answer the identical batch; the engine runs it as one
    deduped concurrent batch at 4 workers over a fresh decision cache.
    Verdicts must be byte-identical (compared on their canonical JSON
    encoding, which is what BENCH_2.json records); the gate fails below
    a 2x wall-clock speedup.

    A final pass re-answers the batch with the trace layer enabled: its
    verdicts must be byte-identical too (tracing observes, never
    decides), and the per-span-name aggregates land in the report as
    ``trace_summary``.
    """
    from repro.core.trace import tracer, tracing

    batch = _batch_workload()

    start = time.perf_counter()
    sequential_verdicts = []
    for _ in range(repeats):
        sequential_verdicts = _sequential_kernel_answers(batch)
    sequential_s = (time.perf_counter() - start) / repeats

    start = time.perf_counter()
    parallel_verdicts = []
    engine_stats = None
    for _ in range(repeats):
        with ParallelDecisionEngine(
            max_workers=4, cache=DecisionCache()
        ) as engine:
            parallel_verdicts = engine.decide_many(batch)
            engine_stats = engine.stats
    parallel_s = (time.perf_counter() - start) / repeats

    sequential_bytes = json.dumps(sequential_verdicts).encode()
    parallel_bytes = json.dumps(parallel_verdicts).encode()
    if sequential_bytes != parallel_bytes:
        raise AssertionError(
            "parallel batch verdicts diverge from the sequential kernel"
        )

    with tracing():
        with ParallelDecisionEngine(
            max_workers=4, cache=DecisionCache()
        ) as engine:
            traced_verdicts = engine.decide_many(batch)
        trace_summary = tracer().summary()
        trace_events = len(tracer().events())
    traced_bytes = json.dumps(traced_verdicts).encode()
    if traced_bytes != sequential_bytes:
        raise AssertionError(
            "verdicts changed when tracing was enabled"
        )

    report = {
        "benchmark": "parallel batch decisions (random-schema workload)",
        "baseline": "per-request sequential kernel, uncached",
        "parallel": "ParallelDecisionEngine.decide_many, 4 workers, "
        "fresh DecisionCache per run",
        "requests": len(batch),
        "unique_requests": len(batch) // BATCH_REPEATS,
        "repeats": repeats,
        "sequential_s": sequential_s,
        "parallel_s": parallel_s,
        "speedup": sequential_s / parallel_s if parallel_s else float("inf"),
        "verdicts_identical": True,
        "verdicts": json.loads(parallel_bytes.decode()),
        "engine_stats": {
            "batch_requests": engine_stats.batch_requests,
            "batch_deduped": engine_stats.batch_deduped,
            "tasks_dispatched": engine_stats.tasks_dispatched,
        },
        "tracing": {
            "verdicts_identical": True,
            "events": trace_events,
        },
        "trace_summary": trace_summary,
    }
    output_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _resilience_smoke(output_path, repeats=5):
    """Fault-free resilience overhead plus a faulted correctness pass.

    The resilient engine wraps the parallel engine with a retry/breaker
    ladder; when nothing faults, that machinery must cost (almost)
    nothing.  Both engines answer the identical batch (fresh
    :class:`~repro.core.decisioncache.DecisionCache` per run); verdicts
    must be byte-identical, and the gate fails when the resilient
    engine's best-of-``repeats`` wall clock exceeds the plain engine's
    by more than 5%.  Min-of-repeats (after one warm-up each) keeps the
    gate stable against scheduler noise.

    A second, faulted pass replays the differential suite's hammer
    schedule (fixed seed) and asserts the ladder's contract: every
    decision ends as a verdict that matches the plain engine or as a
    typed UNKNOWN - never a wrong answer.
    """
    from repro.core.faults import inject_faults
    from repro.core.resilience import ResilientDecisionEngine, RetryPolicy

    batch = _batch_workload()

    def time_plain():
        start = time.perf_counter()
        with ParallelDecisionEngine(
            max_workers=4, cache=DecisionCache()
        ) as engine:
            verdicts = engine.decide_many(batch)
        return time.perf_counter() - start, verdicts

    fast_retry = RetryPolicy(max_attempts=3, base_delay_ms=0.0, max_delay_ms=0.0)

    def time_resilient():
        start = time.perf_counter()
        with ResilientDecisionEngine(
            retry=fast_retry, max_workers=4, cache=DecisionCache()
        ) as engine:
            verdicts = engine.decide_many(batch)
        return time.perf_counter() - start, verdicts

    time_plain()  # warm-up (imports, pool spin-up)
    time_resilient()
    plain_s = min(time_plain()[0] for _ in range(repeats))
    plain_verdicts = time_plain()[1]
    resilient_s = min(time_resilient()[0] for _ in range(repeats))
    resilient_verdicts = time_resilient()[1]

    plain_bytes = json.dumps(plain_verdicts).encode()
    if json.dumps(resilient_verdicts).encode() != plain_bytes:
        raise AssertionError(
            "fault-free resilient verdicts diverge from the plain engine"
        )

    # Faulted pass: worker crashes + cache-store failures, fixed seed
    # (the schedule the differential suite's hammer replays in CI).
    with ResilientDecisionEngine(
        retry=fast_retry, max_workers=4, mode="thread", cache=DecisionCache()
    ) as engine:
        with inject_faults(
            "worker-crash:p=0.3,after=5;cache-store:p=0.3;seed=20020601"
        ) as injector:
            outcomes = engine.decide_many_outcomes(batch)
        fired = dict(injector.fired())
        unknown = sum(1 for o in outcomes if o.unknown)
        wrong = sum(
            1
            for o, expected in zip(outcomes, plain_verdicts)
            if o.ok and o.verdict != expected
        )
        faulted_stats = engine.stats
    if wrong:
        raise AssertionError(
            f"faulted pass returned {wrong} wrong verdicts (never acceptable)"
        )

    overhead = resilient_s / plain_s - 1.0 if plain_s else 0.0
    report = {
        "benchmark": "resilient engine overhead (random-schema workload)",
        "baseline": "ParallelDecisionEngine.decide_many, 4 workers, "
        "fresh DecisionCache per run",
        "resilient": "ResilientDecisionEngine (retry ladder + breaker), "
        "fault-free, same workload",
        "requests": len(batch),
        "repeats": repeats,
        "timing": "best of repeats after one warm-up run each",
        "plain_s": plain_s,
        "resilient_s": resilient_s,
        "overhead_pct": overhead * 100.0,
        "verdicts_identical": True,
        "faulted_pass": {
            "spec": "worker-crash:p=0.3,after=5;cache-store:p=0.3;seed=20020601",
            "fired": fired,
            "unknown_verdicts": unknown,
            "wrong_verdicts": wrong,
            "retries": faulted_stats.retries,
            "degraded_sequential": faulted_stats.degraded_sequential,
        },
    }
    output_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-run the implication benchmark cached vs uncached and "
        "write BENCH_1.json",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_1.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--emit-metrics",
        metavar="PATH",
        default=None,
        help="also write a JSON snapshot of the process-wide metrics "
        "registry after the smoke runs",
    )
    args = parser.parse_args(argv)
    if not args.quick:
        parser.error("only --quick mode is supported when run directly")
    report = _quick_smoke(Path(args.output))
    total = report["total"]
    print(
        f"implication benchmark: before {total['before_s'] * 1000:.1f} ms, "
        f"after {total['after_s'] * 1000:.1f} ms "
        f"({total['speedup']:.1f}x), report -> {args.output}"
    )
    if total["after_s"] > 1.2 * total["before_s"]:
        print("FAIL: cached implication benchmark regressed by more than 20%")
        return 1
    print("OK: no regression")

    bench2_path = Path(args.output).with_name("BENCH_2.json")
    parallel = _parallel_smoke(bench2_path)
    print(
        f"parallel batch benchmark: sequential "
        f"{parallel['sequential_s'] * 1000:.1f} ms, batch (4 workers) "
        f"{parallel['parallel_s'] * 1000:.1f} ms "
        f"({parallel['speedup']:.1f}x), report -> {bench2_path}"
    )
    if parallel["speedup"] < 2.0:
        print("FAIL: parallel batch speedup below 2x")
        return 1
    print("OK: parallel batch at or above 2x with identical verdicts")

    bench4_path = Path(args.output).with_name("BENCH_4.json")
    resilience = _resilience_smoke(bench4_path)
    faulted = resilience["faulted_pass"]
    print(
        f"resilience benchmark: plain {resilience['plain_s'] * 1000:.1f} ms, "
        f"resilient {resilience['resilient_s'] * 1000:.1f} ms "
        f"({resilience['overhead_pct']:+.1f}%), faulted pass "
        f"{faulted['unknown_verdicts']} UNKNOWN / 0 wrong, "
        f"report -> {bench4_path}"
    )
    if resilience["overhead_pct"] > 5.0:
        print("FAIL: fault-free resilient overhead above 5%")
        return 1
    print("OK: resilient overhead within 5% with identical verdicts")
    hot = sorted(
        parallel["trace_summary"].items(),
        key=lambda kv: kv[1]["total_ms"],
        reverse=True,
    )[:5]
    for name, row in hot:
        print(
            f"trace: {name:<28} count={row['count']:<6.0f}"
            f" total={row['total_ms']:.1f} ms max={row['max_ms']:.3f} ms"
        )
    if args.emit_metrics:
        from repro.core.metrics import emit_metrics

        emit_metrics(args.emit_metrics)
        print(f"metrics snapshot -> {args.emit_metrics}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
