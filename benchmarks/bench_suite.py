"""E11 - Section 6's conjecture: "in most practical situations DIMSAT
should yield execution times of the order of a few seconds".

Runs full satisfiability audits and mixed implication workloads over the
realistic schema suite and asserts the wall-clock conjecture (on a modern
machine the whole suite lands far below one second, which comfortably
confirms the 2002 claim).
"""

from __future__ import annotations

import time

import pytest
from conftest import print_table

from repro.core import is_implied, satisfiability_report
from repro.generators.suite import suite_schemas
from repro.generators.workloads import implication_workload

SCHEMAS = suite_schemas()


@pytest.mark.parametrize("name", sorted(SCHEMAS))
def test_satisfiability_audit(benchmark, name):
    schema = SCHEMAS[name]
    report = benchmark(satisfiability_report, schema)
    assert all(report.values())


@pytest.mark.parametrize("name", sorted(SCHEMAS))
def test_implication_workload(benchmark, name):
    schema = SCHEMAS[name]
    queries = implication_workload(schema, n_queries=10, seed=1)

    def run():
        return [is_implied(schema, q) for q in queries]

    verdicts = benchmark(run)
    assert any(verdicts)


def test_suite_conjecture_table():
    rows = []
    total = 0.0
    for name, schema in sorted(SCHEMAS.items()):
        start = time.perf_counter()
        report = satisfiability_report(schema)
        queries = implication_workload(schema, n_queries=20, seed=2)
        implied = sum(1 for q in queries if is_implied(schema, q))
        elapsed = time.perf_counter() - start
        total += elapsed
        rows.append(
            (
                name,
                len(schema.hierarchy.categories),
                len(schema.constraints),
                sum(report.values()),
                f"{implied}/{len(queries)}",
                f"{elapsed * 1000:.1f} ms",
            )
        )
    print_table(
        "E11: full audit + 20-query implication workload per schema",
        ["schema", "categories", "constraints", "satisfiable", "implied", "time"],
        rows,
    )
    # The paper's conjecture, with a 2026 machine's margin.
    assert total < 5.0
