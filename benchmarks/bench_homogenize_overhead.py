"""E13 - the cost of the null-padding alternative (Pedersen-Jensen).

Section 1.3: "null members may cause considerable waste of memory and
computational effort due to the increased sparsity of the cube views."
The series measures member/edge blow-up and the extra cells COUNT views
grow, at increasing instance sizes; the constraint-based approach needs
none of it (its data is the identity transformation).
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro.baselines import homogenize, is_null_member, padding_report
from repro.generators.location import location_instance
from repro.generators.workloads import replicated_instance


def generated(copies):
    # Disjoint replicas of the Figure 1 instance: shared upper members
    # with divergent descendants are genuinely unpaddable (a published
    # limitation this benchmark is not about), so the scaling series uses
    # structure-preserving replication instead.
    return replicated_instance(location_instance(), copies)


@pytest.mark.parametrize("copies", [2, 8, 16])
def test_homogenize_time(benchmark, copies):
    instance = generated(copies)
    padded = benchmark(homogenize, instance)
    assert padded.is_valid()


def test_paper_instance_report(loc_instance):
    report = padding_report(loc_instance)
    rows = [
        ("members before", report.original_members),
        ("members after", report.padded_members),
        ("null members", report.null_members),
        ("member blow-up", f"{report.member_blowup:.2f}x"),
        ("null fraction", f"{report.null_fraction:.0%}"),
        ("edges before", report.original_edges),
        ("edges after", report.padded_edges),
    ]
    print_table("E13: null padding on the Figure 1 instance", ["metric", "value"], rows)
    assert report.member_blowup > 1.2


def test_blowup_series():
    rows = []
    for copies in (2, 4, 8, 16):
        instance = generated(copies)
        report = padding_report(instance)
        rows.append(
            (
                copies,
                report.original_members,
                report.padded_members,
                f"{report.member_blowup:.2f}x",
                f"{report.null_fraction:.0%}",
            )
        )
    print_table(
        "E13: padding blow-up vs. instance size",
        ["copies", "members", "padded", "blow-up", "null fraction"],
        rows,
    )
    # The null count scales with the data, not with the schema: waste is
    # proportional to instance size (the paper's criticism).
    assert all(row[2] > row[1] for row in rows)


def test_view_sparsity():
    """COUNT views over padded dimensions grow null-only cells."""
    from repro.olap import COUNT, FactTable, cube_view

    instance = location_instance()
    padded = homogenize(instance)
    rows = [(m, {"n": 1.0}) for m in sorted(instance.base_members())]
    plain_view = cube_view(FactTable(instance, rows), "State", COUNT, "n")
    padded_view = cube_view(FactTable(padded, rows), "State", COUNT, "n")
    null_cells = sum(1 for m in padded_view.cells if is_null_member(m))
    print_table(
        "E13: State-level COUNT view cells",
        ["variant", "cells", "null cells"],
        [
            ("constraint-based (original)", len(plain_view), 0),
            ("null-padded", len(padded_view), null_cells),
        ],
    )
    assert len(padded_view) > len(plain_view)
    assert null_cells > 0
