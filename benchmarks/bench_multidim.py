"""E12b - multi-dimensional navigation (the cube extension).

Times direct multi-dimensional views vs. per-dimension guarded rollups on
a location x time cube, and reports the plan the navigator chooses for
safe and unsafe level assignments.
"""

from __future__ import annotations

import random

import pytest
from conftest import print_table

from repro.generators.location import location_instance, location_schema
from repro.generators.suite import time_instance, time_schema
from repro.olap import SUM
from repro.olap.multidim import Cube, MultiNavigator, multi_views_equal


def build_cube(n_facts: int = 2000) -> Cube:
    location = location_instance()
    time = time_instance()
    cube = Cube(
        {"location": location, "time": time},
        {"location": location_schema(), "time": time_schema()},
    )
    rng = random.Random(5)
    stores = sorted(location.base_members())
    days = sorted(time.base_members())
    rows = [
        (
            {"location": rng.choice(stores), "time": rng.choice(days)},
            {"sales": round(rng.uniform(1, 50), 2)},
        )
        for _ in range(n_facts)
    ]
    return cube.load(rows)


@pytest.fixture(scope="module")
def cube():
    return build_cube()


def test_direct_view(benchmark, cube):
    view = benchmark(
        cube.view, {"location": "Country", "time": "Year"}, SUM, "sales"
    )
    assert view.cells


def test_guarded_rollup(benchmark, cube):
    fine = cube.view({"location": "City", "time": "Month"}, SUM, "sales")

    def rolled():
        return cube.rollup(fine, {"location": "Country", "time": "Year"})

    view = benchmark(rolled)
    direct = cube.view({"location": "Country", "time": "Year"}, SUM, "sales")
    assert multi_views_equal(view, direct)


def test_plan_table(cube):
    navigator = MultiNavigator(cube)
    navigator.materialize({"location": "City", "time": "Month"}, SUM, "sales")
    navigator.materialize({"location": "Country", "time": "Week"}, SUM, "sales")

    rows = []
    for levels in (
        {"location": "Country", "time": "Year"},
        {"location": "SaleRegion", "time": "Quarter"},
        {"location": "Country", "time": "Week"},
        {"location": "State", "time": "Year"},
    ):
        view, plan = navigator.answer(levels, SUM, "sales")
        direct = cube.view(levels, SUM, "sales")
        assert multi_views_equal(view, direct), levels
        rows.append(
            (
                f"{levels['location']} x {levels['time']}",
                plan,
                len(view),
            )
        )
    print_table(
        "E12b: multi-dimensional navigation plans (location x time cube)",
        ["requested levels", "plan", "cells"],
        rows,
    )
    kinds = {row[1] for row in rows}
    # The safe requests roll up from the fine view; Country x Year must
    # NOT come from the Week view (boundary weeks would drop).
    assert "rolled-up" in kinds
    assert rows[0][1] == "rolled-up"
