"""E18 - schema normalization as a DIMSAT accelerator.

Declaring *implied* into constraints explicitly lets EXPAND force those
edges instead of enumerating subsets around them.  The series measures
the exhaustive-search effort on the suite schemas before and after
``strengthen_with_intos`` (a one-time, semantics-preserving rewrite).
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro.core import dimsat
from repro.core.normalize import (
    minimize,
    schemas_equivalent,
    strengthen_with_intos,
)
from repro.generators.random_schema import make_unsatisfiable
from repro.generators.suite import suite_schemas

SCHEMAS = suite_schemas()


@pytest.mark.parametrize("name", sorted(SCHEMAS))
def test_strengthen_time(benchmark, name):
    schema = SCHEMAS[name]
    strengthened, _added = benchmark(strengthen_with_intos, schema)
    assert schemas_equivalent(schema, strengthened)


def test_minimize_time(benchmark, loc_schema):
    doubled = loc_schema.with_constraints(["Store -> City", "Store.SaleRegion"])
    minimized, dropped = benchmark(minimize, doubled)
    assert len(dropped) == 2


def obfuscated_location():
    """locationSch with the into constraint (a) written in the
    semantically equivalent composed form ``Store.City`` - the shape a
    user produces naturally, which EXPAND's syntactic into detection
    cannot see."""
    from repro.generators.location import LOCATION_CONSTRAINTS, location_hierarchy
    from repro.core import DimensionSchema

    constraints = dict(LOCATION_CONSTRAINTS)
    constraints["a"] = "Store.City"
    return DimensionSchema(location_hierarchy(), constraints.values())


def test_strengthening_effect_table():
    rows = []
    cases = dict(sorted(SCHEMAS.items()))
    cases["retail (composed intos)"] = obfuscated_location()
    for name, schema in cases.items():
        strengthened, added = strengthen_with_intos(schema)
        bottom = sorted(schema.hierarchy.bottom_categories())[0]
        plain = dimsat(
            make_unsatisfiable(schema, bottom), bottom
        ).stats.expand_calls
        strong = dimsat(
            make_unsatisfiable(strengthened, bottom), bottom
        ).stats.expand_calls
        rows.append(
            (
                name,
                len(added),
                plain,
                strong,
                f"{plain / max(1, strong):.2f}x",
            )
        )
    print_table(
        "E18: exhaustive EXPAND calls before/after declaring implied intos",
        ["schema", "intos added", "before", "after", "speedup"],
        rows,
    )
    for row in rows:
        assert row[3] <= row[2]
    # On sole-parent edges the declaration is a no-op (EXPAND had no
    # choice anyway); the win appears when an into on a *multi-parent*
    # category was written in an equivalent non-syntactic form.
    by_name = {row[0]: row for row in rows}
    assert by_name["retail (composed intos)"][2] > by_name["retail (composed intos)"][3]
