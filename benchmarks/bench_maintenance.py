"""E17 - incremental view maintenance.

Distributive aggregates make appended facts mergeable in O(|delta|); this
series measures the delta-patch vs. full-rebuild gap as the accumulated
history grows (rebuild cost grows with history, patch cost stays flat).
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro.generators.location import location_schema
from repro.generators.workloads import instance_from_frozen, random_fact_table
from repro.olap import SUM, FactTable, cube_view, views_equal
from repro.olap.maintenance import apply_delta


def setup(history_rows: int, delta_rows: int = 200):
    schema = location_schema()
    instance = instance_from_frozen(schema, "Store", copies=20, fan_out=4)
    history = random_fact_table(instance, history_rows, seed=1)
    delta = random_fact_table(instance, delta_rows, seed=2)
    return instance, history, delta


@pytest.mark.parametrize("history", [2_000, 10_000])
def test_full_rebuild(benchmark, history):
    instance, base, delta = setup(history)
    merged = FactTable(
        instance,
        [(f.member, f.measures) for f in base]
        + [(f.member, f.measures) for f in delta],
    )
    view = benchmark(cube_view, merged, "Country", SUM, "amount")
    assert view.cells


@pytest.mark.parametrize("history", [2_000, 10_000])
def test_delta_patch(benchmark, history):
    instance, base, delta = setup(history)
    stale = cube_view(base, "Country", SUM, "amount")
    patched = benchmark(apply_delta, instance, stale, delta)
    merged = FactTable(
        instance,
        [(f.member, f.measures) for f in base]
        + [(f.member, f.measures) for f in delta],
    )
    assert views_equal(patched, cube_view(merged, "Country", SUM, "amount"))


def test_flat_cost_table():
    rows = []
    for history in (1_000, 4_000, 16_000):
        instance, base, delta = setup(history)
        stale = cube_view(base, "Country", SUM, "amount")
        patched = apply_delta(instance, stale, delta)
        rebuild_work = history + len(delta)
        patch_work = patched.rows_scanned - stale.rows_scanned
        rows.append(
            (history, len(delta), rebuild_work, patch_work,
             f"{rebuild_work / patch_work:.0f}x")
        )
    print_table(
        "E17: rows touched, rebuild vs delta patch",
        ["history", "delta", "rebuild rows", "patch rows", "advantage"],
        rows,
    )
    # The patch touches only the delta, whatever the history size.
    patches = {row[3] for row in rows}
    assert len(patches) == 1
