"""E10 - Section 5's conjecture: into-constraint pruning "should have a
major impact in practice, since we will frequently have heterogeneity
arising as an exception, having most of the edges of the schema
associated with into constraints."

The series sweeps the fraction of primary edges declared *into* and
compares EXPAND-call counts with each heuristic disabled; the effect must
grow with the into fraction.
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro.core import DimsatOptions, dimsat
from repro.generators.location import location_schema
from repro.generators.random_schema import (
    RandomSchemaConfig,
    bottom_category,
    make_unsatisfiable,
    random_schema,
)

FULL = DimsatOptions()
NO_INTO = DimsatOptions(into_pruning=False)
NO_STRUCT = DimsatOptions(shortcut_pruning=False, cycle_pruning=False)
NONE = DimsatOptions(
    into_pruning=False, shortcut_pruning=False, cycle_pruning=False
)


def schema_with_into(fraction: float, n: int = 10, seed: int = 7):
    return random_schema(
        RandomSchemaConfig(
            n_categories=n, n_layers=4, into_fraction=fraction, seed=seed
        )
    )


@pytest.mark.parametrize("fraction", [0.0, 0.5, 1.0])
def test_dimsat_full_pruning(benchmark, fraction):
    schema = schema_with_into(fraction)
    bottom = bottom_category(schema)
    benchmark(dimsat, schema, bottom, FULL)


@pytest.mark.parametrize("fraction", [0.0, 0.5, 1.0])
def test_dimsat_no_into_pruning(benchmark, fraction):
    schema = schema_with_into(fraction)
    bottom = bottom_category(schema)
    benchmark(dimsat, schema, bottom, NO_INTO)


def test_location_ablation(benchmark, loc_schema):
    benchmark(dimsat, loc_schema, "Store", NONE)


def test_ablation_table():
    """The experiment's summary: EXPAND calls under each configuration,
    in the exhaustive (unsatisfiable) case where pruning matters most."""
    rows = []
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        schema = schema_with_into(fraction)
        bottom = bottom_category(schema)
        broken = make_unsatisfiable(schema, bottom)
        counts = {}
        for label, options in [
            ("full", FULL),
            ("no-into", NO_INTO),
            ("no-structural", NO_STRUCT),
            ("none", NONE),
        ]:
            counts[label] = dimsat(broken, bottom, options).stats.expand_calls
        rows.append(
            (
                fraction,
                counts["full"],
                counts["no-into"],
                counts["no-structural"],
                counts["none"],
                round(counts["no-into"] / max(1, counts["full"]), 2),
            )
        )
    print_table(
        "E10: EXPAND calls by pruning configuration (forced-unsat case)",
        ["into fraction", "full", "no-into", "no-structural", "none", "into speedup"],
        rows,
    )
    # The pruned search never does more work, and the into effect grows
    # with the fraction of into edges (the paper's conjecture).
    for row in rows:
        assert row[1] <= row[2]
        assert row[1] <= row[4]
    assert rows[-1][5] >= rows[0][5]


def test_paper_example_ablation_counts(loc_schema):
    rows = []
    for label, options in [
        ("full", FULL),
        ("no-into", NO_INTO),
        ("no-structural", NO_STRUCT),
        ("none", NONE),
    ]:
        stats = dimsat(loc_schema, "Store", options).stats
        rows.append((label, stats.expand_calls, stats.check_calls))
    print_table(
        "E10: locationSch satisfiability under ablation",
        ["configuration", "expand calls", "check calls"],
        rows,
    )
    assert rows[0][1] <= rows[-1][1]
