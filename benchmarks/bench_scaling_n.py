"""E9 - Proposition 4, the N axis: DIMSAT vs. brute force as the category
count grows.

The paper bounds DIMSAT by ``O(2^(N^2 + N log N_K) N^3 N_SIGMA)`` but
conjectures practical schemas stay cheap because into constraints pin most
edges.  The series here shows the shape: the brute-force baseline explodes
with the raw ``2^|E|`` subhierarchy space while DIMSAT's pruned search
grows slowly; the crossover is immediate.
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro.baselines import BruteForceStats, brute_force_satisfiable
from repro.core import dimsat
from repro.generators.random_schema import (
    RandomSchemaConfig,
    bottom_category,
    make_unsatisfiable,
    random_schema,
)


def schema_of_size(n, seed_offset=0):
    return random_schema(
        RandomSchemaConfig(n_categories=n, n_layers=4, seed=n + seed_offset)
    )


@pytest.mark.parametrize("n", [6, 10, 14, 18])
def test_dimsat_satisfiable_scaling(benchmark, n):
    schema = schema_of_size(n)
    bottom = bottom_category(schema)
    result = benchmark(dimsat, schema, bottom)
    assert result.satisfiable


@pytest.mark.parametrize("n", [6, 10, 14])
def test_dimsat_unsatisfiable_scaling(benchmark, n):
    """The exhaustive (worst) case: prove a category empty."""
    schema = schema_of_size(n)
    bottom = bottom_category(schema)
    broken = make_unsatisfiable(schema, bottom)
    result = benchmark(dimsat, broken, bottom)
    assert not result.satisfiable


@pytest.mark.parametrize("n", [4, 6, 8])
def test_bruteforce_scaling(benchmark, n):
    schema = schema_of_size(n)
    bottom = bottom_category(schema)
    assert benchmark(brute_force_satisfiable, schema, bottom)


def test_work_comparison_table():
    """The experiment's summary series: exhaustive work across N.

    Uses the forced-unsatisfiable case so both searches must visit their
    whole space - the fair comparison, and the cost profile of every
    positive implication answer.
    """
    rows = []
    for n in (4, 6, 8):
        schema = schema_of_size(n)
        bottom = bottom_category(schema)
        broken = make_unsatisfiable(schema, bottom)
        result = dimsat(broken, bottom)
        brute_stats = BruteForceStats()
        assert not brute_force_satisfiable(broken, bottom, brute_stats)
        edge_space = 2 ** sum(
            1
            for child, _parent in broken.hierarchy.edges
            if broken.hierarchy.reaches(bottom, child)
        )
        rows.append(
            (
                n,
                result.stats.expand_calls,
                brute_stats.valid_subhierarchies,
                brute_stats.candidates_tested,
                edge_space,
            )
        )
    print_table(
        "E9: exhaustive search work, DIMSAT vs brute force (unsat case)",
        ["N", "dimsat expands", "bf subhierarchies", "bf candidates", "raw 2^|E|"],
        rows,
    )
    # Shape: DIMSAT's pruned walk stays below the brute-force candidate
    # space at every size, and the advantage grows with N.
    gaps = [row[4] / max(1, row[1]) for row in rows]
    assert all(row[1] <= row[4] for row in rows)
    assert gaps[-1] >= gaps[0]
