"""Order predicates: structure that depends on numeric attributes.

Run:  python examples/price_bands.py

The paper's Section 6 sketches the extension: "if the value of the price
of a product is less than a given amount, the product rolls up to some
particular path in the hierarchy schema."  This example models a ticket
dimension where the price band decides the rollup route, and shows the
reasoner answering interval questions exactly.
"""

from repro import (
    DimensionSchema,
    HierarchySchema,
    dimsat,
    enumerate_frozen_dimensions,
    implies,
    is_summarizable_in_schema,
)
from repro.core.normalize import strengthen_with_intos


def main() -> None:
    # Tickets under 50 are self-service; 50-500 go through an agent desk;
    # anything dearer is handled by the concierge team.
    g = HierarchySchema(
        ["Ticket", "SelfService", "AgentDesk", "Concierge", "Channel"],
        [
            ("Ticket", "SelfService"),
            ("Ticket", "AgentDesk"),
            ("Ticket", "Concierge"),
            ("SelfService", "Channel"),
            ("AgentDesk", "Channel"),
            ("Concierge", "Channel"),
            ("Channel", "All"),
        ],
    )
    ds = DimensionSchema(
        g,
        [
            "one(Ticket -> SelfService, Ticket -> AgentDesk, Ticket -> Concierge)",
            "Ticket < 50 iff Ticket -> SelfService",
            "Ticket >= 500 iff Ticket -> Concierge",
            "SelfService -> Channel",
            "AgentDesk -> Channel",
            "Concierge -> Channel",
        ],
    )

    print("=== the shapes the price bands admit ===")
    for frozen in enumerate_frozen_dimensions(ds, "Ticket"):
        price = frozen.name_of("Ticket")
        route = sorted(frozen.subhierarchy.parents_in("Ticket"))[0]
        print(f"  price {price!r:8} -> {route}")

    print("\n=== interval reasoning ===")
    questions = [
        "Ticket -> AgentDesk implies Ticket >= 50",
        "Ticket -> AgentDesk implies Ticket < 500",
        "Ticket < 20 implies Ticket -> SelfService",
        "Ticket = 500 implies Ticket -> Concierge",
        "Ticket < 500 implies Ticket -> AgentDesk",   # false: could be < 50
    ]
    for text in questions:
        print(f"  {text!r:55} -> {implies(ds, text).implied}")

    print("\n=== summarizability across the bands ===")
    full = ["SelfService", "AgentDesk", "Concierge"]
    print(f"  Channel from all three desks: "
          f"{is_summarizable_in_schema(ds, 'Channel', full)}")
    print(f"  Channel from AgentDesk alone: "
          f"{is_summarizable_in_schema(ds, 'Channel', ['AgentDesk'])}")

    print("\n=== normalization: making implied intos explicit ===")
    strengthened, added = strengthen_with_intos(ds)
    print(f"  implied into edges declared: {added}")
    before = dimsat(ds.with_constraints(['not Ticket.Channel']), "Ticket")
    after = dimsat(
        strengthened.with_constraints(["not Ticket.Channel"]), "Ticket"
    )
    print(
        f"  exhaustive refutation: {before.stats.expand_calls} -> "
        f"{after.stats.expand_calls} EXPAND calls"
    )


if __name__ == "__main__":
    main()
