"""Quickstart: model a heterogeneous dimension and reason about it.

Run:  python examples/quickstart.py

Builds a small product dimension where some items are branded and some
are generic, declares the dimension constraints that capture the rule,
and asks the three questions the library answers:

1. is a category satisfiable? (can any data ever live there?)
2. is a constraint implied?  (does every legal instance obey it?)
3. is a category summarizable from others? (may the OLAP engine reuse a
   precomputed aggregate?)
"""

from repro import (
    DimensionSchema,
    HierarchySchema,
    dimsat,
    implies,
    is_summarizable_in_schema,
)


def main() -> None:
    # 1. The hierarchy schema: a DAG of categories topped by "All".
    #    Items roll up either through Brand (branded goods) or through
    #    GenericClass (store brands) - never both.
    hierarchy = HierarchySchema(
        categories=["Item", "Brand", "GenericClass", "Supplier"],
        edges=[
            ("Item", "Brand"),
            ("Item", "GenericClass"),
            ("Brand", "Supplier"),
            ("GenericClass", "Supplier"),
            ("Supplier", "All"),
        ],
    )

    # 2. Dimension constraints, in the textual syntax:
    #    - every item has exactly one of the two parents;
    #    - items of the house brand "Acme" are always generic.
    schema = DimensionSchema(
        hierarchy,
        [
            "one(Item -> Brand, Item -> GenericClass)",
            "Item.Supplier = 'Acme' implies Item -> GenericClass",
        ],
    )

    # 3. Category satisfiability: every category can hold data, and the
    #    witness frozen dimension shows one minimal way it can look.
    for category in sorted(hierarchy.categories):
        result = dimsat(schema, category)
        witness = result.witness.describe() if result.witness else "-"
        print(f"satisfiable({category}) = {result.satisfiable}   {witness}")

    # 4. Implication: every item reaches Supplier (through one branch or
    #    the other), even though neither branch is mandatory by itself.
    print()
    for text in [
        "Item.Supplier",
        "Item -> Brand",
        "Item.Supplier = 'Acme' implies not Item -> Brand",
    ]:
        print(f"implied: {text!r:60} -> {implies(schema, text).implied}")

    # 5. Summarizability: supplier totals can be derived from brand totals
    #    plus generic-class totals (each item passes through exactly one),
    #    but not from brand totals alone.
    print()
    for sources in (["Brand"], ["Brand", "GenericClass"]):
        verdict = is_summarizable_in_schema(schema, "Supplier", sources)
        print(f"Supplier summarizable from {sources}: {verdict}")


if __name__ == "__main__":
    main()
