"""Comparing the three ways to live with heterogeneity.

Run:  python examples/heterogeneity_audit.py

Section 1.3 of the paper surveys the alternatives to dimension
constraints.  This example runs all three on the same data (the Figure 1
retail dimension) and prints what each one costs:

* **dimension constraints** (this library): data untouched, per-query
  summarizability reasoning;
* **null padding** (Pedersen-Jensen): data inflated with placeholder
  members;
* **DNF flattening** (Lehner et al.): aggregation levels amputated.
"""

from repro.baselines import (
    dnf_loss_report,
    infer_split_constraints,
    padding_report,
)
from repro.core import summarizability_matrix
from repro.generators.location import location_instance


def main() -> None:
    instance = location_instance()
    print(f"instance: {len(instance)} members")

    print("\n=== what the heterogeneity looks like ===")
    for category, constraint in infer_split_constraints(instance).items():
        if len(constraint.allowed) > 1:
            shapes = sorted(
                "{" + ",".join(sorted(s - {"All"})) + "}"
                for s in constraint.allowed
            )
            print(f"  {category}: members split over {shapes}")

    print("\n=== approach 1: dimension constraints (keep the data) ===")
    rows = summarizability_matrix(instance)
    safe = [(s, t) for s, t, ok in rows if ok]
    unsafe = [(s, t) for s, t, ok in rows if not ok]
    print(f"  single-source summarizable pairs: {len(safe)}")
    print(f"  pairs needing a base scan:        {len(unsafe)}")
    for source, target in unsafe:
        print(f"    cannot derive {target} from {source}")

    print("\n=== approach 2: null padding (repair the data) ===")
    report = padding_report(instance)
    print(
        f"  members {report.original_members} -> {report.padded_members} "
        f"({report.member_blowup:.2f}x, {report.null_fraction:.0%} nulls), "
        f"edges {report.original_edges} -> {report.padded_edges}"
    )

    print("\n=== approach 3: DNF flattening (shrink the schema) ===")
    loss = dnf_loss_report(instance)
    print(f"  categories moved out of the hierarchy: {sorted(loss.moved_out)}")
    print(
        f"  summarizable pairs {len(loss.original_pairs)} -> "
        f"{len(loss.surviving_pairs)} ({loss.loss_fraction:.0%} lost)"
    )

    print(
        "\nSummary: padding trades memory for uniformity, flattening trades\n"
        "aggregation power for simplicity; dimension constraints keep both\n"
        "and pay with (coNP) reasoning - which DIMSAT makes practical."
    )


if __name__ == "__main__":
    main()
