"""A two-dimensional star cube: location x time.

Run:  python examples/star_cube.py

The paper's introduction motivates dimensions with an items x stores x
time cube; this example crosses the retail location dimension with the
calendar dimension (whose ISO boundary weeks are heterogeneous) and shows
the multi-dimensional navigator rolling up safely - one dimension at a
time, each step proven by Theorem 1.
"""

import random

from repro.generators.location import location_instance, location_schema
from repro.generators.suite import time_instance, time_schema
from repro.olap import SUM
from repro.olap.multidim import Cube, MultiNavigator, multi_views_equal


def main() -> None:
    cube = Cube(
        {"location": location_instance(), "time": time_instance()},
        {"location": location_schema(), "time": time_schema()},
    )
    rng = random.Random(11)
    stores = sorted(cube.dimensions["location"].base_members())
    days = sorted(cube.dimensions["time"].base_members())
    cube.load(
        (
            {"location": rng.choice(stores), "time": rng.choice(days)},
            {"sales": round(rng.uniform(5, 50), 2)},
        )
        for _ in range(1_000)
    )
    print(f"cube loaded: {len(cube)} facts over {len(cube.dimensions)} dimensions")

    navigator = MultiNavigator(cube)
    navigator.materialize({"location": "City", "time": "Month"}, SUM, "sales")
    print("materialized: City x Month")

    print("\n-- queries --")
    for levels in (
        {"location": "Country", "time": "Year"},
        {"location": "SaleRegion", "time": "Quarter"},
        {"location": "State", "time": "Year"},
    ):
        view, plan = navigator.answer(levels, SUM, "sales")
        direct = cube.view(levels, SUM, "sales")
        ok = "cells verified" if multi_views_equal(view, direct) else "MISMATCH"
        print(
            f"  {levels['location']:>10} x {levels['time']:<8} "
            f"plan={plan:<12} cells={len(view):<3} {ok}"
        )

    print("\n-- why SaleRegion x Quarter scanned the base table --")
    print(
        "  rolling City -> SaleRegion is unsafe: the schema admits stores\n"
        "  that reach their sale region directly (Store -> SaleRegion),\n"
        "  bypassing City, so a City-level view may miss their sales."
    )

    print("\n-- the time trap, explicitly --")
    week_view = cube.view({"location": "Country", "time": "Week"}, SUM, "sales")
    safe = cube.rollup_is_safe(
        {"location": "Country", "time": "Week"},
        {"location": "Country", "time": "Year"},
    )
    boundary = [key for key in week_view.cells if key[1] == "2021-W52"]
    print(
        f"  Week -> Year rollup allowed? {safe}   "
        f"(boundary-week cells that would vanish: {len(boundary)})"
    )


if __name__ == "__main__":
    main()
