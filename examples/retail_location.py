"""The paper's running example, end to end.

Run:  python examples/retail_location.py [output-dir]

Reconstructs every artifact of Hurtado & Mendelzon's walkthrough:

* Figure 1 - the ``location`` dimension (hierarchy + members), validated
  against conditions (C1)-(C7);
* Figure 3 - the ``locationSch`` dimension schema;
* Figure 4 - the four frozen dimensions with root Store;
* Figure 5 - the circle-operator reduction over the Example 12
  subhierarchy;
* Example 10 - the summarizability verdicts;
* Example 11 - the schema audit after a hostile constraint.

If an output directory is given, Graphviz ``.dot`` renderings of the
figures are written there.
"""

import sys
from pathlib import Path

from repro.constraints import unparse
from repro.core import (
    circle,
    enumerate_frozen_dimensions,
    is_summarizable_in_instance,
    unsatisfiable_categories,
)
from repro.generators.location import (
    LOCATION_CONSTRAINTS,
    figure5_subhierarchy,
    location_instance,
    location_schema,
)
from repro.io import frozen_set_to_dot, hierarchy_to_dot, instance_to_dot


def main() -> None:
    schema = location_schema()
    instance = location_instance()

    print("=== Figure 1: the location dimension ===")
    print(f"categories: {sorted(schema.hierarchy.categories)}")
    print(f"members: {len(instance)}, violations: {instance.violations()}")
    for store in sorted(instance.members('Store')):
        chain = []
        member = store
        while True:
            parents = sorted(instance.parents_of(member), key=str)
            if not parents:
                break
            member = parents[0]
            chain.append(str(member))
        print(f"  {store}: {' -> '.join(chain)}")

    print("\n=== Figure 3: locationSch ===")
    for label, text in LOCATION_CONSTRAINTS.items():
        print(f"  ({label}) {text}")

    print("\n=== Figure 4: frozen dimensions with root Store ===")
    frozen = enumerate_frozen_dimensions(schema, "Store")
    for index, frozen_dim in enumerate(frozen, start=1):
        print(f"  f{index}: {frozen_dim.describe()}")

    print("\n=== Figure 5: the circle operator over Example 12's g ===")
    g = figure5_subhierarchy()
    for label, (before, after) in zip(
        LOCATION_CONSTRAINTS, zip(schema.constraints, circle(schema.constraints, g))
    ):
        print(f"  ({label}) {unparse(before)}")
        print(f"      o g: {unparse(after)}")

    print("\n=== Example 10: summarizability in the instance ===")
    for target, sources in [
        ("Country", ["City"]),
        ("Country", ["State", "Province"]),
        ("Country", ["SaleRegion"]),
    ]:
        verdict = is_summarizable_in_instance(instance, target, sources)
        print(f"  {target} from {sources}: {verdict}")

    print("\n=== Example 11: the audit after 'not SaleRegion -> Country' ===")
    hostile = schema.with_constraints(["not SaleRegion -> Country"])
    print(f"  unsatisfiable categories: {unsatisfiable_categories(hostile)}")

    if len(sys.argv) > 1:
        out = Path(sys.argv[1])
        out.mkdir(parents=True, exist_ok=True)
        (out / "figure1a_hierarchy.dot").write_text(
            hierarchy_to_dot(schema.hierarchy)
        )
        (out / "figure1b_instance.dot").write_text(instance_to_dot(instance))
        (out / "figure4_frozen.dot").write_text(frozen_set_to_dot(frozen))
        print(f"\nwrote Graphviz files to {out}/ (render with: dot -Tpng)")


if __name__ == "__main__":
    main()
