"""Aggregate navigation: reusing precomputed views safely.

Run:  python examples/aggregate_navigation.py

Scales the paper's retail dimension up, materializes a few aggregate
views, and shows the navigator choosing plans:

* a proven-correct rewriting when summarizability holds (cheap);
* a base-table scan when it does not (correct but expensive);
* what would go wrong if the unsafe rewriting were used anyway.
"""

from repro.generators.location import location_schema
from repro.generators.workloads import instance_from_frozen, random_fact_table
from repro.olap import (
    SUM,
    AggregateNavigator,
    cube_view,
    recombine,
    views_equal,
)


def main() -> None:
    schema = location_schema()
    instance = instance_from_frozen(schema, "Store", copies=25, fan_out=4)
    facts = random_fact_table(instance, n_facts=5_000, seed=3)
    print(
        f"dimension: {len(instance)} members, fact table: {len(facts)} rows"
    )

    navigator = AggregateNavigator(facts, schema=schema)
    for category in ("City", "State", "Province"):
        view = navigator.materialize(category, SUM, "amount")
        print(f"materialized {category}: {len(view)} cells")

    print("\n-- querying Country totals --")
    view, plan = navigator.answer("Country", SUM, "amount")
    print(f"plan: {plan.kind} from {plan.sources}, rows read: {plan.cost}")
    direct = cube_view(facts, "Country", SUM, "amount")
    print(f"matches direct computation: {views_equal(view, direct)}")
    print(f"base scan would read {direct.rows_scanned} rows "
          f"({direct.rows_scanned / max(1, plan.cost):.0f}x more)")

    print("\n-- querying SaleRegion totals --")
    view, plan = navigator.answer("SaleRegion", SUM, "amount")
    print(f"plan: {plan.kind} from {plan.sources}, rows read: {plan.cost}")

    print("\n-- the unsafe rewriting the navigator refused --")
    state = navigator.materialize("State", SUM, "amount")
    province = navigator.materialize("Province", SUM, "amount")
    wrong = recombine(instance, "Country", [state, province], SUM)
    usa_direct = direct.cells.get("Country:USA", 0.0)
    usa_wrong = wrong.cells.get("Country:USA", 0.0)
    print(
        f"USA total   direct: {usa_direct:10.2f}   "
        f"from State+Province: {usa_wrong:10.2f}   "
        f"(missing: every Washington-style store)"
    )
    assert not views_equal(direct, wrong)

    print("\n-- navigator statistics --")
    stats = navigator.stats
    print(
        f"queries={stats.queries} rewrites={stats.rewrites} "
        f"base_scans={stats.base_scans} rows_read={stats.rows_read} "
        f"summarizability_checks={stats.summarizability_checks}"
    )


if __name__ == "__main__":
    main()
