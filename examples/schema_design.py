"""Design-stage reasoning: auditing a schema before any data exists.

Run:  python examples/schema_design.py

Section 6 of the paper: dimension constraints capture the semantic
information that should drive cube design.  This example plays a design
session on the personnel dimension:

1. enumerate the frozen dimensions - the structural "shapes" the data may
   take - to understand the heterogeneity;
2. detect a design error (a constraint that silently makes a category
   unsatisfiable) and clean the schema;
3. pick which aggregate views to materialize, using summarizable-set
   search as view-selection metadata.
"""

from repro.core import (
    enumerate_frozen_dimensions,
    prune_unsatisfiable,
    summarizable_sets,
    unsatisfiable_categories,
)
from repro.generators.suite import personnel_schema


def main() -> None:
    schema = personnel_schema()
    print("=== the personnel dimension ===")
    for node in schema.constraints:
        print(f"  {node}")

    print("\n=== 1. what shapes can the data take? ===")
    for frozen in enumerate_frozen_dimensions(schema, "Employee"):
        print(f"  {frozen.describe()}")

    print("\n=== 2. a design error and its audit ===")
    # A well-meaning rule: "teams always sit inside divisions directly".
    # But Team's only parent category is Department, so the rule empties
    # the category - and everything below it.
    broken = schema.with_constraints(["not Team -> Department"])
    dead = unsatisfiable_categories(broken)
    print(f"  after adding 'not Team -> Department': unsatisfiable = {dead}")
    cleaned, dropped = prune_unsatisfiable(broken)
    print(f"  pruned schema drops {dropped}; remaining categories: "
          f"{sorted(cleaned.hierarchy.categories)}")

    print("\n=== 3. view selection metadata ===")
    for target in ("Division", "Department"):
        safe = summarizable_sets(schema, target, max_size=2)
        rendered = [set(sorted(s)) for s in safe]
        print(f"  {target} derivable from any of: {rendered}")
    print(
        "\n  (Team alone is NOT safe for Division: consultants bypass it.\n"
        "   A system materializing only the Team view could never answer\n"
        "   division totals correctly - the constraint reasoning catches\n"
        "   this before a single row is loaded.)"
    )


if __name__ == "__main__":
    main()
