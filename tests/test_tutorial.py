"""Executable mirror of docs/TUTORIAL.md - every claim the tutorial makes
is asserted here, so the documentation cannot rot silently."""

from __future__ import annotations

import pytest

from repro import (
    DimensionSchema,
    HierarchySchema,
    InstanceBuilder,
    dimsat,
    enumerate_frozen_dimensions,
    implies,
    is_summarizable_in_schema,
)
from repro.olap import OlapEngine


@pytest.fixture(scope="module")
def g():
    return HierarchySchema(
        ["Shipment", "Center", "Gateway", "Region"],
        [
            ("Shipment", "Center"),
            ("Shipment", "Gateway"),
            ("Shipment", "Region"),
            ("Center", "Region"),
            ("Gateway", "Region"),
            ("Region", "All"),
        ],
    )


@pytest.fixture(scope="module")
def ds(g):
    return DimensionSchema(
        g,
        [
            "one(Shipment -> Center, Shipment -> Gateway, Shipment -> Region)",
            "Center -> Region",
            "Gateway -> Region",
            "Shipment -> Region implies Shipment.Region = 'Metro'",
        ],
    )


@pytest.fixture()
def d(g):
    b = InstanceBuilder(g)
    b.member("metro", "Region", name="Metro").member("west", "Region")
    b.member("c1", "Center").link("c1", "west")
    b.member("g1", "Gateway").link("g1", "west")
    b.members("Shipment", "s1", "s2", "s3")
    b.link("s1", "c1").link("s2", "g1").link("s3", "metro")
    return b.freeze()


class TestSection4FrozenDimensions:
    def test_exactly_three_shapes(self, ds):
        frozen = enumerate_frozen_dimensions(ds, "Shipment")
        assert len(frozen) == 3

    def test_courier_shape_pins_metro(self, ds):
        frozen = enumerate_frozen_dimensions(ds, "Shipment")
        courier = [
            f
            for f in frozen
            if ("Shipment", "Region") in f.subhierarchy.edges
        ]
        assert len(courier) == 1
        assert courier[0].name_of("Region") == "Metro"


class TestSection5Questions:
    def test_satisfiability(self, ds):
        assert dimsat(ds, "Gateway").satisfiable

    def test_implications(self, ds):
        assert implies(ds, "Shipment.Region").implied
        assert not implies(ds, "Shipment -> Center").implied

    def test_summarizability_trap(self, ds):
        assert not is_summarizable_in_schema(ds, "Region", ["Center", "Gateway"])

    def test_counterexample_is_the_courier_shape(self, ds):
        result = implies(
            ds,
            "Shipment.Region implies "
            "one(Shipment.Center.Region, Shipment.Gateway.Region)",
        )
        assert not result.implied
        assert result.counterexample.name_of("Region") == "Metro"
        assert ("Shipment", "Region") in result.counterexample.subhierarchy.edges


class TestSection7Navigation:
    def test_navigator_refuses_the_lossy_rewrite(self, ds, d):
        engine = OlapEngine(
            ds,
            d,
            [("s1", {"kg": 12.0}), ("s2", {"kg": 30.0}), ("s3", {"kg": 2.0})],
        )
        assert engine.check_integrity() == []
        engine.materialize("Center", "SUM", "kg")
        engine.materialize("Gateway", "SUM", "kg")
        view, plan = engine.query("Region", "SUM", "kg")
        assert plan.kind == "base-scan"
        assert view.cells == {"west": 42.0, "metro": 2.0}

    def test_shipment_view_enables_rewrite(self, ds, d):
        engine = OlapEngine(
            ds,
            d,
            [("s1", {"kg": 12.0}), ("s2", {"kg": 30.0}), ("s3", {"kg": 2.0})],
        )
        engine.materialize("Shipment", "SUM", "kg")
        _view, plan = engine.query("Region", "SUM", "kg")
        assert plan.kind == "rewritten"


class TestSection11Observability:
    def test_traced_decision_records_the_documented_spans(self, ds):
        from repro.core.trace import tracer, tracing

        with tracing():
            assert dimsat(ds, "Shipment").satisfiable
            document = tracer().snapshot()
        names = {span["name"] for span in document["spans"]}
        assert "dimsat.decide" in names
        assert "dimsat.check" in names
        assert set(document) >= {"spans", "events", "summary"}
        summary = document["summary"]["dimsat.decide"]
        assert set(summary) == {"count", "total_ms", "max_ms"}

    def test_tracer_is_off_by_default_and_restored(self):
        from repro.core.trace import tracer, tracing

        assert tracer().enabled is False
        with tracing():
            assert tracer().enabled is True
        assert tracer().enabled is False

    def test_metrics_registry_snapshot_shape(self, ds):
        from repro.core.metrics import metrics_registry

        before = metrics_registry().counter("dimsat.decisions").value
        dimsat(ds, "Gateway")
        snapshot = metrics_registry().snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"]["dimsat.decisions"] == before + 1


class TestSection9OrderPredicates:
    def test_weight_rule(self, g):
        ds2 = DimensionSchema(
            g,
            [
                "one(Shipment -> Center, Shipment -> Gateway, Shipment -> Region)",
                "Center -> Region",
                "Gateway -> Region",
                "Shipment >= 30 implies not Shipment -> Region",
            ],
        )
        assert implies(ds2, "Shipment -> Region implies Shipment < 30").implied
        assert not implies(ds2, "Shipment -> Center implies Shipment < 30").implied


class TestSection15Soak:
    def test_soak_claims(self):
        from repro.core.soak import SoakConfig, run_soak
        from repro.generators.adversarial import adversarial_corpus

        # "adversarial_corpus(seed=0) rebuilds the exact same schemas
        # every time"
        one = adversarial_corpus(seed=0)
        two = adversarial_corpus(seed=0)
        assert [c.schema.fingerprint() for c in one] == [
            c.schema.fingerprint() for c in two
        ]
        # A short soak over the compiled engine stays clean: zero wrong
        # verdicts, zero invariant violations (UNKNOWN would be allowed).
        report = run_soak(
            SoakConfig(
                engine="compiled", seconds=600.0, max_steps=16, seed=0
            )
        )
        assert report.ok
        assert report.wrong_verdicts == 0


class TestSection16SurvivingEdits:
    def test_unrelated_edit_rekeys_instead_of_flushing(self, ds):
        """'Survivors are rekeyed to the new fingerprint - same verdict
        object, zero recomputation - and only the touched cones drop.'"""
        from repro.core.decisioncache import DecisionCache
        from repro.olap.maintenance import SchemaEditor

        cache = DecisionCache()
        warm = cache.dimsat(ds, "Center")  # cone: Center, Region, All
        editor = SchemaEditor(ds, cache)
        edited = editor.add_constraint(
            "Shipment -> Gateway implies Shipment -> Gateway"
        )
        assert not cache.holds(ds.fingerprint())
        assert cache.stats.rekeyed == 1
        assert cache.dimsat(edited, "Center") is warm  # a hit, not a redo

    def test_persistent_cache_round_trip_replays_clean(self, ds, tmp_path):
        """'On load every default-options entry is replayed through the
        audit-verify machinery before it may serve.'"""
        from repro.core import load_cache, save_cache
        from repro.core.decisioncache import DecisionCache

        cache = DecisionCache()
        cache.dimsat(ds, "Shipment")
        cache.implies(ds, "Center -> Region")
        save_cache(cache, str(tmp_path))

        reloaded = DecisionCache()
        report = load_cache(reloaded, str(tmp_path))
        assert report.found and report.clean
        assert report.replayed == report.loaded == len(cache)
        assert reloaded.implies(ds, "Center -> Region").implied
        assert reloaded.stats.hits == 1


class TestSection17Serving:
    @pytest.fixture()
    def server(self):
        import threading

        from repro.core.decisioncache import DecisionCache
        from repro.core.parallel import ParallelDecisionEngine
        from repro.core.resilience import ResilientDecisionEngine
        from repro.core.server import DecisionServer

        server = DecisionServer(
            engine=ResilientDecisionEngine(
                ParallelDecisionEngine(max_workers=2, cache=DecisionCache())
            )
        )
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        assert server.started.wait(10)
        yield server
        server.request_shutdown()
        thread.join(10)
        server.engine.shutdown()

    def test_every_client_sees_the_same_warm_cache(self, ds, server):
        """'the first `implies` from any connection pays the search,
        every later one - from *any* connection - is a hit.'"""
        from repro.core.client import DecisionClient

        with DecisionClient(server.host, server.port) as first:
            fp = first.load_schema(ds)
            assert first.implies(fp, "Center -> Region")["verdict"]
        misses_after_first = server.cache.stats.misses
        with DecisionClient(server.host, server.port) as second:
            assert second.implies(fp, "Center -> Region")["verdict"]
        assert server.cache.stats.misses == misses_after_first
        assert server.cache.stats.hits >= 1

    def test_edit_keeps_the_old_tenant_correct(self, ds, server):
        """'the old fingerprint stays registered and *correct* (schemas
        are immutable; an old tenant is served cold, never wrong).'"""
        from repro.core.client import DecisionClient

        with DecisionClient(server.host, server.port) as client:
            fp = client.load_schema(ds)
            assert not client.implies(fp, "Shipment -> Gateway")["verdict"]
            edited = client.edit(
                fp, "add-constraint", constraint="Shipment -> Gateway"
            )
            assert edited["status"] == "ok"
            assert edited["fingerprint"] != fp
            assert client.implies(
                edited["fingerprint"], "Shipment -> Gateway"
            )["verdict"]
            assert not client.implies(fp, "Shipment -> Gateway")["verdict"]

    def test_call_exit_codes_mirror_the_single_shot_commands(self):
        """'The exit code mirrors the single-shot commands: 0 for an
        ok/true verdict, 1 for a false one.'  (Asserted end-to-end in
        tests/test_cli.py and tests/core/test_server.py; here we pin the
        documented status set on the wire module.)"""
        from repro.core.wire import STATUSES

        assert STATUSES == (
            "ok", "busy", "unknown", "budget-exceeded", "error"
        )
