"""Sweep every tool over every suite schema.

The realistic schema suite is the diversity harness: every high-level
facility must run crash-free and self-consistently over all of them.
This is where a new schema shape would first expose an unhandled case.
"""

from __future__ import annotations

import pytest

from repro.core import (
    dimsat,
    enumerate_frozen_dimensions,
    satisfiability_report,
)
from repro.core.explain import explain_summarizability_in_schema
from repro.core.normalize import (
    minimize,
    schemas_equivalent,
    strengthen_with_intos,
)
from repro.core.profile import profile_report, schema_profile
from repro.core.budget import DecisionBudget
from repro.core.parallel import ParallelDecisionEngine
from repro.generators.adversarial import adversarial_corpus
from repro.generators.suite import suite_schemas
from repro.io import schema_from_json, schema_report, schema_to_json
from repro.io.dot import frozen_set_to_dot, hierarchy_to_dot
from repro.io.ascii import hierarchy_tree

SCHEMAS = sorted(suite_schemas().items())


@pytest.mark.parametrize("name,schema", SCHEMAS, ids=[n for n, _ in SCHEMAS])
class TestSuiteSweep:
    def test_profile(self, name, schema):
        profile = schema_profile(schema)
        assert profile.categories >= 4
        assert profile.constraints >= 4
        assert "categories (N)" in profile.render()
        assert name  # parametrization sanity

    def test_profile_report_runs(self, name, schema):
        text = profile_report(schema)
        assert "satisfiable" in text

    def test_markdown_report(self, name, schema):
        text = schema_report(schema)
        assert "## Frozen dimensions" in text
        assert "## Safe aggregation" in text
        assert "**NO**" in text or "yes" in text

    def test_normalization_round(self, name, schema):
        minimized, _dropped = minimize(schema)
        strengthened, _added = strengthen_with_intos(minimized)
        assert schemas_equivalent(schema, strengthened)

    def test_json_round_trip_preserves_reasoning(self, name, schema):
        rebuilt = schema_from_json(schema_to_json(schema))
        assert satisfiability_report(rebuilt) == satisfiability_report(schema)

    def test_frozen_enumeration_and_rendering(self, name, schema):
        bottom = sorted(schema.hierarchy.bottom_categories())[0]
        frozen = enumerate_frozen_dimensions(schema, bottom)
        assert frozen
        dot = frozen_set_to_dot(frozen)
        assert dot.count("subgraph cluster_") == len(frozen)

    def test_text_renderings(self, name, schema):
        assert hierarchy_tree(schema.hierarchy).startswith("All")
        assert hierarchy_to_dot(schema.hierarchy).startswith("digraph")

    def test_explanations_over_all_reachable_pairs(self, name, schema):
        hierarchy = schema.hierarchy
        bottom = sorted(hierarchy.bottom_categories())[0]
        for target in sorted(hierarchy.ancestors(bottom) - {"All"}):
            for source in sorted(hierarchy.categories - {"All", target}):
                if not hierarchy.reaches(source, target):
                    continue
                explanation = explain_summarizability_in_schema(
                    schema, target, [source]
                )
                rendered = explanation.render()
                if explanation.summarizable:
                    assert "NOT" not in rendered
                else:
                    assert explanation.counterexample is not None

    def test_witnesses_for_every_category(self, name, schema):
        from repro.constraints import satisfies_all

        for category in sorted(schema.hierarchy.categories - {"All"}):
            result = dimsat(schema, category)
            assert result.satisfiable, (name, category)
            instance = result.witness.to_instance(schema)
            assert instance.is_valid()
            assert satisfies_all(instance, schema.constraints)


ADVERSARIAL_CORPUS = adversarial_corpus(seed=0)


@pytest.mark.parametrize(
    "case", ADVERSARIAL_CORPUS, ids=[c.name for c in ADVERSARIAL_CORPUS]
)
class TestAdversarialSweep:
    """The same crash-free bar, over the adversarial corpus, but with a
    small decision budget: the stress shapes are exactly the ones where
    an unbounded sweep would stop being a smoke test."""

    BUDGET = DecisionBudget(max_nodes=20_000, time_ms=2_000.0)

    def test_profile_and_report(self, case):
        profile = schema_profile(case.schema)
        assert profile.categories >= 2
        assert "categories (N)" in profile.render()

    def test_json_round_trip(self, case):
        rebuilt = schema_from_json(schema_to_json(case.schema))
        assert rebuilt.fingerprint() == case.schema.fingerprint()

    def test_budgeted_engine_agrees_or_degrades(self, case):
        engine = ParallelDecisionEngine(max_workers=2, budget=self.BUDGET)
        try:
            (outcome,) = engine.try_decide_many(
                [(case.schema, ("dimsat", case.root))]
            )
        finally:
            engine.shutdown()
        if not isinstance(outcome, BaseException):
            assert outcome == dimsat(case.schema, case.root).satisfiable

    def test_root_witness_is_valid(self, case):
        result = dimsat(case.schema, case.root)
        assert result.satisfiable
        instance = result.witness.to_instance(case.schema)
        assert instance.is_valid()

    def test_text_renderings(self, case):
        assert hierarchy_tree(case.schema.hierarchy).startswith("All")
        assert hierarchy_to_dot(case.schema.hierarchy).startswith("digraph")
