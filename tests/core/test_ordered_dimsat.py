"""DIMSAT with order predicates (Section 6 extension): the finite
representative domains keep satisfiability and implication sound and
complete over numeric attributes."""

from __future__ import annotations

import pytest

from repro.constraints import satisfies_all
from repro.core import (
    ALL,
    DimensionSchema,
    HierarchySchema,
    NK,
    dimsat,
    enumerate_frozen_dimensions,
    is_implied,
)
from repro.errors import ConstraintError


@pytest.fixture(scope="module")
def priced_hierarchy():
    return HierarchySchema(
        ["SKU", "Premium", "Budget", "Department"],
        [
            ("SKU", "Premium"),
            ("SKU", "Budget"),
            ("Premium", "Department"),
            ("Budget", "Department"),
            ("Department", ALL),
        ],
    )


@pytest.fixture(scope="module")
def priced_schema(priced_hierarchy):
    """SKU names are prices; the rollup branch depends on the price."""
    return DimensionSchema(
        priced_hierarchy,
        [
            "one(SKU -> Premium, SKU -> Budget)",
            "SKU < 100 implies SKU -> Budget",
            "SKU >= 100 implies SKU -> Premium",
        ],
    )


class TestDomains:
    def test_representatives_cover_regions(self, priced_schema):
        domain = priced_schema.constant_domain("SKU")
        # One threshold (100): below, at, above.
        assert domain == (99.0, 100.0, 101.0)

    def test_thresholds_merge_with_equality_points(self, priced_hierarchy):
        ds = DimensionSchema(
            priced_hierarchy,
            ["SKU < 100 implies SKU -> Budget", "SKU = 50 implies SKU -> Budget"],
        )
        domain = ds.constant_domain("SKU")
        assert domain == (49.0, 50.0, 75.0, 100.0, 101.0)

    def test_symbolic_categories_unchanged(self, priced_schema):
        assert priced_schema.constant_domain("Premium") == (NK,)

    def test_is_numeric(self, priced_schema):
        assert priced_schema.is_numeric("SKU")
        assert not priced_schema.is_numeric("Premium")

    def test_mixed_string_equality_rejected(self, priced_hierarchy):
        with pytest.raises(ConstraintError):
            DimensionSchema(
                priced_hierarchy,
                ["SKU < 100 implies SKU -> Budget", "SKU = 'cheap'"],
            )


class TestSatisfiability:
    def test_both_branches_realizable(self, priced_schema):
        frozen = enumerate_frozen_dimensions(priced_schema, "SKU")
        branches = {f.subhierarchy.parents_in("SKU") for f in frozen}
        assert frozenset({"Premium"}) in branches
        assert frozenset({"Budget"}) in branches

    def test_witness_names_respect_thresholds(self, priced_schema):
        for frozen in enumerate_frozen_dimensions(priced_schema, "SKU"):
            price = frozen.name_of("SKU")
            assert isinstance(price, float)
            if "Budget" in frozen.categories:
                assert price < 100
            else:
                assert price >= 100

    def test_witnesses_materialize_and_conform(self, priced_schema):
        for frozen in enumerate_frozen_dimensions(priced_schema, "SKU"):
            instance = frozen.to_instance(priced_schema)
            assert instance.is_valid()
            assert satisfies_all(instance, priced_schema.constraints)

    def test_contradictory_price_band_unsatisfiable(self, priced_schema):
        # A SKU cheaper than 10 that must be premium contradicts the rules.
        broken = priced_schema.with_constraints(
            ["SKU < 10", "SKU -> Premium"]
        )
        assert not dimsat(broken, "SKU").satisfiable

    def test_open_interval_needs_representative(self, priced_hierarchy):
        # Satisfiable only by a value strictly between 10 and 20: the
        # midpoint representative must find it.
        ds = DimensionSchema(
            priced_hierarchy,
            ["SKU -> Budget", "SKU > 10", "SKU < 20"],
        )
        result = dimsat(ds, "SKU")
        assert result.satisfiable
        assert 10 < result.witness.name_of("SKU") < 20

    def test_empty_interval_unsatisfiable(self, priced_hierarchy):
        ds = DimensionSchema(
            priced_hierarchy,
            ["SKU -> Budget", "SKU > 20", "SKU < 10"],
        )
        assert not dimsat(ds, "SKU").satisfiable

    def test_boundary_exclusion(self, priced_hierarchy):
        # > 10 and < 10 and != 10 around a single threshold.
        ds = DimensionSchema(
            priced_hierarchy,
            ["SKU -> Budget", "SKU >= 10", "SKU <= 10"],
        )
        result = dimsat(ds, "SKU")
        assert result.satisfiable
        assert result.witness.name_of("SKU") == 10.0
        stricter = ds.with_constraints(["SKU != 10"])
        assert not dimsat(stricter, "SKU").satisfiable


class TestImplication:
    def test_price_band_implies_branch(self, priced_schema):
        assert is_implied(priced_schema, "SKU < 50 implies SKU -> Budget")
        assert is_implied(priced_schema, "SKU > 200 implies SKU -> Premium")

    def test_strictness_of_thresholds(self, priced_schema):
        # 100 itself is premium (>= 100), so 'below 101 means budget' fails.
        assert not is_implied(priced_schema, "SKU < 101 implies SKU -> Budget")

    def test_order_transitivity(self, priced_schema):
        assert is_implied(priced_schema, "SKU < 10 implies SKU < 100")
        assert not is_implied(priced_schema, "SKU < 100 implies SKU < 10")

    def test_trichotomy(self, priced_schema):
        assert is_implied(
            priced_schema, "SKU < 100 or SKU = 100 or SKU > 100"
        )

    def test_branch_implies_price_band(self, priced_schema):
        assert is_implied(priced_schema, "SKU -> Premium implies SKU >= 100")
        assert is_implied(priced_schema, "SKU -> Budget implies SKU < 100")


class TestSummarizabilityWithPrices:
    def test_department_needs_both_branches(self, priced_schema):
        from repro.core import is_summarizable_in_schema

        assert is_summarizable_in_schema(
            priced_schema, "Department", ["Premium", "Budget"]
        )
        assert not is_summarizable_in_schema(
            priced_schema, "Department", ["Premium"]
        )


class TestOracleAgreement:
    def test_brute_force_agrees_on_priced_schema(self, priced_schema):
        from repro.baselines import (
            brute_force_frozen_dimensions,
            brute_force_satisfiable,
        )

        for category in sorted(priced_schema.hierarchy.categories):
            assert (
                brute_force_satisfiable(priced_schema, category)
                == dimsat(priced_schema, category).satisfiable
            ), category
        brute = {
            f.subhierarchy
            for f in brute_force_frozen_dimensions(priced_schema, "SKU")
        }
        fast = {
            f.subhierarchy
            for f in enumerate_frozen_dimensions(priced_schema, "SKU")
        }
        assert brute == fast

    def test_brute_force_agrees_on_interval_schemas(self, priced_hierarchy):
        from repro.baselines import brute_force_satisfiable

        cases = [
            (["SKU -> Budget", "SKU > 10", "SKU < 20"], True),
            (["SKU -> Budget", "SKU > 20", "SKU < 10"], False),
            (["SKU -> Budget", "SKU >= 10", "SKU <= 10", "SKU != 10"], False),
        ]
        for constraints, expected in cases:
            ds = DimensionSchema(priced_hierarchy, constraints)
            assert dimsat(ds, "SKU").satisfiable is expected
            assert brute_force_satisfiable(ds, "SKU") is expected
