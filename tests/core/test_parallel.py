"""Unit tests for the :class:`~repro.core.parallel.ParallelDecisionEngine`.

The differential harness (:mod:`tests.test_differential`) covers verdict
agreement on random schemas; this file pins down the engine's mechanics -
request normalization, batch dedup accounting, fallback behaviour,
lifecycle, witness validity under the branch race, and the DimsatStats
regression (concurrent CHECK totals must equal the sequential run's).
"""

from __future__ import annotations

import pytest

from repro.core.budget import DecisionBudget
from repro.core.decisioncache import DecisionCache
from repro.core.dimsat import dimsat
from repro.core.parallel import ParallelDecisionEngine, normalize_request
from repro.errors import ReproError, SchemaError
from repro.generators.location import location_schema
from repro.generators.random_schema import make_unsatisfiable


@pytest.fixture()
def schema():
    return location_schema()


class TestNormalizeRequest:
    def test_dimsat(self):
        assert normalize_request(("dimsat", "Store")) == ("dimsat", "Store")

    def test_implies_canonicalizes_text(self):
        from repro.constraints.parser import parse

        text_key = normalize_request(("implies", "Store.City.Country"))
        node_key = normalize_request(("implies", parse("Store.City.Country")))
        assert text_key == node_key
        assert text_key[0] == "implies" and isinstance(text_key[1], str)

    def test_summarizable_sorts_and_dedups_sources(self):
        a = normalize_request(("summarizable", "Country", ["State", "City", "City"]))
        b = normalize_request(("summarizable", "Country", ("City", "State")))
        assert a == b == ("summarizable", "Country", ("City", "State"))

    def test_rejects_malformed_requests(self):
        for bad in [(), ("dimsat",), ("implies",), ("summarizable", "X"), ("nope", 1)]:
            with pytest.raises(ReproError):
                normalize_request(bad)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ReproError):
            ParallelDecisionEngine(mode="fibers")


class TestBatchAPI:
    def test_dedup_counts_and_alignment(self, schema):
        with ParallelDecisionEngine(max_workers=4, cache=DecisionCache()) as engine:
            batch = [
                (schema, ("dimsat", "Store")),
                (schema, ("dimsat", "City")),
                (schema, ("dimsat", "Store")),
                (schema, ("summarizable", "Country", ["City"])),
                (schema, ("summarizable", "Country", ("City",))),
            ]
            verdicts = engine.decide_many(batch)
            assert verdicts == [True, True, True, True, True]
            assert engine.stats.batch_requests == 5
            assert engine.stats.batch_deduped == 2
            assert engine.stats.tasks_dispatched == 3

    def test_cross_batch_dedup_via_cache(self, schema):
        cache = DecisionCache()
        with ParallelDecisionEngine(max_workers=4, cache=cache) as engine:
            batch = [(schema, ("dimsat", "Store")), (schema, ("implies", "Store.City"))]
            engine.decide_many(batch)
            before = cache.stats.misses
            engine.decide_many(batch)
            # Second batch hits the decision cache: no new misses.
            assert cache.stats.misses == before
            assert cache.stats.hits >= 2

    def test_rebuilt_equal_schema_shares_verdicts(self, schema):
        from repro.io.json_io import schema_from_json, schema_to_json

        rebuilt = schema_from_json(schema_to_json(schema))
        assert rebuilt is not schema
        with ParallelDecisionEngine(max_workers=2, cache=DecisionCache()) as engine:
            batch = [
                (schema, ("dimsat", "Store")),
                (rebuilt, ("dimsat", "Store")),
            ]
            assert engine.decide_many(batch) == [True, True]
            # Equal fingerprints dedupe across distinct schema objects.
            assert engine.stats.batch_deduped == 1

    def test_empty_batch(self, schema):
        with ParallelDecisionEngine(max_workers=2) as engine:
            assert engine.decide_many([]) == []

    def test_uncached_engine(self, schema):
        with ParallelDecisionEngine(max_workers=2, cache=None) as engine:
            assert engine.is_satisfiable(schema, "Store") is True
            assert engine.decide_many([(schema, ("dimsat", "Store"))]) == [True]


class TestFallbackAndLifecycle:
    def test_single_worker_runs_sequentially(self, schema):
        with ParallelDecisionEngine(max_workers=1, cache=DecisionCache()) as engine:
            assert engine.is_satisfiable(schema, "Store") is True
            assert engine.decide_many([(schema, ("dimsat", "City"))]) == [True]
            assert engine.stats.sequential_fallbacks >= 2
            assert engine.stats.tasks_dispatched == 0

    def test_shutdown_is_idempotent_and_degrades_gracefully(self, schema):
        engine = ParallelDecisionEngine(max_workers=4, cache=DecisionCache())
        assert engine.is_satisfiable(schema, "Store") is True
        engine.shutdown()
        engine.shutdown()
        # A closed engine still answers, sequentially.
        assert engine.is_satisfiable(schema, "City") is True
        assert engine.stats.sequential_fallbacks >= 1

    def test_unknown_category_raises_in_parallel_path(self, schema):
        with ParallelDecisionEngine(max_workers=4, cache=None) as engine:
            with pytest.raises(SchemaError):
                engine.is_satisfiable(schema, "Galaxy")


class TestWitnessValidity:
    def test_parallel_witness_materializes(self, schema):
        """Whichever branch wins the race, the witness must be a real
        frozen dimension whose instance conforms to the schema."""
        from repro.constraints.semantics import satisfies_all

        with ParallelDecisionEngine(max_workers=4, cache=None) as engine:
            for _ in range(5):
                result = engine.dimsat(schema, "Store")
                assert result.satisfiable
                instance = result.witness.to_instance(schema)
                assert satisfies_all(instance, schema.constraints)


class TestStatsRegression:
    def test_concurrent_check_totals_match_sequential(self, schema):
        """Regression for the DimsatStats `+=` race: on an unsatisfiable
        category every branch runs to exhaustion (no cancellation), so the
        concurrent branches' shared counters must total exactly what the
        sequential search counts.  With non-atomic increments this test
        loses updates and the totals drift low."""
        doomed = make_unsatisfiable(schema, "Store")
        sequential = dimsat(doomed, "Store")
        assert not sequential.satisfiable
        with ParallelDecisionEngine(max_workers=8, cache=None) as engine:
            for _ in range(3):
                result = engine.dimsat(doomed, "Store")
                assert not result.satisfiable
                assert result.stats.expand_calls == sequential.stats.expand_calls
                assert result.stats.check_calls == sequential.stats.check_calls
                assert (
                    result.stats.subhierarchies_completed
                    == sequential.stats.subhierarchies_completed
                )
